"""Print a one-screen summary of the benchmark results directory.

Run after `pytest benchmarks/ --benchmark-only`:

    python scripts/summarize_results.py

Used to refresh EXPERIMENTS.md's headline numbers.
"""

from __future__ import annotations

import json
import os
import statistics

RESULTS = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "results")


def load(name: str) -> dict | None:
    path = os.path.join(RESULTS, name)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def main() -> None:
    t3 = load("table3.json")
    if t3:
        worst = max(
            abs(row["F_over_E"] - row["paper_F_over_E"])
            for per in t3.values() for row in per.values()
            if isinstance(row.get("paper_F_over_E"), (int, float))
        )
        print(f"Table 3: max |F/E - paper| across all cells = {worst:.1f} pts")
    for name, label in (("table4.json", "Table 4"), ("table10.json", "Table 10")):
        t = load(name)
        if not t:
            continue
        ratios = [row["time_ratio_pct"] for per in t.values() for row in per.values()]
        mares = [row["mare"] for per in t.values() for row in per.values() if "mare" in row]
        print(f"{label}: time ratio min/median = {min(ratios):.1f}%/"
              f"{statistics.median(ratios):.1f}%, max MARE = {max(mares):.3f}")
    for name, label in (("table5.json", "Table 5"), ("table11.json", "Table 11")):
        t = load(name)
        if not t:
            continue
        ratios = [row["time_ratio_pct"] for per in t.values()
                  for row in per.values() if "time_ratio_pct" in row]
        ooms = sum(1 for per in t.values() for row in per.values()
                   if row.get("plain_seconds") is None)
        gaps = [row["framework_influence_frac"] - row["plain_influence_frac"]
                for per in t.values() for row in per.values()
                if "framework_influence_frac" in row and "plain_influence_frac" in row]
        print(f"{label}: median ratio = {statistics.median(ratios):.1f}%, "
              f"OOM cells = {ooms}, worst quality gap = {min(gaps):+.4f}")
    t6 = load("table6.json")
    if t6:
        rows = [(n, r) for n, r in t6.items()]
        cn_oom = [n for n, r in rows if r["coarsenet_status"] != "ok"]
        sp_oom = [n for n, r in rows if r["spine_status"] != "ok"]
        print(f"Table 6: COARSENET falls over on {cn_oom}; SPINE on {sp_oom}")
    dyn = load("dynamic_updates.json")
    if dyn:
        print(f"Dynamic: {dyn['pruned_scc_pct']:.1f}% SCC recomputations pruned, "
              f"{dyn['speedup']:.1f}x vs scratch")
    f9 = load("fig9.json")
    if f9:
        print(f"Figure 9: bias r=1 {f9['r']['1']['mean_bias']:+.1%}, "
              f"r=16 {f9['r']['16']['mean_bias']:+.1%}")


if __name__ == "__main__":
    main()
