"""End-to-end smoke test for ``repro serve``.

Launches the CLI server as a real subprocess on an ephemeral port, waits
for its "serving on http://HOST:PORT" announcement, exercises the HTTP
surface (``/healthz``, ``/estimate``, ``/stats``, and the live-graph
mutation routes ``/insert_edge`` / ``/apply_deltas``), then delivers
SIGINT and asserts a clean shutdown — the documented Ctrl-C path.  This
is the one test that covers argv parsing, stdout protocol, and signal
handling together; CI runs it on every push.

Usage: ``PYTHONPATH=src python scripts/serve_smoke.py``
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

TIMEOUT = 60.0


def _write_edge_list(path: str) -> None:
    """A small deterministic digraph (a ring with chords)."""
    with open(path, "w", encoding="utf-8") as handle:
        n = 60
        for i in range(n):
            handle.write(f"{i} {(i + 1) % n} 0.4\n")
            handle.write(f"{i} {(i + 7) % n} 0.2\n")


def _wait_for_banner(proc: subprocess.Popen) -> str:
    """Read stdout until the serve banner appears; return the URL."""
    deadline = time.monotonic() + TIMEOUT
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited early (code {proc.poll()}) without a banner"
            )
        sys.stdout.write(f"[server] {line}")
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            return match.group(1)
    raise SystemExit("timed out waiting for the serve banner")


def _post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=TIMEOUT) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        edges = os.path.join(tmp, "smoke.txt")
        _write_edge_list(edges)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", edges,
             "--port", "0", "-r", "4", "--simulations", "2000"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        try:
            base = _wait_for_banner(proc)

            with urllib.request.urlopen(f"{base}/healthz",
                                        timeout=TIMEOUT) as response:
                health = json.loads(response.read().decode("utf-8"))
            assert health.get("status") == "ok", health

            estimate = _post(f"{base}/estimate",
                             {"seeds": [0, 3], "n_samples": 2000})
            assert estimate["value"] > 0, estimate
            assert estimate["n_samples"] == 2000, estimate
            assert estimate["epoch"] == 0, estimate

            # Live-graph round trip: mutate, check the epoch advances and
            # queries keep answering (on the mutated graph).
            inserted = _post(f"{base}/insert_edge",
                             {"u": 0, "v": 30, "p": 0.5})
            assert inserted["epoch"] == 1, inserted
            assert inserted["applied"] == 1, inserted
            batched = _post(f"{base}/apply_deltas", {"deltas": [
                {"op": "delete", "u": 0, "v": 30},
                {"op": "insert", "u": 5, "v": 40, "p": 0.3},
            ]})
            assert batched["epoch"] == 2, batched
            assert batched["applied"] == 2, batched
            estimate2 = _post(f"{base}/estimate",
                              {"seeds": [0, 3], "n_samples": 2000})
            assert estimate2["epoch"] == 2, estimate2
            assert estimate2["value"] > 0, estimate2

            with urllib.request.urlopen(f"{base}/stats",
                                        timeout=TIMEOUT) as response:
                stats = json.loads(response.read().decode("utf-8"))
            assert stats["dynamic"][0]["epoch"] == 2, stats

            proc.send_signal(signal.SIGINT)
            code = proc.wait(timeout=TIMEOUT)
            assert code == 0, f"server exited with {code} after SIGINT"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=TIMEOUT)
    print("serve smoke test: OK "
          f"(estimate={estimate['value']:.3f} on {estimate['n_samples']} "
          "RR sets)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
