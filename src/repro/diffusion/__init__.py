"""Independent Cascade diffusion substrate.

Forward Monte-Carlo simulation, live-edge sampling (the random-graph
interpretation), BFS reachability, and reverse-reachable set sketches.
"""

from .linear_threshold import (
    estimate_influence_lt,
    sample_lt_live_edges,
    simulate_lt_once,
    validate_lt_weights,
)
from .live_edge import (
    live_edge_csr_from_mask,
    sample_live_edge_csr,
    sample_live_edge_mask,
    sample_live_edge_store,
)
from .reachability import gather_ranges, reachable_mask, reachable_weight
from .rr_sets import CoverageInstance, RRSampler
from .simulator import SimulationStats, estimate_influence, simulate_ic, simulate_ic_once

__all__ = [
    "estimate_influence_lt",
    "sample_lt_live_edges",
    "simulate_lt_once",
    "validate_lt_weights",
    "sample_live_edge_mask",
    "sample_live_edge_csr",
    "live_edge_csr_from_mask",
    "sample_live_edge_store",
    "reachable_mask",
    "reachable_weight",
    "gather_ranges",
    "simulate_ic_once",
    "simulate_ic",
    "estimate_influence",
    "SimulationStats",
    "RRSampler",
    "CoverageInstance",
]
