"""Linear Threshold (LT) diffusion — an extension beyond the paper's scope.

The paper analyses the Independent Cascade model only; LT is the other
classic diffusion model of Kempe, Kleinberg and Tardos [22], included here
because a diffusion-analysis library is expected to provide it.  NOTE: the
coarsening guarantees (Theorems 4.6/6.1/6.2) are proved for IC and do *not*
transfer to LT — the coarsening pipeline intentionally rejects LT inputs.

Model: each vertex ``v`` draws a threshold ``theta_v ~ U[0, 1]``; ``v``
activates when the summed weights of its active in-neighbours reach
``theta_v``.  Edge weights ``b(u, v)`` must satisfy ``sum_u b(u, v) <= 1``
(the WC setting, ``b = 1/indegree``, meets this with equality).

Live-edge interpretation (KKT Theorem 4.6 of [22]): each vertex picks at
most one in-edge, choosing ``(u, v)`` with probability ``b(u, v)`` (none
with the remaining mass); the diffusion equals reachability in the sampled
in-forest.  Both the direct threshold simulation and the live-edge sampler
are provided; tests verify they agree in distribution.
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng
from .reachability import gather_ranges, reachable_weight

__all__ = [
    "validate_lt_weights",
    "sample_lt_live_edges",
    "simulate_lt_once",
    "estimate_influence_lt",
]


def validate_lt_weights(graph: InfluenceGraph) -> None:
    """Check the LT constraint ``sum_u b(u, v) <= 1`` for every vertex."""
    incoming = np.zeros(graph.n, dtype=np.float64)
    np.add.at(incoming, graph.heads, graph.probs)
    if (incoming > 1.0 + 1e-9).any():
        worst = int(np.argmax(incoming))
        raise AlgorithmError(
            f"LT weights must sum to <= 1 per vertex; vertex {worst} has "
            f"incoming mass {incoming[worst]:.4f} (hint: the WC setting "
            f"satisfies the constraint by construction)"
        )


def sample_lt_live_edges(
    graph: InfluenceGraph, rng=None
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the LT live-edge in-forest; returns a forward ``(indptr, heads)``.

    Each vertex independently selects at most one of its in-edges with
    probability equal to its weight.  The returned CSR is over *forward*
    edges so reachability from seeds works unchanged.
    """
    rng = ensure_rng(rng)
    rev = graph.reverse()
    chosen_tails: list[int] = []
    chosen_heads: list[int] = []
    draws = rng.random(graph.n)
    for v in range(graph.n):
        lo, hi = rev.indptr[v], rev.indptr[v + 1]
        if lo == hi:
            continue
        cumulative = np.cumsum(rev.probs[lo:hi])
        u_pos = int(np.searchsorted(cumulative, draws[v], side="right"))
        if u_pos < hi - lo:  # else: no in-edge selected
            chosen_tails.append(int(rev.heads[lo + u_pos]))
            chosen_heads.append(v)
    tails = np.asarray(chosen_tails, dtype=np.int64)
    heads = np.asarray(chosen_heads, dtype=np.int64)
    order = np.argsort(tails, kind="stable")
    tails, heads = tails[order], heads[order]
    indptr = np.zeros(graph.n + 1, dtype=np.int64)
    np.add.at(indptr, tails + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, heads


def simulate_lt_once(
    graph: InfluenceGraph,
    seeds: np.ndarray,
    rng=None,
) -> np.ndarray:
    """One LT diffusion via direct threshold simulation.

    Thresholds are drawn fresh; activation proceeds in rounds until no
    vertex crosses its threshold.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        raise AlgorithmError("seed set must be non-empty")
    rng = ensure_rng(rng)
    thresholds = rng.random(graph.n)
    active = np.zeros(graph.n, dtype=bool)
    active[seeds] = True
    pressure = np.zeros(graph.n, dtype=np.float64)
    frontier = np.unique(seeds)
    while frontier.size:
        edge_idx = gather_ranges(graph.indptr[frontier], graph.indptr[frontier + 1])
        if edge_idx.size == 0:
            break
        targets = graph.heads[edge_idx]
        np.add.at(pressure, targets, graph.probs[edge_idx])
        crossed = np.unique(targets)
        newly = crossed[
            ~active[crossed] & (pressure[crossed] >= thresholds[crossed])
        ]
        if newly.size == 0:
            break
        active[newly] = True
        frontier = newly
    return active


def estimate_influence_lt(
    graph: InfluenceGraph,
    seeds: np.ndarray,
    n_simulations: int = 10_000,
    rng=None,
    method: str = "live-edge",
) -> float:
    """Monte-Carlo LT influence via live-edge sampling or direct simulation."""
    if method not in ("live-edge", "threshold"):
        raise AlgorithmError("method must be 'live-edge' or 'threshold'")
    validate_lt_weights(graph)
    rng = ensure_rng(rng)
    seeds = np.asarray(seeds, dtype=np.int64)
    weights = graph.weights
    total = 0.0
    for _ in range(n_simulations):
        if method == "live-edge":
            indptr, heads = sample_lt_live_edges(graph, rng)
            total += reachable_weight(indptr, heads, seeds, weights=weights)
        else:
            active = simulate_lt_once(graph, seeds, rng)
            total += float(weights[active].sum())
    return total / n_simulations
