"""Reverse-reachable (RR) set sampling and maximum-coverage machinery.

RR sets are the substrate of all sketch-based influence-maximization
algorithms (Borgs et al. [6]; Section 3.3): pick a random root ``z``, run a
*reverse* randomized BFS, and record the set of vertices that would have
influenced ``z``.  A seed set's influence equals ``W * Pr[S hits a random RR
set]`` where ``W`` is the total vertex weight, so maximizing influence reduces
to maximum coverage over a collection of RR sets.

For vertex-weighted (coarsened) graphs the root is drawn proportionally to
vertex weight, exactly as the paper's influence-maximization framework
prescribes (Section 6.2).
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng
from .reachability import gather_ranges

__all__ = ["RRSampler", "CoverageInstance"]


class RRSampler:
    """Draws RR sets from an influence graph.

    Parameters
    ----------
    graph:
        The (possibly vertex-weighted) influence graph.
    rng:
        Seed or generator for root choice and edge coin flips.
    model:
        ``"ic"`` (default) — independent cascade: reverse randomized BFS.
        ``"lt"`` — linear threshold: a reverse random in-edge *walk* (each
        vertex's live-edge outcome selects at most one in-edge with
        probability equal to its weight), per the standard LT-RIS
        construction.  Requires ``sum_u b(u, v) <= 1`` per vertex (the WC
        setting satisfies this).  With LT RR sets, every sketch-based
        maximizer in :mod:`repro.algorithms` solves LT influence
        maximization unchanged.
    """

    def __init__(self, graph: InfluenceGraph, rng=None, model: str = "ic") -> None:
        if model not in ("ic", "lt"):
            raise AlgorithmError("model must be 'ic' or 'lt'")
        self.model = model
        if model == "lt":
            from .linear_threshold import validate_lt_weights

            validate_lt_weights(graph)
        self.graph = graph
        self._rev = graph.reverse()
        self._rng = ensure_rng(rng)
        self._weights = graph.weights.astype(np.float64)
        self._cum_weights = np.cumsum(self._weights)
        self.total_weight = float(self._cum_weights[-1]) if graph.n else 0.0
        self.examined_edges = 0
        # Version-stamped visited marks: avoids an O(n) clear per RR set,
        # keeping per-set cost proportional to the set's own traversal —
        # the cost model the paper's speed-up analysis assumes.
        self._visit_stamp = np.zeros(graph.n, dtype=np.int64)
        self._stamp = 0

    def sample_root(self, rng=None) -> int:
        """A random root, weight-proportional (uniform when unweighted)."""
        if self.graph.n == 0:
            raise AlgorithmError("cannot sample a root from an empty graph")
        gen = self._rng if rng is None else ensure_rng(rng)
        u = gen.random() * self.total_weight
        return int(np.searchsorted(self._cum_weights, u, side="right"))

    def sample(self, root: int | None = None, rng=None) -> np.ndarray:
        """One RR set: vertices reaching ``root`` in a live-edge outcome.

        Edge coins are flipped lazily on examined reverse edges only; the
        examined-edge counter feeds the cost accounting that links the
        framework's speed-up to the edge-reduction ratio.

        ``rng`` substitutes a per-call stream for the sampler's own: given
        the same graph and the same generator state, the returned RR set is
        bit-identical regardless of which process draws it.  The serving
        pools (:mod:`repro.serve`) rely on this with :func:`repro.rng.
        indexed_rng` streams to shard one pool across workers.
        """
        gen = self._rng if rng is None else ensure_rng(rng)
        if root is None:
            root = self.sample_root(rng=gen)
        if self.model == "lt":
            return self._sample_lt(root, rng=gen)
        rev = self._rev
        self._stamp += 1
        stamp = self._stamp
        self._visit_stamp[root] = stamp
        frontier = np.asarray([root], dtype=np.int64)
        collected = [frontier]
        while frontier.size:
            edge_idx = gather_ranges(rev.indptr[frontier], rev.indptr[frontier + 1])
            if edge_idx.size == 0:
                break
            self.examined_edges += edge_idx.size
            success = gen.random(edge_idx.size) < rev.probs[edge_idx]
            targets = rev.heads[edge_idx[success]]
            new = targets[self._visit_stamp[targets] != stamp]
            if new.size == 0:
                break
            frontier = np.unique(new)
            self._visit_stamp[frontier] = stamp
            collected.append(frontier)
        rr = np.concatenate(collected)
        rr.sort()
        return rr

    def _sample_lt(self, root: int, rng=None) -> np.ndarray:
        """LT RR set: a reverse walk choosing one in-edge per step.

        Under the LT live-edge distribution each vertex keeps at most one
        in-edge (with probability equal to its weight), so the set of
        vertices reaching the root is a simple path; the walk stops when no
        in-edge is selected or the path would revisit a vertex.
        """
        gen = self._rng if rng is None else ensure_rng(rng)
        rev = self._rev
        path = [root]
        seen = {root}
        current = root
        while True:
            lo, hi = rev.indptr[current], rev.indptr[current + 1]
            if lo == hi:
                break
            self.examined_edges += hi - lo
            cumulative = np.cumsum(rev.probs[lo:hi])
            draw = gen.random()
            pos = int(np.searchsorted(cumulative, draw, side="right"))
            if pos >= hi - lo:
                break  # no in-edge selected for this vertex
            parent = int(rev.heads[lo + pos])
            if parent in seen:
                break  # the live-edge path loops; reachability saturates
            path.append(parent)
            seen.add(parent)
            current = parent
        rr = np.asarray(path, dtype=np.int64)
        rr.sort()
        return rr

    def sample_batch(self, count: int) -> list[np.ndarray]:
        """Draw ``count`` independent RR sets."""
        return [self.sample() for _ in range(count)]


class CoverageInstance:
    """Maximum coverage over a collection of RR sets.

    Builds a flat inverted index (vertex -> containing sets) once, then runs
    the standard greedy with exact decremental gain updates: when a set
    becomes covered, the marginal gain of every vertex it contains drops by
    one.  Total update work is linear in the total size of covered sets.
    """

    def __init__(self, rr_sets: list[np.ndarray], n: int) -> None:
        self.n = n
        self.n_sets = len(rr_sets)
        if self.n_sets:
            self._flat = np.concatenate(rr_sets)
            self._set_ids = np.repeat(
                np.arange(self.n_sets, dtype=np.int64),
                [s.size for s in rr_sets],
            )
        else:
            self._flat = np.empty(0, dtype=np.int64)
            self._set_ids = np.empty(0, dtype=np.int64)
        # Inverted index in CSR layout over vertices.
        order = np.argsort(self._flat, kind="stable")
        self._inv_sets = self._set_ids[order]
        self._inv_indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self._inv_indptr, self._flat + 1, 1)
        np.cumsum(self._inv_indptr, out=self._inv_indptr)
        # Set membership in CSR layout over sets (for decrements).
        self._sets = rr_sets

    def degree(self) -> np.ndarray:
        """Initial coverage gain of each vertex (number of sets containing it)."""
        return np.bincount(self._flat, minlength=self.n).astype(np.int64)

    def sets_containing(self, v: int) -> np.ndarray:
        """Ids of RR sets containing vertex ``v``."""
        lo, hi = self._inv_indptr[v], self._inv_indptr[v + 1]
        return self._inv_sets[lo:hi]

    def coverage_of(self, seeds: np.ndarray, first: "int | None" = None) -> int:
        """Number of RR sets hit by ``seeds``.

        ``first`` restricts the count to the prefix collection
        ``rr_sets[:first]`` — the pool-reuse path, where one grown-once
        collection serves queries that asked for different sketch sizes:
        because sets are appended in draw order, the prefix of length t is
        distributed exactly as an independent collection of t sets.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        limit = self.n_sets if first is None else min(first, self.n_sets)
        if seeds.size == 0 or limit <= 0:
            return 0
        covered = np.zeros(limit, dtype=bool)
        for v in seeds:
            ids = self.sets_containing(int(v))
            covered[ids[ids < limit]] = True
        return int(covered.sum())

    def greedy(self, k: int) -> tuple[np.ndarray, int]:
        """Greedy max coverage: ``k`` vertices and the number of covered sets.

        Exact greedy (not lazy): gains are kept exactly up to date by
        decrementing when a set is newly covered, so ``argmax`` is always
        correct.
        """
        if k <= 0:
            raise AlgorithmError("k must be positive")
        gains = self.degree().copy()
        covered = np.zeros(self.n_sets, dtype=bool)
        seeds = np.empty(min(k, self.n), dtype=np.int64)
        total_covered = 0
        for i in range(seeds.size):
            v = int(np.argmax(gains))
            seeds[i] = v
            newly = self.sets_containing(v)
            newly = newly[~covered[newly]]
            covered[newly] = True
            total_covered += newly.size
            for s in newly:
                gains[self._sets[s]] -= 1
            gains[v] = -1  # never pick twice
        return seeds, total_covered
