"""BFS reachability on CSR digraphs.

``R_G(S)`` — the set (and weight) of vertices reachable from a seed set in a
deterministic graph — is the quantity the random-graph interpretation of the
IC model averages over (Eq. 2).  The frontier expansion is vectorised: each
BFS level gathers all out-edges of the frontier in one numpy pass.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gather_ranges", "reachable_mask", "reachable_weight"]


def gather_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate the integer ranges ``[starts[i], ends[i])`` vectorially.

    This is the core CSR-slice gather used by every BFS/diffusion loop:
    given frontier vertices' edge ranges it yields the flat edge indices.
    """
    counts = ends - starts
    nonzero = counts > 0
    starts, ends, counts = starts[nonzero], ends[nonzero], counts[nonzero]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    boundaries = np.cumsum(counts)[:-1]
    out[boundaries] = starts[1:] - ends[:-1] + 1
    return np.cumsum(out)


def reachable_mask(
    indptr: np.ndarray, heads: np.ndarray, sources: np.ndarray
) -> np.ndarray:
    """Boolean mask of vertices reachable from ``sources`` (inclusive)."""
    n = indptr.size - 1
    visited = np.zeros(n, dtype=bool)
    frontier = np.unique(np.asarray(sources, dtype=np.int64))
    visited[frontier] = True
    while frontier.size:
        edge_idx = gather_ranges(indptr[frontier], indptr[frontier + 1])
        if edge_idx.size == 0:
            break
        targets = heads[edge_idx]
        new = targets[~visited[targets]]
        if new.size == 0:
            break
        frontier = np.unique(new)
        visited[frontier] = True
    return visited


def reachable_weight(
    indptr: np.ndarray,
    heads: np.ndarray,
    sources: np.ndarray,
    weights: np.ndarray | None = None,
) -> float:
    """``R_G(S)``: count (or total weight) of vertices reachable from ``S``."""
    mask = reachable_mask(indptr, heads, sources)
    if weights is None:
        return float(mask.sum())
    return float(weights[mask].sum())
