"""Sampling live-edge graphs from the IC edge distribution ``D_G``.

Under the random-graph interpretation of the IC model (Kempe et al.,
Section 3.1), a diffusion outcome corresponds to a *live-edge graph*: each
edge ``e`` is kept independently with probability ``p_e``.  The r-robust SCC
construction samples ``r`` such graphs; this module provides the in-memory
vectorised sampler used by Algorithm 1 and the streaming disk sampler used by
Algorithm 2.
"""

from __future__ import annotations

import numpy as np

from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, span
from ..rng import RngLike, ensure_rng
from ..storage.triplet_store import DEFAULT_CHUNK_EDGES, PairStore, TripletStore

__all__ = [
    "sample_live_edge_mask",
    "sample_live_edge_csr",
    "sample_live_edge_store",
]


def sample_live_edge_mask(
    graph: InfluenceGraph, rng: RngLike = None
) -> np.ndarray:
    """A boolean keep-mask over the graph's edges, one Bernoulli per edge."""
    rng = ensure_rng(rng)
    return rng.random(graph.m) < graph.probs


def sample_live_edge_csr(
    graph: InfluenceGraph, rng: RngLike = None
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a live-edge graph and return it as a ``(indptr, heads)`` CSR.

    Because the parent edge arrays are already in CSR order, the kept edges
    remain sorted and the new ``indptr`` is a cumulative count of kept edges
    per tail — no re-sort needed.
    """
    with span("sample_live_edge", n=graph.n, m=graph.m):
        keep = sample_live_edge_mask(graph, rng)
        indptr, heads = live_edge_csr_from_mask(graph, keep)
    inc("sample.live_edge_graphs")
    inc("sample.edges_kept", int(heads.size))
    return indptr, heads


def live_edge_csr_from_mask(
    graph: InfluenceGraph, keep: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Materialise the CSR of the subgraph selected by an edge mask."""
    tails = graph.tails()
    counts = np.bincount(tails[keep], minlength=graph.n)
    indptr = np.zeros(graph.n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, graph.heads[keep]


def sample_live_edge_store(
    source: TripletStore,
    dest_path: str,
    rng: RngLike = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> PairStore:
    """Stream-sample a live-edge graph from a disk-resident influence graph.

    Implements lines 3–4 of Algorithm 2: read each triplet ``<u, v, p>``
    sequentially and write ``(u, v)`` to the destination store with
    probability ``p``, holding only one chunk in memory.
    """
    rng = ensure_rng(rng)
    with span("sample_live_edge_store", n=source.n, m=source.m):
        dest = PairStore.create(dest_path, source.n)
        for tails, heads, probs in source.iter_chunks(chunk_edges):
            keep = rng.random(probs.size) < probs
            if keep.any():
                dest.append(tails[keep], heads[keep])
    inc("sample.live_edge_graphs")
    inc("sample.edges_kept", dest.m)
    return dest
