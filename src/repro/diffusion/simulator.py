"""Forward Monte-Carlo simulation of the Independent Cascade model.

One simulation runs the discrete-step IC process (Section 3.1): a newly
activated vertex gets a single chance to activate each inactive out-neighbour
with the edge's probability.  Each BFS level is vectorised — the out-edges of
the whole frontier are gathered and coin-flipped in one numpy pass, which is
equivalent to the sequential per-vertex definition because every edge is
examined at most once.

Simulation cost is dominated by the number of examined edges (Section 3.2),
so the module counts them: the paper's observation that the framework's time
reduction tracks the *edge* reduction ratio is reproduced via this counter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import RngLike, ensure_rng
from .reachability import gather_ranges

__all__ = ["simulate_ic_once", "simulate_ic", "estimate_influence", "SimulationStats"]


@dataclass
class SimulationStats:
    """Aggregate counters across a batch of IC simulations."""

    simulations: int = 0
    examined_edges: int = 0
    activations: int = 0


def simulate_ic_once(
    graph: InfluenceGraph,
    seeds: np.ndarray,
    rng: RngLike = None,
    stats: SimulationStats | None = None,
) -> np.ndarray:
    """Run one IC diffusion and return the boolean activation mask.

    Seeds are activated at step 0; the process runs until no activation is
    possible.  Coin flips happen lazily on examined edges only, matching the
    cost model of a real simulator (not a full live-edge sample).
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        raise AlgorithmError("seed set must be non-empty")
    if seeds.min() < 0 or seeds.max() >= graph.n:
        raise AlgorithmError("seed vertex out of range")
    rng = ensure_rng(rng)
    active = np.zeros(graph.n, dtype=bool)
    frontier = np.unique(seeds)
    active[frontier] = True
    examined = 0
    while frontier.size:
        edge_idx = gather_ranges(graph.indptr[frontier], graph.indptr[frontier + 1])
        if edge_idx.size == 0:
            break
        examined += edge_idx.size
        success = rng.random(edge_idx.size) < graph.probs[edge_idx]
        targets = graph.heads[edge_idx[success]]
        new = targets[~active[targets]]
        if new.size == 0:
            break
        frontier = np.unique(new)
        active[frontier] = True
    if stats is not None:
        stats.simulations += 1
        stats.examined_edges += examined
        stats.activations += int(active.sum())
    return active


def simulate_ic(
    graph: InfluenceGraph,
    seeds: np.ndarray,
    n_simulations: int,
    rng: RngLike = None,
    stats: SimulationStats | None = None,
) -> np.ndarray:
    """Run ``n_simulations`` IC diffusions; return the per-run spread weights.

    For a vertex-weighted graph the spread is the total weight of active
    vertices, per the weighted influence definition in Section 3.1.
    """
    rng = ensure_rng(rng)
    weights = graph.weights
    spreads = np.empty(n_simulations, dtype=np.float64)
    for i in range(n_simulations):
        active = simulate_ic_once(graph, seeds, rng, stats=stats)
        spreads[i] = float(weights[active].sum())
    return spreads


def estimate_influence(
    graph: InfluenceGraph,
    seeds: np.ndarray,
    n_simulations: int = 10_000,
    rng: RngLike = None,
    stats: SimulationStats | None = None,
) -> float:
    """The naive simulation estimator of ``Inf_G(S)`` (Section 3.2)."""
    return float(
        simulate_ic(graph, seeds, n_simulations, rng, stats=stats).mean()
    )
