"""Sharded multi-process serving over one shared coarse model.

The in-process serving stack (:mod:`repro.serve.service`) grows RR-set
pools on a thread pool — which the GIL serialises whenever sampling is
numpy-light.  This module moves growth and scoring into a persistent
fleet of **worker processes** that all attach the same
:class:`~repro.graph.shm.SharedModel` segment (the PR-4 zero-copy CSR
broadcast), so a batched ``/estimate`` fans out across cores while the
parent keeps everything stateful: request parsing, admission control,
deadline bookkeeping, and the fine-to-coarse seed mapping.

Sharding discipline
-------------------
Worker ``k`` of ``T`` owns the sample indices ``k, k + T, k + 2T, ...``
of every pool.  Under the indexed-stream discipline
(:func:`repro.rng.indexed_rng`; see :mod:`repro.serve.pool`) sample ``i``
is a pure function of ``(entropy, i)``, so worker ``k`` draws *exactly*
the samples a serial drawer would have produced at its indices — the
fleet collectively assembles the identical pool, just interleaved across
address spaces.  Two consequences the serving layer relies on:

* **Bit-for-bit equality.**  A prefix of the logical pool corresponds to
  a per-worker count: global prefix ``P`` covers the first
  ``ceil((P - k) / T)`` local samples of worker ``k`` (0 when
  ``P <= k``), and the contiguous prefix assembled from per-worker local
  counts ``c_k`` is ``min_k (c_k * T + k)``.  Scoring sums integer hit
  counts over the disjoint shards and applies the exact float expression
  :class:`~repro.algorithms.ris_estimator.RISEstimator` uses, so sharded
  answers equal in-process answers bit-for-bit (pinned by the
  cross-executor digest test and ``benchmarks/bench_serve_shard.py``).
* **Graceful fallback.**  If a worker crashes or the fleet misbehaves,
  the runtime is marked broken and the service re-answers the query from
  an in-process :class:`~repro.serve.pool.SamplePool` — same entropy,
  same indices, same bits.

Protocol
--------
One duplex pipe per worker carries tiny task tuples: ``attach`` (map a
published model segment, once per model), ``grow`` (extend the local
shard toward a global prefix, honouring the remaining deadline),
``score`` (hit-count seed sets against a prefix), ``detach`` (drop a
model and its mapping when the parent evicts it), ``ping`` and
``shutdown``.  Workers are started with the ``spawn`` method — forking a
thread-carrying serving parent is unsafe (and deprecated on 3.12+) — and
install the runtime lock sanitizer when the parent has one active, so
the sanitizer's coverage extends across the process boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..diffusion.rr_sets import CoverageInstance, RRSampler
from ..errors import AlgorithmError, ReproError
from ..graph.influence_graph import InfluenceGraph
from ..graph.shm import (
    SharedModel,
    SharedModelSpec,
    attach_shared_model,
    detach_shared_graph,
)
from ..obs import inc, set_gauge, span
from ..rng import ensure_rng, indexed_rng

__all__ = ["ShardError", "ShardRuntime", "ShardPool", "ShardEstimator"]

#: Seconds the parent waits for the fleet's readiness ping.  Generous:
#: a spawned worker pays a full interpreter + numpy import on first start.
DEFAULT_START_TIMEOUT = 60.0


class ShardError(ReproError):
    """A shard worker crashed, hung, or reported a task failure.

    The service treats this as "the fleet is broken": it falls back to
    in-process serving (bit-for-bit identical answers) and never routes
    to this runtime again.
    """


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _WorkerShard:
    """One worker's slice of one model's pool (indices ``k (mod T)``).

    Local sample ``j`` is global sample ``k + j*T``, drawn from stream
    ``(entropy, k + j*T)`` — exactly what the serial pool would have
    drawn there.
    """

    def __init__(self, graph: InfluenceGraph, worker_id: int, n_workers: int,
                 entropy: int, model: str, chunk_sets: int) -> None:
        self.graph = graph
        self.worker_id = worker_id
        self.n_workers = n_workers
        self.entropy = entropy
        # Deadline-check granularity, scaled down so the fleet overshoots
        # a deadline by about one *global* chunk, not T of them.
        self.chunk_sets = max(1, chunk_sets // n_workers)
        self.sampler = RRSampler(graph, rng=ensure_rng(entropy), model=model)
        self.rr_sets: "list[np.ndarray]" = []
        self._coverage: "CoverageInstance | None" = None
        self._coverage_size = 0

    def local_target(self, prefix: int) -> int:
        """Local samples needed so the shard covers global prefix ``prefix``."""
        if prefix <= self.worker_id:
            return 0
        return (prefix - self.worker_id + self.n_workers - 1) // self.n_workers

    def grow(self, target: int, deadline: "float | None") -> int:
        """Draw toward global prefix ``target``; returns the local count."""
        want = self.local_target(target)
        while len(self.rr_sets) < want:
            if deadline is not None and time.monotonic() >= deadline:
                break
            chunk = min(self.chunk_sets, want - len(self.rr_sets))
            for _ in range(chunk):
                index = self.worker_id + len(self.rr_sets) * self.n_workers
                self.rr_sets.append(self.sampler.sample(
                    rng=indexed_rng(self.entropy, index)))
        return len(self.rr_sets)

    def score(self, seed_sets: "list[np.ndarray]", prefix: int) -> "list[int]":
        """Hit counts of each seed set against this shard's slice of
        the global prefix ``prefix`` (an integer per seed set)."""
        limit = self.local_target(prefix)
        if self._coverage is None or self._coverage_size != len(self.rr_sets):
            self._coverage = CoverageInstance(self.rr_sets, self.graph.n)
            self._coverage_size = len(self.rr_sets)
        return [self._coverage.coverage_of(seeds, first=limit)
                for seeds in seed_sets]


def _handle_task(shards: "dict[str, _WorkerShard]", worker_id: int,
                 n_workers: int, msg: tuple):
    """Execute one parent task; returns the reply payload."""
    kind = msg[0]
    if kind == "ping":
        return worker_id
    if kind == "attach":
        _, spec, entropy, model, chunk_sets = msg
        if spec.token not in shards:
            graph = attach_shared_model(spec)
            shards[spec.token] = _WorkerShard(
                graph, worker_id, n_workers, entropy, model, chunk_sets)
        return None
    if kind == "grow":
        _, token, target, remaining = msg
        deadline = None if remaining is None else time.monotonic() + remaining
        return shards[token].grow(target, deadline)
    if kind == "score":
        _, token, seed_sets, prefix = msg
        return shards[token].score(seed_sets, prefix)
    if kind == "detach":
        _, token, segment_name = msg
        shards.pop(token, None)
        detach_shared_graph(segment_name)
        return None
    raise ShardError(f"unknown shard task {kind!r}")


def _worker_main(worker_id: int, n_workers: int, conn, sanitize: bool) -> None:
    """Shard worker loop: receive task tuples, reply ``(status, payload)``.

    Every exception is surfaced to the parent as an ``("error", text)``
    reply rather than killing the worker — the parent decides whether the
    fleet is still usable.  A broken pipe or a ``shutdown`` task ends the
    loop; attached segments are dropped by the interpreter-exit hook in
    :mod:`repro.graph.shm`.
    """
    sanitizer = None
    if sanitize:
        from ..sanitize import install_sanitizer

        sanitizer = install_sanitizer()
    shards: "dict[str, _WorkerShard]" = {}
    running = True
    while running:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if msg[0] == "shutdown":
                running = False
                result = None
            else:
                result = _handle_task(shards, worker_id, n_workers, msg)
                if sanitizer is not None:
                    sanitizer.assert_clean()
            reply = ("ok", result)
        except BaseException as exc:  # surfaced to the parent as a task error
            reply = ("error", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (OSError, ValueError):
            break
    conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _global_prefix(counts: "list[int]", n_workers: int) -> int:
    """Longest contiguous global prefix covered by per-worker counts.

    Worker ``k`` holding ``c_k`` local samples covers global indices
    ``k, k+T, ..., k+(c_k-1)T``; the first *missing* global index of the
    fleet is ``min_k (c_k * T + k)``, which is exactly the prefix length.
    """
    return min(c * n_workers + k for k, c in enumerate(counts))


class _Worker:
    """A live worker process and its parent end of the task pipe."""

    __slots__ = ("index", "process", "conn")

    def __init__(self, index, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn


@dataclass
class _ModelState:
    """Parent bookkeeping for one model resident in the fleet."""

    shared: SharedModel
    counts: "list[int]"
    pool: "ShardPool"
    entropy: int = 0


class ShardRuntime:
    """A persistent fleet of shard workers serving published models.

    The runtime is the parent-side owner of everything cross-process:
    worker lifecycles, the per-model :class:`~repro.graph.shm.SharedModel`
    segments, and the strided-shard bookkeeping.  All operations are
    serialised on one lock — a fan-out *round* (send to all workers,
    collect all replies) is the unit of concurrency, and the parallelism
    lives inside the round, across the worker processes.

    Crash discipline: any worker death, unresponsive pipe, or task error
    raises :class:`ShardError` and marks the runtime ``broken``; callers
    (the service) then fall back to in-process pools, which produce
    bit-for-bit identical answers under the indexed-stream discipline.
    """

    def __init__(self, n_workers: int, *, model: str = "ic",
                 chunk_sets: int = 256,
                 start_timeout: float = DEFAULT_START_TIMEOUT) -> None:
        if n_workers <= 0:
            raise ShardError("shard runtime needs at least one worker")
        self.n_workers = n_workers
        self._model = model
        self._chunk_sets = chunk_sets
        self._lock = threading.Lock()
        self._models: "dict[str, _ModelState]" = {}  #: guarded-by: _lock
        self._broken = False  #: guarded-by: _lock
        self._workers: "list[_Worker]" = []  #: guarded-by: _lock
        # Workers inherit the sanitizer decision at start: either the
        # parent has one installed now, or the env opted the run in.
        from ..sanitize import current_sanitizer

        sanitize = (current_sanitizer() is not None
                    or os.environ.get("REPRO_SANITIZE") == "1")
        ctx = multiprocessing.get_context("spawn")
        try:
            with span("serve.shard.start", workers=n_workers):
                for k in range(n_workers):
                    parent_conn, child_conn = ctx.Pipe()
                    process = ctx.Process(
                        target=_worker_main,
                        args=(k, n_workers, child_conn, sanitize),
                        daemon=True,
                        name=f"repro-shard-{k}",
                    )
                    process.start()
                    child_conn.close()
                    self._workers.append(_Worker(k, process, parent_conn))
                # Readiness barrier: every worker answers a ping before the
                # runtime is handed out, so spawn/import failures surface
                # here and not in the middle of a query.
                self._broadcast(("ping",), timeout=start_timeout)
        except ShardError:
            self.close()
            raise
        except (OSError, ValueError) as exc:
            self.close()
            raise ShardError(f"failed to start shard workers: {exc}") from exc
        set_gauge("serve.shard.workers", n_workers)

    # -- fleet plumbing ------------------------------------------------

    @property
    def broken(self) -> bool:
        """Whether the fleet has been marked unusable."""
        with self._lock:
            return self._broken

    def _recv(self, worker: _Worker, timeout: "float | None"):
        """One reply from ``worker``, with crash and hang detection."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not worker.conn.poll(0.05):
            if not worker.process.is_alive():
                inc("serve.shard.worker_crashes")
                raise ShardError(
                    f"shard worker {worker.index} died "
                    f"(exit code {worker.process.exitcode})"
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise ShardError(
                    f"shard worker {worker.index} unresponsive "
                    f"after {timeout:.1f}s"
                )
        try:
            status, payload = worker.conn.recv()
        except (EOFError, OSError) as exc:
            inc("serve.shard.worker_crashes")
            raise ShardError(
                f"shard worker {worker.index} hung up mid-reply"
            ) from exc
        if status != "ok":
            raise ShardError(f"shard worker {worker.index}: {payload}")
        return payload

    def _broadcast(self, message: tuple, timeout: "float | None" = None):
        """One fan-out round: ``message`` to every worker, replies in
        worker order.  Raises :class:`ShardError` on any worker failure;
        the caller (which holds ``_lock``) marks the runtime broken."""
        for worker in self._workers:
            try:
                worker.conn.send(message)
            except (OSError, ValueError) as exc:
                inc("serve.shard.worker_crashes")
                raise ShardError(
                    f"shard worker {worker.index} pipe is closed"
                ) from exc
        replies = []
        for worker in self._workers:
            replies.append(self._recv(worker, timeout))
        inc("serve.shard.tasks", len(self._workers))
        return replies

    def _ensure_open(self) -> None:
        if self._broken:
            raise ShardError("shard runtime is broken")
        if not self._workers:
            raise ShardError("shard runtime is closed")

    # -- models --------------------------------------------------------

    def pool_for(self, token: str, coarse: InfluenceGraph,
                 entropy: int) -> "ShardPool":
        """The fleet-backed pool for model ``token``.

        First sight of a token publishes the coarse graph into shared
        memory and broadcasts an ``attach``; the segment lives until
        :meth:`retain` drops the token or the runtime closes.  ``entropy``
        must be the same value an in-process pool for this model would
        derive, so fallback reproduces identical samples.
        """
        with self._lock:
            self._ensure_open()
            state = self._models.get(token)
            if state is None:
                shared = SharedModel.publish(token, coarse)
                try:
                    self._broadcast(("attach", shared.spec, entropy,
                                     self._model, self._chunk_sets))
                except ShardError:
                    self._broken = True
                    shared.unlink()
                    raise
                inc("serve.shard.models")
                inc("serve.shard.publish_bytes", shared.nbytes)
                state = _ModelState(
                    shared=shared,
                    counts=[0] * self.n_workers,
                    pool=ShardPool(self, token, coarse),
                    entropy=entropy,
                )
                self._models[token] = state
            elif state.pool.graph is not coarse:
                # Same content address, new model object (evicted and
                # rebuilt): rebind the facade; the workers' shards keyed by
                # token are built from identical content, so nothing to redo.
                state.pool = ShardPool(self, token, coarse)
            return state.pool

    def retain(self, tokens: "set[str]") -> None:
        """Drop every resident model not in ``tokens`` (cache eviction).

        Broadcasts a ``detach`` so workers evict their shard state and
        their cached segment mapping, then unlinks the segment.
        """
        with self._lock:
            if self._broken or not self._workers:
                return
            stale = [t for t in self._models if t not in tokens]
            for token in stale:
                state = self._models.pop(token)
                try:
                    self._broadcast(
                        ("detach", token, state.shared.spec.graph.name))
                except ShardError:
                    self._broken = True
                    raise
                finally:
                    state.shared.unlink()
                inc("serve.shard.detach")

    # -- pool operations ----------------------------------------------

    def grow(self, token: str, n_samples: int,
             deadline: "float | None" = None) -> int:
        """Grow model ``token``'s logical pool to ``n_samples`` sets.

        Mirrors :meth:`repro.serve.pool.SamplePool.ensure`: returns the
        usable prefix ``min(n_samples, assembled prefix)``, growing only
        the shortfall, stopping at chunk boundaries past ``deadline``.
        """
        if n_samples <= 0:
            raise AlgorithmError("n_samples must be positive")
        with self._lock:
            self._ensure_open()
            state = self._models[token]
            prefix = _global_prefix(state.counts, self.n_workers)
            reused = min(prefix, n_samples)
            if reused:
                inc("serve.shard.reuse", reused)
            if prefix >= n_samples:
                return n_samples
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            with span("serve.shard.grow", have=prefix, want=n_samples):
                try:
                    counts = self._broadcast(
                        ("grow", token, n_samples, remaining))
                except ShardError:
                    self._broken = True
                    raise
            inc("serve.shard.drawn", sum(counts) - sum(state.counts))
            state.counts = list(counts)
            return min(n_samples,
                       _global_prefix(state.counts, self.n_workers))

    def score(self, token: str, seed_sets: "list[np.ndarray]",
              prefix: int) -> "list[int]":
        """Total hit counts of each seed set against the prefix.

        Shards are disjoint slices of the prefix, so integer hit counts
        sum exactly — no floating point crosses the process boundary.
        """
        with self._lock:
            self._ensure_open()
            with span("serve.shard.score", queries=len(seed_sets),
                      n_samples=prefix):
                try:
                    per_worker = self._broadcast(
                        ("score", token, seed_sets, prefix))
                except ShardError:
                    self._broken = True
                    raise
        return [int(sum(counts)) for counts in zip(*per_worker)]

    def size(self, token: str) -> int:
        """Current assembled prefix length of model ``token``'s pool."""
        with self._lock:
            state = self._models.get(token)
            if state is None:
                return 0
            return _global_prefix(state.counts, self.n_workers)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Stop the fleet and unlink every published segment (idempotent)."""
        with self._lock:
            workers, self._workers = self._workers, []
            models, self._models = dict(self._models), {}
            self._broken = True
        for worker in workers:
            try:
                worker.conn.send(("shutdown",))
            except (OSError, ValueError):
                pass  # already dead; join/terminate below still applies
        for worker in workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.conn.close()
        for state in models.values():
            state.shared.unlink()
        if workers:
            set_gauge("serve.shard.workers", 0)

    def __enter__(self) -> "ShardRuntime":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def stats(self) -> dict:
        """A JSON-able snapshot for the service's ``/stats`` body."""
        with self._lock:
            return {
                "workers": len(self._workers),
                "broken": self._broken,
                "models": {
                    token: _global_prefix(state.counts, self.n_workers)
                    for token, state in self._models.items()
                },
            }


class ShardPool:
    """Parent-side facade over one model's fleet-sharded pool.

    Duck-type compatible with the slice of
    :class:`~repro.serve.pool.SamplePool` the estimate path uses
    (``ensure`` / ``estimator`` / ``size`` / ``graph``), so
    ``InfluenceService._estimate_inner`` runs unchanged against either.
    Maximization is *not* offered: greedy max coverage needs the full RR
    sets (decremental gains), not hit counts, so ``maximize`` stays on
    the in-process pool.
    """

    def __init__(self, runtime: ShardRuntime, token: str,
                 graph: InfluenceGraph) -> None:
        self._runtime = runtime
        self._token = token
        self.graph = graph
        # Identical float pipeline to RRSampler.total_weight — the scale
        # must match the in-process estimator bit-for-bit.
        weights = graph.weights.astype(np.float64)
        cum = np.cumsum(weights)
        self.total_weight = float(cum[-1]) if graph.n else 0.0

    @property
    def size(self) -> int:
        """Assembled prefix length (sets usable without further growth)."""
        return self._runtime.size(self._token)

    def ensure(self, n_samples: int, deadline: "float | None" = None) -> int:
        """Grow the fleet's shards to cover ``n_samples``; see
        :meth:`ShardRuntime.grow`."""
        return self._runtime.grow(self._token, n_samples, deadline=deadline)

    def estimator(self, n_samples: int) -> "ShardEstimator":
        """A protocol-conforming estimator over the first ``n_samples``
        sets of the logical pool."""
        return ShardEstimator(self, n_samples)

    def score(self, seed_sets: "list[np.ndarray]", prefix: int) -> "list[int]":
        """Batched hit counts (one fan-out round for many seed sets)."""
        return self._runtime.score(self._token, seed_sets, prefix)


class ShardEstimator:
    """RIS estimate over a fleet-sharded pool prefix.

    Conforms to the :class:`~repro.core.frameworks.InfluenceEstimator`
    protocol.  The value is ``total_weight * hits / n_samples`` with
    ``hits`` an exact integer summed across disjoint shards — the same
    expression, on the same numbers, as
    :class:`~repro.algorithms.ris_estimator.RISEstimator` over the
    equivalent in-process pool.
    """

    def __init__(self, pool: ShardPool, n_samples: int) -> None:
        if n_samples <= 0:
            raise AlgorithmError("n_samples must be positive")
        self._pool = pool
        self.n_samples = n_samples

    def estimate(self, graph: InfluenceGraph, seeds) -> float:
        """Estimated influence of ``seeds`` on the pool's graph."""
        if graph is not self._pool.graph:
            raise AlgorithmError("ShardEstimator is bound to its pool's graph")
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size == 0:
            raise AlgorithmError("seed set must be non-empty")
        hits = self._pool.score([seeds], self.n_samples)[0]
        return self._pool.total_weight * hits / self.n_samples
