"""A stdlib JSON endpoint over :class:`~.service.InfluenceService`.

This is deliberately tiny — ``http.server.ThreadingHTTPServer`` plus
:mod:`json` — so ``repro serve`` works anywhere the library does, with no
framework dependency.  It exists for shell experimentation and load
testing, not production fronting; embed :class:`InfluenceService` directly
for anything serious.

Routes (all bodies JSON):

* ``POST /estimate``        — ``{"seeds": [0, 3], "n_samples": 5000?}``
* ``POST /estimate_many``   — ``{"seed_sets": [[0], [1, 2]], "n_samples": ...?}``
* ``POST /maximize``        — ``{"k": 10, "n_samples": ...?}``
* ``GET  /healthz``         — liveness
* ``GET  /stats``           — :meth:`InfluenceService.stats`

Error mapping: admission-control overflow
(:class:`~repro.errors.BudgetExceededError`) is ``429``; any other
:class:`~repro.errors.ReproError` (bad seeds, bad k) is ``400``; malformed
JSON is ``400``.  Degraded queries still return ``200`` with
``"degraded": true`` and the achieved-accuracy report inline.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import BudgetExceededError, ReproError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc
from .service import InfluenceService, QueryResult

__all__ = ["ServeHandler", "make_server", "serve_forever"]

_MAX_BODY_BYTES = 8 * 1024 * 1024


def _query_json(result: QueryResult) -> dict:
    body = {
        "value": result.value,
        "n_samples": result.n_samples,
        "requested_samples": result.requested_samples,
        "degraded": result.degraded,
        "seconds": result.seconds,
    }
    if result.report is not None:
        body["report"] = {
            "reliability_product": result.report.reliability_product,
            "estimation_eps": result.report.estimation_eps,
            "estimation_upper_rel_error":
                result.report.estimation_upper_rel_error,
            "maximization_effective_alpha":
                result.report.maximization_effective_alpha,
        }
    return body


class ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to one service + graph via :func:`make_server`."""

    # Set by make_server on the handler subclass.
    service: InfluenceService
    graph: InfluenceGraph

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr chatter; obs counters cover it."""

    # -- plumbing ------------------------------------------------------

    def _reply(self, status: int, body: dict) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        inc("serve.http.responses")

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if not 0 < length <= _MAX_BODY_BYTES:
            raise ReproError("request body must be non-empty JSON")
        try:
            body = json.loads(self.rfile.read(length))
        except ValueError as exc:
            raise ReproError(f"malformed JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise ReproError("request body must be a JSON object")
        return body

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's casing
        if self.path == "/healthz":
            self._reply(200, {"status": "ok"})
        elif self.path == "/stats":
            self._reply(200, self.service.stats())
        else:
            self._reply(404, {"error": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server's casing
        try:
            body = self._read_body()
            if self.path == "/estimate":
                result = self.service.estimate(
                    self.graph, body["seeds"],
                    n_samples=body.get("n_samples"),
                )
                self._reply(200, _query_json(result))
            elif self.path == "/estimate_many":
                results = self.service.estimate_many(
                    self.graph, body["seed_sets"],
                    n_samples=body.get("n_samples"),
                )
                self._reply(200, {"results": [_query_json(r) for r in results]})
            elif self.path == "/maximize":
                result = self.service.maximize(
                    self.graph, int(body["k"]),
                    n_samples=body.get("n_samples"),
                )
                self._reply(200, {
                    "seeds": [int(v) for v in result.seeds],
                    "estimated_influence": result.estimated_influence,
                    "extras": {
                        key: value
                        for key, value in (result.extras or {}).items()
                        if isinstance(value, (int, float, str, bool))
                    },
                })
            else:
                self._reply(404, {"error": f"no route {self.path}"})
        except KeyError as exc:
            self._reply(400, {"error": f"missing field {exc}"})
        except BudgetExceededError as exc:
            inc("serve.http.rejected")
            self._reply(429, {"error": str(exc)})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})


def make_server(service: InfluenceService, graph: InfluenceGraph,
                host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Build (but don't start) the HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]`` — the CLI prints it so scripts (and the CI
    smoke test) can connect without racing.
    """
    handler = type("BoundServeHandler", (ServeHandler,),
                   {"service": service, "graph": graph})
    return ThreadingHTTPServer((host, port), handler)


def serve_forever(server: ThreadingHTTPServer,
                  service: InfluenceService) -> None:
    """Run until interrupted, then shut both layers down cleanly."""
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass  # reprolint: disable=RL006 - Ctrl-C is the documented shutdown path
    finally:
        server.server_close()
        service.close()
