"""A stdlib JSON endpoint over :class:`~.service.InfluenceService`.

This is deliberately tiny — ``http.server.ThreadingHTTPServer`` plus
:mod:`json` — so ``repro serve`` works anywhere the library does, with no
framework dependency.  It exists for shell experimentation and load
testing, not production fronting; embed :class:`InfluenceService` directly
for anything serious.

Routes (all bodies JSON):

* ``POST /estimate``        — ``{"seeds": [0, 3], "n_samples": 5000?}``
* ``POST /estimate_many``   — ``{"seed_sets": [[0], [1, 2]], "n_samples": ...?}``
* ``POST /maximize``        — ``{"k": 10, "n_samples": ...?}``
* ``POST /insert_edge``     — ``{"u": 0, "v": 8, "p": 0.3}`` (live graphs)
* ``POST /delete_edge``     — ``{"u": 0, "v": 8}`` (live graphs)
* ``POST /apply_deltas``    — ``{"deltas": [{"op": "insert", ...}, ...]}``
* ``GET  /healthz``         — liveness
* ``GET  /stats``           — :meth:`InfluenceService.stats`

When the server fronts a live graph (a :class:`~.dynamic.DynamicModel`),
every query reply carries the ``"epoch"`` it was answered at, and the
mutation routes return ``{"epoch", "token", "applied", "fast", "rebuilt",
"model_retained"}``.  On a static server the mutation routes are ``400``;
with ``readonly=True`` they are ``403`` (the graph is live but this
endpoint may not write it).

Error mapping: admission-control overflow
(:class:`~repro.errors.BudgetExceededError`) is ``429``; any other
:class:`~repro.errors.ReproError` (bad seeds, bad k, malformed deltas) is
``400``; malformed JSON is ``400``.  Degraded queries still return ``200``
with ``"degraded": true`` and the achieved-accuracy report inline.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.dynamic import Delta
from ..errors import BudgetExceededError, ReproError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc
from .dynamic import DynamicModel
from .service import InfluenceService, QueryResult

__all__ = ["ServeHandler", "make_server", "serve_forever"]

_MAX_BODY_BYTES = 8 * 1024 * 1024


def _query_json(result: QueryResult) -> dict:
    body = {
        "value": result.value,
        "n_samples": result.n_samples,
        "requested_samples": result.requested_samples,
        "degraded": result.degraded,
        "seconds": result.seconds,
        # Which estimator family answered (absent only for results
        # predating the registry, e.g. hand-built QueryResults in tests).
        "estimator": result.extras.get("estimator", "ris"),
    }
    if result.report is not None:
        body["report"] = {
            "reliability_product": result.report.reliability_product,
            "estimation_eps": result.report.estimation_eps,
            "estimation_upper_rel_error":
                result.report.estimation_upper_rel_error,
            "maximization_effective_alpha":
                result.report.maximization_effective_alpha,
        }
    return body


class ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to one service + graph via :func:`make_server`."""

    # Set by make_server on the handler subclass.
    service: InfluenceService
    graph: InfluenceGraph
    dynamic: "DynamicModel | None" = None
    readonly: bool = False

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr chatter; obs counters cover it."""

    # -- plumbing ------------------------------------------------------

    def _reply(self, status: int, body: dict) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        inc("serve.http.responses")

    def _read_body(self) -> dict:
        # Content-Length is attacker-controlled text: parse it under the
        # bad-request path (400), never the unhandled one (500).  When the
        # header is unusable the body was never consumed, so this
        # keep-alive connection is desynced — it must close rather than
        # parse body bytes as the next request line.
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            self.close_connection = True
            raise ReproError(
                f"malformed Content-Length header: {exc}"
            ) from exc
        if not 0 < length <= _MAX_BODY_BYTES:
            self.close_connection = True
            raise ReproError("request body must be non-empty JSON")
        try:
            body = json.loads(self.rfile.read(length))
        except ValueError as exc:
            raise ReproError(f"malformed JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise ReproError("request body must be a JSON object")
        return body

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's casing
        if self.path == "/healthz":
            self._reply(200, {"status": "ok"})
        elif self.path == "/stats":
            self._reply(200, self.service.stats())
        else:
            self._reply(404, {"error": f"no route {self.path}"})

    def _resolve(self) -> "tuple[int | None, InfluenceGraph]":
        """The graph to answer on — the live epoch's, or the static one."""
        if self.dynamic is not None:
            epoch, graph, _, _ = self.dynamic.resolve()
            return epoch, graph
        return None, self.graph

    def _stamp(self, body: dict, epoch: "int | None") -> dict:
        if epoch is not None:
            body["epoch"] = epoch
        return body

    def _mutation_deltas(self, body: dict) -> "list[Delta]":
        if self.path == "/insert_edge":
            return [Delta("insert", int(body["u"]), int(body["v"]),
                          float(body["p"]))]
        if self.path == "/delete_edge":
            return [Delta("delete", int(body["u"]), int(body["v"]))]
        raw = body["deltas"]
        if not isinstance(raw, list):
            raise ReproError("'deltas' must be a JSON array")
        return [Delta.from_json(d) for d in raw]

    def do_POST(self) -> None:  # noqa: N802 - http.server's casing
        try:
            body = self._read_body()
            if self.path == "/estimate":
                epoch, graph = self._resolve()
                result = self.service.estimate(
                    graph, body["seeds"],
                    n_samples=body.get("n_samples"),
                )
                self._reply(200, self._stamp(_query_json(result), epoch))
            elif self.path == "/estimate_many":
                epoch, graph = self._resolve()
                results = self.service.estimate_many(
                    graph, body["seed_sets"],
                    n_samples=body.get("n_samples"),
                )
                self._reply(200, self._stamp(
                    {"results": [_query_json(r) for r in results]}, epoch))
            elif self.path == "/maximize":
                epoch, graph = self._resolve()
                result = self.service.maximize(
                    graph, int(body["k"]),
                    n_samples=body.get("n_samples"),
                )
                self._reply(200, self._stamp({
                    "seeds": [int(v) for v in result.seeds],
                    "estimated_influence": result.estimated_influence,
                    "extras": {
                        key: value
                        for key, value in (result.extras or {}).items()
                        if isinstance(value, (int, float, str, bool))
                    },
                }, epoch))
            elif self.path in ("/insert_edge", "/delete_edge",
                               "/apply_deltas"):
                if self.dynamic is None:
                    self._reply(400, {
                        "error": "this server fronts a static graph; start "
                                 "with sampler='addressable' to serve a "
                                 "live one",
                    })
                elif self.readonly:
                    inc("serve.http.readonly_rejected")
                    self._reply(403, {"error": "server is read-only"})
                else:
                    deltas = self._mutation_deltas(body)
                    self._reply(200, self.dynamic.apply_deltas(deltas))
            else:
                self._reply(404, {"error": f"no route {self.path}"})
        except KeyError as exc:
            self._reply(400, {"error": f"missing field {exc}"})
        except (TypeError, ValueError) as exc:
            self._reply(400, {"error": f"malformed field: {exc}"})
        except BudgetExceededError as exc:
            inc("serve.http.rejected")
            self._reply(429, {"error": str(exc)})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})


def make_server(service: InfluenceService, graph: InfluenceGraph,
                host: str = "127.0.0.1",
                port: int = 0,
                dynamic: "DynamicModel | None" = None,
                readonly: bool = False) -> ThreadingHTTPServer:
    """Build (but don't start) the HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]`` — the CLI prints it so scripts (and the CI
    smoke test) can connect without racing.

    Pass ``dynamic`` (from :meth:`InfluenceService.attach_dynamic`) to
    front a live graph: queries then answer on the current delta-epoch and
    the mutation routes are enabled (unless ``readonly``).
    """
    handler = type("BoundServeHandler", (ServeHandler,),
                   {"service": service, "graph": graph,
                    "dynamic": dynamic, "readonly": readonly})
    return ThreadingHTTPServer((host, port), handler)


def serve_forever(server: ThreadingHTTPServer,
                  service: InfluenceService) -> None:
    """Run until interrupted, then shut both layers down cleanly."""
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass  # Ctrl-C is the documented shutdown path
    finally:
        server.server_close()
        service.close()
