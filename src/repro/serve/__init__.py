"""repro.serve — a cached, batched influence-query engine.

The paper's frameworks (Algorithms 3/4) are built around one expensive
preprocessing artifact — the coarsened graph ``H`` and its sketches — that
is amortised over many queries.  This package supplies the amortisation
layer the ROADMAP's "heavy traffic" north star needs, with no dependencies
beyond the library itself:

* :class:`ModelCache` (:mod:`.cache`) — a content-addressed LRU of
  coarsened models keyed by ``(graph digest, r, seed, scc_backend,
  executor)``, with a byte budget and optional warm-start from
  ``core.persistence`` archives;
* :class:`SamplePool` (:mod:`.pool`) — one shared, grow-only RR-set pool
  per model that concurrent queries are coalesced onto (one pool, many
  seed sets), with deadline-bounded growth for graceful degradation;
* :class:`InfluenceService` (:mod:`.service`) — the facade: ``estimate``,
  ``estimate_many``, ``maximize`` behind a thread-pool dispatcher with
  bounded-queue admission control (:class:`~repro.errors
  .BudgetExceededError` on overflow);
* :class:`DynamicModel` (:mod:`.dynamic`) — live-graph lineages: edge
  mutations maintained incrementally by Algorithm 7 under addressable
  coins and published as content-addressed delta-epochs, with
  epoch-consistent queries racing updates safely;
* :class:`ShardRuntime` (:mod:`.shard`) — optional multi-process serving:
  a persistent worker fleet attaches the coarse model over shared memory
  (:mod:`repro.graph.shm`) and owns strided shards of every pool, so
  batched estimates fan out across cores with bit-for-bit identical
  answers and graceful in-process fallback on worker crashes;
* :mod:`.http` — a small stdlib JSON endpoint (``repro serve``) for shell
  and load-test use.

``ServiceConfig(estimator=...)`` picks the family answering ``/estimate``
from the :mod:`repro.estimators` registry: ``"ris"`` (default, pooled),
``"sketch"`` (a precomputed bottom-k :class:`repro.sketch.InfluenceOracle`
per model epoch — O(1) point queries, no pool traffic), or ``"mc"``.
``/maximize`` always runs on the RR pool.

Every stage emits ``repro.obs`` spans and counters (``serve.cache.*``,
``serve.pool.reuse``, ``serve.queue.depth``, ``serve.deadline.degraded``);
see ``docs/serving.md`` for the cache-key/coalescing/backpressure
semantics and ``benchmarks/bench_serve.py`` for the throughput evidence.
"""

from .cache import ModelCache, ModelKey
from .dynamic import DynamicModel
from .pool import PoolMaximizer, SamplePool
from .service import InfluenceService, QueryResult, ServiceConfig
from .shard import ShardError, ShardPool, ShardRuntime

__all__ = [
    "InfluenceService",
    "ServiceConfig",
    "QueryResult",
    "DynamicModel",
    "ModelCache",
    "ModelKey",
    "SamplePool",
    "PoolMaximizer",
    "ShardError",
    "ShardPool",
    "ShardRuntime",
]
