"""Shared RR-set sample pools (the query-coalescing substrate).

One :class:`SamplePool` exists per cached model.  It owns a grow-only
RR-set collection: a query needing ``t`` sets calls
:meth:`SamplePool.ensure`, which draws only the shortfall, and then scores
its seed set against the *prefix* ``rr_sets[:t]``.  Because sets are
appended in draw order, the prefix of length ``t`` is distributed exactly
as an independent collection of ``t`` sets — so many concurrent queries
(with different seed sets and even different sketch sizes) share one pool
without biasing each other, and a batch of q queries costs one sketch
construction instead of q (``serve.pool.reuse`` counts the sets a query
did *not* have to draw).

Growth happens in chunks so a per-query deadline can stop it between
chunks: the query then degrades to the achieved prefix instead of missing
its deadline (``serve.deadline.degraded``), and the service reports the
weaker accuracy through ``analysis.bounds.guarantee_report``.

Determinism: the pool follows the *indexed-stream* discipline — sample
``i`` is drawn from its own generator, :func:`repro.rng.indexed_rng`
seeded by ``(entropy, i)``, where the pool's entropy is one integer drawn
up front from the caller's ``rng``.  The pool's contents are therefore a
pure function of ``(graph, entropy, index)``: for a fixed service seed the
value of a query depends only on (model, seed set, sketch size) — never on
which thread drew the sets, and never on how the index range is
partitioned across *processes*.  That is what makes batched, sequential,
and sharded (:mod:`repro.serve.shard`) answers bit-for-bit identical
(asserted in ``benchmarks/bench_serve.py`` and
``benchmarks/bench_serve_shard.py``).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..algorithms.ris_estimator import RISEstimator
from ..core.frameworks import MaximizationResult
from ..diffusion.rr_sets import CoverageInstance, RRSampler
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, span
from ..rng import RngLike
from ..rng import derive_entropy, ensure_rng, indexed_rng

__all__ = ["SamplePool", "PoolMaximizer"]

#: Sets drawn per deadline check; small enough that a deadline overshoots
#: by at most one chunk, large enough that the check is amortised away.
DEFAULT_CHUNK_SETS = 256


class SamplePool:
    """A grow-only RR-set pool over one (coarse) graph.

    Parameters
    ----------
    graph:
        The graph queries are scored on (for a served model, the coarse
        graph ``H``).
    rng:
        Seed or generator the pool's entropy is drawn from (one integer,
        drawn immediately — see :func:`repro.rng.derive_entropy`); every
        sample index then gets its own :func:`repro.rng.indexed_rng`
        stream.
    model:
        Diffusion model (``"ic"`` / ``"lt"``), as on
        :class:`~repro.diffusion.rr_sets.RRSampler`.
    chunk_sets:
        Growth granularity between deadline checks.
    """

    def __init__(self, graph: InfluenceGraph, rng: RngLike = None,
                 model: str = "ic",
                 chunk_sets: int = DEFAULT_CHUNK_SETS) -> None:
        if chunk_sets <= 0:
            raise AlgorithmError("chunk_sets must be positive")
        self.graph = graph
        self.entropy = derive_entropy(rng)
        # The sampler's own fallback stream is the entropy's parent stream,
        # independent of every spawned child; ensure() never touches it —
        # pooled sample i always gets stream (entropy, i).
        self._sampler = RRSampler(graph, rng=ensure_rng(self.entropy),
                                  model=model)
        self._rr_sets: list[np.ndarray] = []  #: guarded-by: _lock
        self._coverage: "CoverageInstance | None" = None  #: guarded-by: _lock
        self._coverage_size = 0  #: guarded-by: _lock
        self._chunk_sets = chunk_sets
        self._lock = threading.Lock()

    @property
    def size(self) -> int:
        """Sets currently in the pool."""
        return len(self._rr_sets)

    @property
    def total_weight(self) -> float:
        """Total vertex weight of the pooled graph (the estimator scale)."""
        return self._sampler.total_weight

    @property
    def examined_edges(self) -> int:
        """Edges examined by all sampling so far (the paper's cost unit)."""
        return self._sampler.examined_edges

    def ensure(self, n_samples: int, deadline: "float | None" = None) -> int:
        """Grow the pool to ``n_samples`` sets (or until ``deadline``).

        ``deadline`` is an absolute :func:`time.monotonic` instant; growth
        stops at the first chunk boundary past it.  Returns the usable
        prefix length for this query: ``min(n_samples, pool size)`` — equal
        to ``n_samples`` unless the deadline cut growth short.  Thread-safe;
        concurrent callers coalesce on one lock and each reuses whatever
        the others already drew.
        """
        if n_samples <= 0:
            raise AlgorithmError("n_samples must be positive")
        with self._lock:
            reused = min(len(self._rr_sets), n_samples)
            if reused:
                inc("serve.pool.reuse", reused)
            if len(self._rr_sets) >= n_samples:
                return n_samples
            with span("serve.pool.grow", have=len(self._rr_sets),
                      want=n_samples):
                while len(self._rr_sets) < n_samples:
                    if deadline is not None and time.monotonic() >= deadline:
                        break
                    chunk = min(self._chunk_sets,
                                n_samples - len(self._rr_sets))
                    # Indexed-stream discipline: sample i comes from stream
                    # (entropy, i), so the pool's contents do not depend on
                    # who draws them — a sharded worker fleet drawing the
                    # same indices produces the identical pool.
                    for _ in range(chunk):
                        index = len(self._rr_sets)
                        self._rr_sets.append(self._sampler.sample(
                            rng=indexed_rng(self.entropy, index)))
            inc("serve.pool.drawn", len(self._rr_sets) - reused)
            return min(n_samples, len(self._rr_sets))

    def coverage(self) -> CoverageInstance:
        """A coverage index over the current pool (rebuilt only on growth)."""
        with self._lock:
            if self._coverage is None or self._coverage_size != len(self._rr_sets):
                self._coverage = CoverageInstance(self._rr_sets, self.graph.n)
                self._coverage_size = len(self._rr_sets)
            return self._coverage

    def estimator(self, n_samples: int) -> RISEstimator:
        """A protocol-conforming estimator over the first ``n_samples`` sets.

        The returned :class:`RISEstimator` is bound to this pool's
        coverage via the pool-reuse path
        (:meth:`RISEstimator.from_coverage`); call :meth:`ensure` first so
        the prefix exists.
        """
        return RISEstimator.from_coverage(
            self.graph, self.coverage(), self.total_weight,
            n_samples=n_samples,
        )

    def maximizer(self, n_samples: int) -> "PoolMaximizer":
        """A protocol-conforming maximizer over the first ``n_samples`` sets."""
        return PoolMaximizer(self, n_samples)


class PoolMaximizer:
    """Greedy max coverage over a pool prefix (RIS semantics, zero sampling).

    Conforms to the :class:`~repro.core.frameworks.InfluenceMaximizer`
    protocol so ``maximize_on_coarse`` (Algorithm 4) can run it unchanged;
    the difference from :class:`~repro.algorithms.ris.RISMaximizer` is that
    the sketch already exists in the shared pool.
    """

    def __init__(self, pool: SamplePool, n_samples: int) -> None:
        if n_samples <= 0:
            raise AlgorithmError("n_samples must be positive")
        self._pool = pool
        self.n_samples = n_samples

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if graph is not self._pool.graph:
            raise AlgorithmError(
                "PoolMaximizer is bound to its pool's graph"
            )
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        available = self._pool.ensure(self.n_samples)
        if available < self.n_samples:
            raise AlgorithmError(
                f"pool holds {available} sets < requested {self.n_samples}"
            )
        with span("serve.pool.maximize", k=k, n_samples=self.n_samples):
            # Greedy needs exact decremental gains over its own prefix, so
            # it builds a prefix coverage rather than slicing the shared one.
            coverage = CoverageInstance(
                self._pool._rr_sets[: self.n_samples], graph.n
            )
            seeds, covered = coverage.greedy(k)
        estimate = self._pool.total_weight * covered / self.n_samples
        return MaximizationResult(
            seeds=seeds,
            estimated_influence=estimate,
            extras={"rr_sets": self.n_samples, "covered": covered,
                    "pooled": True},
        )
