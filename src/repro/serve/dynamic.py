""":class:`DynamicModel` — a live-graph lineage inside the serving layer.

Wires Algorithm 7 (:class:`repro.core.dynamic.DynamicCoarsener`) into
:class:`~.service.InfluenceService`: each edge mutation advances the
lineage by one *delta-epoch*, incrementally repairing the coarsened model
instead of cold-rebuilding it, and publishes the result into the
content-addressed :class:`~.cache.ModelCache`.

Epoch semantics
---------------

An epoch is one published state: ``(epoch, graph, key, model)``.  Because
the service runs the *addressable* coin discipline, the incrementally
maintained model at every epoch is bit-for-bit the cold
:func:`repro.core.dynamic.coarsen_addressable` of the mutated graph — so
the epoch's :class:`~.cache.ModelKey` is the address of the mutated
graph.  Consequences:

* ``/stats`` tokens and warm archives stay content-addressed across
  mutations; an archive written at epoch ``e`` reloads *only* for the
  graph of epoch ``e`` (stale-epoch archives degrade to a miss);
* an evicted epoch model is rebuilt cold to the identical bits, so pool
  rebinding after eviction cannot change query values;
* queries never observe a torn model: the published state is swapped as
  one tuple (copy-on-publish), and a reader that resolved epoch ``e``
  keeps epoch ``e``'s immutable graph/model/pool objects for its whole
  query even if a delta lands concurrently.

Writers are serialised per lineage by a mutation lock; readers take no
lock at all (a single attribute read of the current tuple is atomic).

Chained epoch keys
------------------

Hashing the whole CSR at every delta-epoch would make each single-edge
mutation O(n + m) regardless of how cheap the incremental repair was.
Instead the lineage maintains a *digest chain*: epoch ``e+1``'s graph
digest is ``blake2b(chain_e || canonical delta encoding)``
(:func:`chain_digest`), installed into the fresh graph object's lazy
digest slot before ``key_for`` runs — O(|deltas|) per epoch.  The chain
is anchored at the root graph's true content digest and **re-anchored**
every :attr:`~.service.ServiceConfig.digest_audit_interval` epochs: the
audit pays the full content hash, re-converging lineage addressing with
content addressing (a batch that nets out leaves content equal but the
chain advanced), and integrity-checks the maintained edge arrays against
a cold re-canonicalisation — drift raises instead of poisoning the
cache.  Within a lineage the chained digest is injective over delta
histories, so all the epoch-key guarantees above are preserved.

Counters/spans (see ``docs/observability.md``): span
``serve.dynamic.apply``; counters ``serve.dynamic.deltas``,
``serve.dynamic.fast_updates``, ``serve.dynamic.scc_recomputations``,
``serve.dynamic.full_rebuilds``, ``serve.dynamic.pool.retained``,
``serve.dynamic.pool.invalidated_prefix``, ``serve.dynamic.key.chained``,
``serve.dynamic.key.audits``, ``serve.dynamic.key.drift``; gauge
``serve.dynamic.epoch``.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.dynamic import Delta, DynamicCoarsener
from ..core.frameworks import MaximizationResult
from ..core.result import CoarsenResult
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, set_gauge, span
from .cache import ModelKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .service import InfluenceService, QueryResult

__all__ = ["DynamicModel", "chain_digest"]


def chain_digest(parent: str, deltas: Sequence[Delta]) -> str:
    """The chained epoch digest: ``blake2b(parent || canonical deltas)``.

    Each delta is encoded canonically — a one-byte op tag, ``u`` and ``v``
    as 8-byte little-endian integers, and the probability as a float64
    (NaN for deletes, which carry none) — so the chain is a pure function
    of ``(parent digest, delta sequence)`` and costs O(|deltas|), not the
    O(n + m) full content hash.  Two lineages that applied the same delta
    sequence from the same anchor share every chained key.
    """
    h = hashlib.blake2b(parent.encode("ascii"), digest_size=16)
    for d in deltas:
        p = float("nan") if d.p is None else float(d.p)
        h.update(struct.pack("<cqqd", d.op[:1].encode("ascii"), d.u, d.v, p))
    return h.hexdigest()


class DynamicModel:
    """One mutating influence graph served through an InfluenceService.

    Construct via :meth:`InfluenceService.attach_dynamic`.  Mutations
    (:meth:`insert_edge`, :meth:`delete_edge`, :meth:`apply_deltas`) are
    validated all-or-nothing, applied incrementally, and published
    atomically; queries (:meth:`estimate`, :meth:`maximize`) resolve the
    current epoch once and return ``(epoch, result)`` pairs that are
    always mutually consistent.
    """

    def __init__(self, service: "InfluenceService",
                 graph: InfluenceGraph) -> None:
        config = service.config
        if config.sampler != "addressable":
            raise AlgorithmError(
                "live graphs need ServiceConfig(sampler='addressable'): "
                "stream coins make the incremental model diverge from its "
                "own cold rebuild, breaking the content-addressed cache"
            )
        self._service = service
        self._mutate_lock = threading.Lock()
        self._coarsener = DynamicCoarsener(
            graph, r=config.r, rng=config.seed,
            scc_backend=config.scc_backend, coins="addressable",
        )
        key = service.key_for(graph)
        # Epoch-key chain, anchored at the root graph's true content
        # digest; advanced per batch by chain_digest and re-anchored (plus
        # integrity-checked) every ``digest_audit_interval`` epochs.
        self._chain = key.graph_digest  #: guarded-by: _mutate_lock
        model = self._coarsener.snapshot()
        service.cache.put(key, model)
        # The whole published state is one tuple so readers can never see
        # an epoch paired with another epoch's graph or model.
        #: guarded-by: _mutate_lock
        self._current: "tuple[int, InfluenceGraph, ModelKey, CoarsenResult]" \
            = (0, graph, key, model)
        set_gauge("serve.dynamic.epoch", 0)
        inc("serve.dynamic.attach")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def resolve(self) -> "tuple[int, InfluenceGraph, ModelKey, CoarsenResult]":
        """The current ``(epoch, graph, key, model)`` — one atomic read."""
        return self._current

    @property
    def epoch(self) -> int:
        return self._current[0]

    @property
    def graph(self) -> InfluenceGraph:
        return self._current[1]

    @property
    def key(self) -> ModelKey:
        return self._current[2]

    @property
    def model(self) -> CoarsenResult:
        return self._current[3]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert_edge(self, u: int, v: int, p: float) -> dict:
        """Insert edge ``(u, v)`` with probability ``p``; bump the epoch."""
        return self.apply_deltas([Delta("insert", u, v, p)])

    def delete_edge(self, u: int, v: int) -> dict:
        """Delete edge ``(u, v)``; bump the epoch."""
        return self.apply_deltas([Delta("delete", u, v)])

    def _derive_epoch_digest(self, graph: InfluenceGraph,
                             deltas: Sequence[Delta], epoch: int) -> None:
        """Advance the epoch-key chain and stamp ``graph`` with its digest.

        Ordinary epochs install the O(|deltas|) chained digest
        (:func:`chain_digest`) into the fresh graph object's lazy digest
        slot, so the subsequent ``key_for`` — and every archive or cache
        line derived from it — never re-hashes the full CSR arrays.  Every
        ``digest_audit_interval``-th epoch instead pays the full content
        hash: the chain re-anchors to the true content address (bounding
        how long a lineage key can diverge from content addressing, e.g.
        after a batch that nets out) and the maintained CSR arrays are
        integrity-checked against a cold re-canonicalisation — a drifted
        array state raises instead of silently poisoning the cache.
        """
        interval = self._service.config.digest_audit_interval
        if epoch % interval:
            self._chain = chain_digest(self._chain, deltas)
            graph._install_digest(self._chain)
            inc("serve.dynamic.key.chained")
            return
        true_digest = graph.digest()
        rebuilt = InfluenceGraph.from_edges(graph.n, *graph.edge_arrays())
        if rebuilt.digest() != true_digest:
            inc("serve.dynamic.key.drift")
            raise AlgorithmError(
                "digest audit failed: the incrementally maintained edge "
                "arrays no longer match their cold canonical form "
                f"(epoch {epoch})"
            )
        self._chain = true_digest
        inc("serve.dynamic.key.audits")

    def apply_deltas(self, deltas: Sequence[Delta]) -> dict:
        """Apply one batch of edge mutations as a single delta-epoch.

        All-or-nothing: a malformed delta raises before any state changes
        and the epoch does not advance.  On success the new model is
        published copy-on-publish (readers of the previous epoch are
        undisturbed) and a JSON-able summary is returned.
        """
        deltas = list(deltas)
        with self._mutate_lock:
            stats = self._coarsener.stats
            before_fast = stats.fast_updates
            before_scc = stats.scc_recomputations
            before_rebuilds = stats.full_rebuilds
            with span("serve.dynamic.apply", deltas=len(deltas)):
                summary = self._coarsener.apply_deltas(deltas)
                prev_epoch, _, prev_key, prev_model = self._current
                graph = self._coarsener.current_graph()
                self._derive_epoch_digest(graph, deltas, prev_epoch + 1)
                key = self._service.key_for(graph)
                # If the coarse graph survived the delta bit-for-bit, keep
                # the previous model OBJECT so the pool's identity binding
                # (and its already-drawn prefix) stays valid.  The fast
                # path reports this exactly (`coarse_changed` flips only on
                # a bitwise H change), so no digest comparison — or even a
                # snapshot — is needed to retain; after a full rebuild the
                # digests arbitrate (a rebuild may still reproduce H).
                if not summary["coarse_changed"]:
                    retained = True
                    model = prev_model
                elif not summary["rebuilt"]:
                    retained = False
                    model = self._coarsener.snapshot()
                else:
                    snapshot = self._coarsener.snapshot()
                    retained = (
                        snapshot.coarse.digest() == prev_model.coarse.digest()
                        and np.array_equal(snapshot.pi, prev_model.pi)
                    )
                    model = prev_model if retained else snapshot
                epoch = prev_epoch + 1
                self._service._publish_epoch(prev_key, key, model,
                                             retained=retained)
                self._current = (epoch, graph, key, model)
            inc("serve.dynamic.deltas", len(deltas))
            inc("serve.dynamic.fast_updates",
                stats.fast_updates - before_fast)
            inc("serve.dynamic.scc_recomputations",
                stats.scc_recomputations - before_scc)
            inc("serve.dynamic.full_rebuilds",
                stats.full_rebuilds - before_rebuilds)
            set_gauge("serve.dynamic.epoch", epoch)
        return {
            "epoch": epoch,
            "token": key.token(),
            "applied": summary["applied"],
            "fast": summary["fast"],
            "rebuilt": summary["rebuilt"],
            "model_retained": retained,
        }

    # ------------------------------------------------------------------
    # Queries (epoch-consistent)
    # ------------------------------------------------------------------

    def estimate(self, seeds: Sequence[int],
                 n_samples: "int | None" = None) -> "tuple[int, QueryResult]":
        """Estimate on the current epoch; returns ``(epoch, result)``.

        The pair is self-consistent under concurrent mutation: the epoch's
        immutable graph is resolved in the same atomic read as the epoch
        number, so the result is always *exactly* the answer for that
        epoch — never a blend of two.
        """
        epoch, graph, _, _ = self._current
        return epoch, self._service.estimate(graph, seeds,
                                             n_samples=n_samples)

    def maximize(self, k: int,
                 n_samples: "int | None" = None
                 ) -> "tuple[int, MaximizationResult]":
        """Seed selection on the current epoch; returns ``(epoch, result)``."""
        epoch, graph, _, _ = self._current
        return epoch, self._service.maximize(graph, k, n_samples=n_samples)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-able lineage summary (embedded in the ``/stats`` body)."""
        epoch, graph, key, model = self._current
        return {
            "epoch": epoch,
            "token": key.token(),
            "n": graph.n,
            "m": graph.m,
            "coarse_n": model.coarse.n,
            "coarse_m": model.coarse.m,
            "updates": self._coarsener.stats.as_dict(),
        }
