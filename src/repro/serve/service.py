""":class:`InfluenceService` — the embeddable query-engine facade.

The service owns the whole serving stack: a :class:`~.cache.ModelCache` of
coarsened models, one :class:`~.pool.SamplePool` per resident model, and a
thread-pool dispatcher with bounded-queue admission control.  A query
goes:

1. **model** — :meth:`InfluenceService.model_for` addresses the cache by
   content (:class:`~.cache.ModelKey`); a miss probes the warm directory
   and finally coarsens through the unified
   :func:`repro.core.coarsen_influence_graph` facade;
2. **admission** — each query takes a slot from a bounded pool
   (``max_workers`` running + ``max_pending`` queued); an overflowing
   submit raises :class:`~repro.errors.BudgetExceededError` *immediately*
   instead of queueing unboundedly (``serve.queue.depth`` tracks the
   in-flight count);
3. **coalescing** — concurrent estimates against the same model score
   prefixes of the model's shared :class:`~.pool.SamplePool`, so a batch
   of q queries pays for one sketch, not q;
4. **deadline** — with ``deadline_seconds`` set, pool growth stops at the
   deadline and the query degrades to the achieved prefix
   (``serve.deadline.degraded``); the weaker accuracy is reported through
   :func:`repro.analysis.bounds.guarantee_report`;
5. **sharding** (optional) — with ``shard_workers`` set, growth and
   scoring run on a persistent fleet of worker processes
   (:mod:`repro.serve.shard`) that attach the model's coarse graph over
   shared memory; the parent keeps parsing, admission, deadlines, and
   seed mapping.  A broken fleet falls back to in-process pools
   transparently — and bit-for-bit identically.

Determinism: for a fixed :class:`ServiceConfig` seed, answers depend only
on (graph content, query) — batched, sequential, and sharded execution
return bit-for-bit identical values (see ``benchmarks/bench_serve.py``
and ``benchmarks/bench_serve_shard.py``).
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..analysis.bounds import GuaranteeReport, guarantee_report
from ..core.api import coarsen_influence_graph
from ..core.dynamic import COIN_DISCIPLINES, coarsen_addressable
from ..core.frameworks import (
    MaximizationResult,
    estimate_on_coarse,
    maximize_on_coarse,
)
from ..core.result import CoarsenResult
from ..estimators import DEFAULT_ESTIMATOR, available_estimators
from ..scc import DEFAULT_SCC_BACKEND
from ..errors import AlgorithmError, BudgetExceededError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, set_gauge, span
from ..rng import derive_entropy, ensure_rng
from ..sketch import DEFAULT_SKETCH_K, InfluenceOracle
from .cache import ModelCache, ModelKey
from .pool import DEFAULT_CHUNK_SETS, SamplePool
from .shard import ShardError, ShardPool, ShardRuntime

__all__ = ["ServiceConfig", "QueryResult", "InfluenceService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`InfluenceService` instance.

    Model parameters (``r``, ``seed``, ``scc_backend``, ``executor``)
    enter the cache key — two services with the same config share warm
    archives.  The serving parameters (worker/queue/deadline) do not
    affect query *values*, only latency and degradation behaviour.
    """

    # -- model (these are part of the cache key) -----------------------
    r: int = 16
    seed: int = 0
    scc_backend: str = DEFAULT_SCC_BACKEND
    executor: str = "serial"
    workers: "int | None" = None
    #: Coin discipline for live-edge samples.  "stream" is Algorithm 1's
    #: sequential sampler; "addressable" uses counter-based per-edge coins
    #: (:mod:`repro.core.dynamic`), which is what makes live-graph serving
    #: possible: an incrementally maintained model is bit-for-bit a cold
    #: rebuild, so epoch versioning reduces to content addressing.
    sampler: str = "stream"
    # -- sketches ------------------------------------------------------
    model: str = "ic"
    n_samples: int = 10_000
    chunk_samples: int = DEFAULT_CHUNK_SETS
    min_samples: int = 128
    # -- estimator family ----------------------------------------------
    #: Which estimator family answers ``/estimate``: ``"ris"`` (default)
    #: scores the model's shared RR pool, ``"sketch"`` precomputes a
    #: bottom-k :class:`~repro.sketch.InfluenceOracle` per model epoch
    #: and answers point queries in O(1), ``"mc"`` simulates per query.
    #: ``/maximize`` always runs on the RR pool — greedy max coverage
    #: needs the full sets regardless of the read path.
    estimator: str = DEFAULT_ESTIMATOR
    #: Bottom-k sketch size for ``estimator="sketch"`` (accuracy knob:
    #: CV <= 1/sqrt(k - 2); see ``repro.sketch.sketch_eps``).
    sketch_k: int = DEFAULT_SKETCH_K
    #: Confidence parameter the sketch guarantee report is stated at.
    sketch_delta: float = 0.05
    # -- cache ---------------------------------------------------------
    max_models: int = 8
    max_bytes: "int | None" = None
    warm_dir: "str | None" = None
    # -- dispatch / backpressure ---------------------------------------
    max_workers: int = 4
    max_pending: int = 64
    deadline_seconds: "float | None" = None
    #: Size of the shard worker-process fleet (``None`` = in-process
    #: serving).  Sharding changes *where* pools grow, never query
    #: values: the indexed-stream discipline makes sharded answers
    #: bit-for-bit equal to in-process ones, so this knob — like the
    #: other serving knobs — stays out of the cache key.
    shard_workers: "int | None" = None
    # -- degradation reporting -----------------------------------------
    report_samples: int = 500
    # -- live-graph key derivation -------------------------------------
    #: Every Nth delta-epoch pays the full O(m) content hash instead of
    #: the O(|deltas|) chained digest: the chain is re-anchored to the
    #: true content address and the coarsener's maintained CSR arrays are
    #: integrity-checked against a cold rebuild.  1 audits every epoch
    #: (chaining effectively off).
    digest_audit_interval: int = 64

    def __post_init__(self) -> None:
        if self.r <= 0:
            raise ValueError("r must be positive")
        if self.n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if not 0 < self.min_samples <= self.n_samples:
            raise ValueError("min_samples must lie in [1, n_samples]")
        if self.max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if self.max_pending < 0:
            raise ValueError("max_pending must be non-negative")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive when given")
        if self.shard_workers is not None and self.shard_workers <= 0:
            raise ValueError("shard_workers must be positive when given")
        if self.digest_audit_interval <= 0:
            raise ValueError("digest_audit_interval must be positive")
        if self.sampler not in COIN_DISCIPLINES:
            raise ValueError(f"sampler must be one of {COIN_DISCIPLINES}")
        serveable = available_estimators(serving=True)
        if self.estimator not in serveable:
            raise ValueError(
                f"estimator must be one of {serveable}, not "
                f"{self.estimator!r}"
            )
        if self.sketch_k < 4:
            raise ValueError("sketch_k must be at least 4")
        if not 0 < self.sketch_delta < 1:
            raise ValueError("sketch_delta must lie in (0, 1)")
        if self.sampler == "addressable" and self.executor != "serial":
            raise ValueError(
                "sampler='addressable' implies executor='serial' (the "
                "addressable cold path is not parallelised)"
            )


@dataclass
class QueryResult:
    """One answered estimate query, with its achieved accuracy.

    ``degraded`` is true when a deadline cut sampling short of
    ``requested_samples``; ``report`` then carries the Theorem 6.1/6.2
    guarantees instantiated at the *achieved* accuracy
    (``eps ~ 1/sqrt(n_samples)``).
    """

    value: float
    n_samples: int
    requested_samples: int
    degraded: bool = False
    seconds: float = 0.0
    report: "GuaranteeReport | None" = None
    extras: dict = field(default_factory=dict)


@dataclass
class _OracleState:
    """One bottom-k oracle bound to a model epoch, plus its guarantees.

    The guarantee report is computed ONCE per oracle build (it pays an MC
    reliability estimation) and attached to every query answered from the
    oracle — recomputing it per query would forfeit the oracle's whole
    latency win.  ``graph`` is the fine graph the report translates to;
    a retained model served for a new fine-graph epoch keeps the oracle
    but restates the report.
    """

    oracle: InfluenceOracle
    report: GuaranteeReport
    graph: InfluenceGraph


class InfluenceService:
    """Cached, batched influence queries over arbitrary input graphs.

    >>> service = InfluenceService(ServiceConfig(r=8, n_samples=5_000))
    >>> service.estimate(graph, seeds=[0, 3]).value       # doctest: +SKIP
    >>> service.estimate_many(graph, [[0], [1], [2]])     # doctest: +SKIP
    >>> service.maximize(graph, k=10).seeds               # doctest: +SKIP

    Thread-safe and embeddable: the HTTP endpoint in :mod:`repro.serve.http`
    is a thin JSON wrapper over exactly these three methods.
    """

    def __init__(self, config: "ServiceConfig | None" = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.cache = ModelCache(
            max_models=self.config.max_models,
            max_bytes=self.config.max_bytes,
            warm_dir=self.config.warm_dir,
        )
        #: guarded-by: _pool_lock
        self._pools: "dict[ModelKey, SamplePool]" = {}
        self._pool_lock = threading.Lock()
        #: guarded-by: _oracle_lock
        self._oracles: "dict[ModelKey, _OracleState]" = {}
        self._oracle_lock = threading.Lock()
        #: guarded-by: _count_lock
        self._family_queries: "dict[str, int]" = {}
        self._count_lock = threading.Lock()
        self._dynamic: "list" = []  # attached DynamicModel lineages
        self._build_lock = threading.Lock()
        self._dispatch = ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="repro-serve",
        )
        # One slot per running query plus one per queued query; a submit
        # that finds no slot free is rejected instead of queueing.
        self._slots = threading.BoundedSemaphore(
            self.config.max_workers + self.config.max_pending
        )
        self._depth = 0  #: guarded-by: _depth_lock
        self._depth_lock = threading.Lock()
        self._closed = False
        # Shard fleet state.  The runtime is started lazily on the first
        # query so a service that never estimates pays no spawn cost; a
        # failure (start or mid-query) latches _shard_failed and the
        # service serves in-process for the rest of its life.
        self._shard: "ShardRuntime | None" = None  #: guarded-by: _shard_lock
        self._shard_failed = False  #: guarded-by: _shard_lock
        self._shard_error: "str | None" = None  #: guarded-by: _shard_lock
        self._shard_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain in-flight queries and release workers (threads and fleet)."""
        self._closed = True
        self._dispatch.shutdown(wait=True)
        with self._shard_lock:
            runtime, self._shard = self._shard, None
        if runtime is not None:
            runtime.close()

    def __enter__(self) -> "InfluenceService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------

    def key_for(self, graph: InfluenceGraph) -> ModelKey:
        """The cache key addressing ``graph`` under this service's config."""
        return ModelKey.for_graph(
            graph, r=self.config.r, seed=self.config.seed,
            scc_backend=self.config.scc_backend,
            executor=self.config.executor,
            sampler=self.config.sampler,
        )

    def model_for(self, graph: InfluenceGraph) -> CoarsenResult:
        """The coarsened model for ``graph`` — cached, warm-loaded, or built.

        Builds are single-flight: concurrent misses on the same (or any)
        key wait for one coarsening instead of racing — every caller then
        shares ONE model object, which the pool layer relies on (estimators
        are bound by object identity).
        """
        key = self.key_for(graph)
        model = self.cache.get(key)
        if model is not None:
            return model
        with self._build_lock:
            model = self.cache.peek(key)  # a racing builder may have won
            if model is not None:
                return model
            with span("serve.model.build", n=graph.n, m=graph.m,
                      r=self.config.r):
                if self.config.sampler == "addressable":
                    model = coarsen_addressable(
                        graph, self.config.r, seed=self.config.seed,
                        scc_backend=self.config.scc_backend,
                    )
                else:
                    model = coarsen_influence_graph(
                        graph,
                        self.config.r,
                        rng=ensure_rng(self.config.seed),
                        executor=self.config.executor,
                        workers=self.config.workers,
                        scc_backend=self.config.scc_backend,
                    )
            self.cache.put(key, model)
            return model

    def persist(self, graph: InfluenceGraph) -> "str | None":
        """Write ``graph``'s model to the warm directory (build if needed).

        Returns the archive path, or ``None`` when the service has no
        ``warm_dir`` configured.
        """
        return self.cache.store_warm(self.key_for(graph), self.model_for(graph))

    # ------------------------------------------------------------------
    # Live graphs
    # ------------------------------------------------------------------

    def attach_dynamic(self, graph: InfluenceGraph):
        """Attach a live (mutating) lineage rooted at ``graph``.

        Returns a :class:`~repro.serve.dynamic.DynamicModel` whose
        ``insert_edge`` / ``delete_edge`` / ``apply_deltas`` maintain the
        cached model incrementally (Algorithm 7) and publish each new
        delta-epoch into this service's content-addressed cache.  Requires
        ``sampler="addressable"`` — under stream coins an incrementally
        maintained model would not match its own cold rebuild, breaking
        content addressing.
        """
        from .dynamic import DynamicModel

        dynamic = DynamicModel(self, graph)
        self._dynamic.append(dynamic)
        return dynamic

    def _publish_epoch(self, prev_key: ModelKey, key: ModelKey,
                       model: CoarsenResult, retained: bool) -> None:
        """Install a delta-epoch's model and repair its sample pool.

        Copy-on-publish: the previous epoch's cache line and pool are
        untouched objects — queries that resolved them keep a consistent
        view.  When the coarse graph survived the delta unchanged
        (``retained``), the *same* model object is republished under the
        new key and the pool binding moves with it (prefix reuse keeps
        working because estimators bind by object identity); otherwise the
        old pool's prefix is invalidated and a fresh pool is built lazily
        on the next query.
        """
        self.cache.put(key, model)
        with self._pool_lock:
            pool = self._pools.get(prev_key.for_state("pool"))
            if pool is not None:
                if retained and pool.graph is model.coarse:
                    if key != prev_key:
                        self._pools[key.for_state("pool")] = pool
                        del self._pools[prev_key.for_state("pool")]
                    inc("serve.dynamic.pool.retained")
                else:
                    inc("serve.dynamic.pool.invalidated_prefix", pool.size)
                    del self._pools[prev_key.for_state("pool")]
        with self._oracle_lock:
            state = self._oracles.get(prev_key.for_state("sketch"))
            if state is None:
                return
            if retained and state.oracle.graph is model.coarse:
                # The coarse graph survived the delta: the oracle stays
                # valid (its sketches are a pure function of the coarse
                # content and the config seed).  The translated report is
                # restated lazily on the next query (_oracle_for).
                if key != prev_key:
                    self._oracles[key.for_state("sketch")] = state
                    del self._oracles[prev_key.for_state("sketch")]
                inc("serve.dynamic.sketch.retained")
            else:
                # Invalidate; the next query rebuilds from the new model —
                # bit-for-bit equal to a cold build at this epoch, since
                # the oracle entropy derives from the config seed alone.
                inc("serve.dynamic.sketch.invalidated")
                del self._oracles[prev_key.for_state("sketch")]

    def _pool_for(self, key: ModelKey, model: CoarsenResult) -> SamplePool:
        pkey = key.for_state("pool")
        with self._pool_lock:
            pool = self._pools.get(pkey)
            # A pool must be bound to exactly the model object queries
            # score against (estimators bind by identity); a model that
            # was evicted and rebuilt gets a fresh pool — same seed, so
            # the same values, just re-drawn.
            if pool is not None and pool.graph is not model.coarse:
                pool = None
            if pool is None:
                # One RNG stream per pool, seeded from the config so the
                # pool contents depend only on (model, seed) — the source
                # of the batched == sequential determinism guarantee.
                pool = SamplePool(
                    model.coarse,
                    rng=ensure_rng(self.config.seed),
                    model=self.config.model,
                    chunk_sets=self.config.chunk_samples,
                )
                self._pools[pkey] = pool
                # Pools for evicted models are dropped with them.
                for stale in [k for k in self._pools
                              if k.for_state("model") not in self.cache]:
                    del self._pools[stale]
            return pool

    def _oracle_for(self, graph: InfluenceGraph, key: ModelKey,
                    model: CoarsenResult) -> _OracleState:
        """The bottom-k oracle (plus its one-time report) for a model.

        Addressed by ``key.for_state("sketch")`` so sketch state can never
        collide with the RR pool under ``key.for_state("pool")``.  Builds
        are single-flight under ``_oracle_lock``; the oracle is bound to
        the model object by identity, exactly like pools, so an evicted
        and rebuilt model gets a fresh (bit-identical, same-entropy)
        oracle rather than cross-rebinding a stale one.
        """
        skey = key.for_state("sketch")
        with self._oracle_lock:
            state = self._oracles.get(skey)
            if state is not None and state.oracle.graph is not model.coarse:
                state = None
            if state is None:
                oracle = InfluenceOracle(
                    model.coarse, r=self.config.r, k=self.config.sketch_k,
                    rng=ensure_rng(self.config.seed),
                )
                inc("serve.sketch.builds")
                state = _OracleState(
                    oracle=oracle,
                    report=self._sketch_report(graph, model, oracle),
                    graph=graph,
                )
                self._oracles[skey] = state
                for stale in [k for k in self._oracles
                              if k.for_state("model") not in self.cache]:
                    del self._oracles[stale]
            elif state.graph is not graph:
                # A retained model serving a new fine-graph epoch: the
                # oracle is unchanged but the translated guarantees must
                # be restated against the current fine graph.
                state.report = self._sketch_report(graph, model,
                                                  state.oracle)
                state.graph = graph
            return state

    def _sketch_report(self, graph: InfluenceGraph, model: CoarsenResult,
                       oracle: InfluenceOracle) -> GuaranteeReport:
        """Theorem 6.1 with the sketch's (eps, delta) envelope folded in."""
        return guarantee_report(
            graph, model,
            estimation_eps=min(1.0, oracle.eps(self.config.sketch_delta)),
            n_samples=self.config.report_samples,
            rng=ensure_rng(self.config.seed),
        )

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------

    def _shard_runtime(self) -> "ShardRuntime | None":
        """The worker fleet, started lazily; ``None`` once sharding failed."""
        if self.config.shard_workers is None:
            return None
        with self._shard_lock:
            if self._shard_failed:
                return None
            if self._shard is None:
                try:
                    self._shard = ShardRuntime(
                        self.config.shard_workers,
                        model=self.config.model,
                        chunk_sets=self.config.chunk_samples,
                    )
                except ShardError as exc:
                    self._shard_failed = True
                    self._shard_error = str(exc)
                    inc("serve.shard.fallback")
                    return None
            return self._shard

    def _disable_shard(self, exc: ShardError) -> None:
        """Latch the fleet off after a failure (permanent for this service).

        The next query — and the retry of the one that tripped the
        failure — serves from in-process pools, whose indexed streams
        reproduce the exact samples the fleet would have drawn.
        """
        with self._shard_lock:
            runtime, self._shard = self._shard, None
            already = self._shard_failed
            self._shard_failed = True
            if self._shard_error is None:
                self._shard_error = str(exc)
        if not already:
            inc("serve.shard.fallback")
        if runtime is not None:
            runtime.close()

    def _query_pool(self, key: ModelKey,
                    model: CoarsenResult) -> "SamplePool | ShardPool":
        """The pool estimates score on: fleet-backed when sharding is
        healthy, in-process otherwise — identical bits either way."""
        runtime = self._shard_runtime()
        if runtime is not None:
            try:
                # Entropy derivation matches SamplePool's exactly, so a
                # later fallback pool re-draws the same indexed streams.
                pool = runtime.pool_for(
                    key.token(), model.coarse,
                    derive_entropy(ensure_rng(self.config.seed)),
                )
                # Fleet-side cache eviction: drop models the parent cache
                # no longer holds (no-op when nothing was evicted).
                runtime.retain({k.token() for k in self.cache.keys()})
                return pool
            except ShardError as exc:
                self._disable_shard(exc)
        return self._pool_for(key, model)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------

    def _admit(self) -> None:
        if self._closed:
            raise AlgorithmError("service is closed")
        if not self._slots.acquire(blocking=False):
            inc("serve.rejected")
            raise BudgetExceededError(
                f"serve queue is full ({self.config.max_workers} running + "
                f"{self.config.max_pending} pending); retry later or raise "
                "max_pending"
            )
        with self._depth_lock:
            self._depth += 1
            set_gauge("serve.queue.depth", self._depth)

    def _release(self) -> None:
        with self._depth_lock:
            self._depth -= 1
            set_gauge("serve.queue.depth", self._depth)
        self._slots.release()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def estimate(self, graph: InfluenceGraph, seeds: Sequence[int],
                 n_samples: "int | None" = None) -> QueryResult:
        """Estimate ``Inf_G(seeds)`` (Algorithm 3 over the cached model)."""
        return self.estimate_many(graph, [seeds], n_samples=n_samples)[0]

    def estimate_many(
        self,
        graph: InfluenceGraph,
        seed_sets: Sequence[Sequence[int]],
        n_samples: "int | None" = None,
    ) -> "list[QueryResult]":
        """Answer a batch of estimate queries against one shared model.

        All queries are admitted up front (so a batch larger than the free
        queue capacity raises :class:`BudgetExceededError` before any work
        starts), then coalesced onto the model's sample pool.  Results come
        back in input order and are bit-for-bit identical to issuing the
        queries one at a time.
        """
        if not seed_sets:
            return []
        requested = self.config.n_samples if n_samples is None else n_samples
        if requested <= 0:
            raise AlgorithmError("n_samples must be positive")
        # Resolve the model — and the family's read state — once, outside
        # the per-query slots.
        model = self.model_for(graph)
        family = self.config.estimator
        pool: "SamplePool | ShardPool | None" = None
        oracle: "_OracleState | None" = None
        if family == "sketch":
            oracle = self._oracle_for(graph, self.key_for(graph), model)
        elif family != "mc":
            pool = self._query_pool(self.key_for(graph), model)
        futures = []
        try:
            for seeds in seed_sets:
                self._admit()
                try:
                    futures.append(self._dispatch.submit(
                        self._run_estimate, graph, model, pool, oracle,
                        seeds, requested,
                    ))
                except BaseException:
                    self._release()
                    raise
        except BaseException:
            # Roll back queries that never started; running ones release
            # their own slot from the worker.
            for future in futures:
                if future.cancel():
                    self._release()
            raise
        return [future.result() for future in futures]

    def _run_estimate(self, graph: InfluenceGraph, model: CoarsenResult,
                      pool: "SamplePool | ShardPool | None",
                      oracle: "_OracleState | None", seeds: Sequence[int],
                      requested: int) -> QueryResult:
        try:
            if oracle is not None:
                return self._estimate_sketch(model, oracle, seeds)
            if pool is None:
                return self._estimate_mc(model, seeds, requested)
            try:
                return self._estimate_inner(graph, model, pool, seeds,
                                            requested)
            except ShardError as exc:
                # The fleet broke mid-query: latch it off and re-answer
                # from an in-process pool — same indexed streams, same
                # bits, just drawn locally.
                self._disable_shard(exc)
                fallback = self._pool_for(self.key_for(graph), model)
                return self._estimate_inner(graph, model, fallback, seeds,
                                            requested)
        finally:
            self._release()

    def _count_query(self, family: str) -> None:
        inc(f"serve.estimator.{family}.queries")
        with self._count_lock:
            self._family_queries[family] = (
                self._family_queries.get(family, 0) + 1
            )
        inc("serve.queries")

    def _estimate_sketch(self, model: CoarsenResult, state: _OracleState,
                         seeds: Sequence[int]) -> QueryResult:
        """Answer from the precomputed oracle: no sampling at query time."""
        start = time.perf_counter()
        with span("serve.estimate", seeds=len(seeds), n_samples=0,
                  estimator="sketch"):
            value = estimate_on_coarse(
                model, np.asarray(seeds, dtype=np.int64), state.oracle,
            )
        self._count_query("sketch")
        return QueryResult(
            value=value,
            n_samples=state.oracle.k,
            requested_samples=state.oracle.k,
            seconds=time.perf_counter() - start,
            report=state.report,
            extras={
                "estimator": "sketch",
                "k": state.oracle.k,
                "r": state.oracle.r,
                "eps": state.oracle.eps(self.config.sketch_delta),
                "delta": self.config.sketch_delta,
            },
        )

    def _estimate_mc(self, model: CoarsenResult, seeds: Sequence[int],
                     requested: int) -> QueryResult:
        """Simulation per query (``estimator="mc"``): slow, pool-free."""
        from ..algorithms.monte_carlo import MonteCarloEstimator

        start = time.perf_counter()
        with span("serve.estimate", seeds=len(seeds), n_samples=requested,
                  estimator="mc"):
            est = MonteCarloEstimator._make(
                requested, rng=ensure_rng(self.config.seed)
            )
            value = estimate_on_coarse(
                model, np.asarray(seeds, dtype=np.int64), est,
            )
        self._count_query("mc")
        return QueryResult(
            value=value,
            n_samples=requested,
            requested_samples=requested,
            seconds=time.perf_counter() - start,
            extras={"estimator": "mc"},
        )

    def _estimate_inner(self, graph: InfluenceGraph, model: CoarsenResult,
                        pool: "SamplePool | ShardPool", seeds: Sequence[int],
                        requested: int) -> QueryResult:
        start = time.perf_counter()
        deadline = None
        if self.config.deadline_seconds is not None:
            deadline = time.monotonic() + self.config.deadline_seconds
        with span("serve.estimate", seeds=len(seeds), n_samples=requested,
                  estimator="ris"):
            # The floor is grown without a deadline so a query can always
            # return *something* statistically meaningful.
            floor = min(self.config.min_samples, requested)
            pool.ensure(floor)
            achieved = pool.ensure(requested, deadline=deadline)
            value = estimate_on_coarse(
                model, np.asarray(seeds, dtype=np.int64),
                pool.estimator(achieved),
            )
        degraded = achieved < requested
        report = None
        if degraded:
            inc("serve.deadline.degraded")
            report = self._degradation_report(graph, model, achieved)
        self._count_query("ris")
        return QueryResult(
            value=value,
            n_samples=achieved,
            requested_samples=requested,
            degraded=degraded,
            seconds=time.perf_counter() - start,
            report=report,
            extras={"estimator": "ris", "pool_size": pool.size},
        )

    def _degradation_report(self, graph: InfluenceGraph,
                            model: CoarsenResult,
                            achieved: int) -> GuaranteeReport:
        """Theorems 6.1/6.2 instantiated at the achieved sketch accuracy.

        The RIS estimator's relative error concentrates as
        ``O(1/sqrt(t))`` in the sketch size ``t``, so the degraded query
        reports ``eps = 1/sqrt(achieved)`` — honest about what the deadline
        actually bought.
        """
        eps = min(1.0, 1.0 / math.sqrt(achieved))
        return guarantee_report(
            graph, model,
            estimation_eps=eps,
            n_samples=self.config.report_samples,
            rng=ensure_rng(self.config.seed),
        )

    def maximize(self, graph: InfluenceGraph, k: int,
                 n_samples: "int | None" = None) -> MaximizationResult:
        """Pick a size-``k`` seed set (Algorithm 4 over the cached model).

        Deterministic for a fixed config: the sketch is the pool prefix and
        the pull-back RNG is re-seeded per call.  Maximization always runs
        on the in-process pool, sharded or not — greedy max coverage needs
        the full RR sets for decremental gains, which never cross the
        process boundary.  The in-process pool draws the same indexed
        streams the fleet does, so the sketch is the same either way.
        """
        requested = self.config.n_samples if n_samples is None else n_samples
        model = self.model_for(graph)
        pool = self._pool_for(self.key_for(graph), model)
        self._admit()
        try:
            future = self._dispatch.submit(
                self._run_maximize, model, pool, k, requested
            )
        except BaseException:
            self._release()
            raise
        return future.result()

    def _run_maximize(self, model: CoarsenResult, pool: SamplePool,
                      k: int, requested: int) -> MaximizationResult:
        try:
            return self._maximize_inner(model, pool, k, requested)
        finally:
            self._release()

    def _maximize_inner(self, model: CoarsenResult, pool: SamplePool,
                        k: int, requested: int) -> MaximizationResult:
        with span("serve.maximize", k=k, n_samples=requested):
            pool.ensure(requested)
            result = maximize_on_coarse(
                model, k, pool.maximizer(requested),
                rng=ensure_rng(self.config.seed),
            )
        inc("serve.queries")
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-able snapshot of cache and pool state (the ``/stats`` body)."""
        with self._shard_lock:
            shard = {
                "enabled": self.config.shard_workers is not None,
                "workers": self.config.shard_workers,
                "failed": self._shard_failed,
                "error": self._shard_error,
                "runtime": (self._shard.stats()
                            if self._shard is not None else None),
            }
        with self._count_lock:
            family_queries = dict(self._family_queries)
        return {
            "models": len(self.cache),
            "model_bytes": self.cache.nbytes(),
            "pools": {
                key.token(): pool.size for key, pool in self._pools.items()
            },
            "estimator": {
                "family": self.config.estimator,
                "queries": family_queries,
                "oracles": {
                    key.token(): state.oracle.nbytes
                    for key, state in self._oracles.items()
                },
            },
            "queue_depth": self._depth,
            "dynamic": [dynamic.stats() for dynamic in self._dynamic],
            "shard": shard,
            "config": {
                "r": self.config.r,
                "seed": self.config.seed,
                "scc_backend": self.config.scc_backend,
                "executor": self.config.executor,
                "sampler": self.config.sampler,
                "estimator": self.config.estimator,
                "sketch_k": self.config.sketch_k,
                "n_samples": self.config.n_samples,
                "max_workers": self.config.max_workers,
                "max_pending": self.config.max_pending,
                "deadline_seconds": self.config.deadline_seconds,
                "shard_workers": self.config.shard_workers,
            },
        }
