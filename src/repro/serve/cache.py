"""The content-addressed model cache.

A *model* is one coarsening: a :class:`~repro.core.result.CoarsenResult`
produced from a specific input graph under specific parameters.  Queries
address models by :class:`ModelKey` — the graph's content digest plus every
parameter that changes the output — so two sessions (or two processes)
asking for the same coarsening hit the same cache line, and a graph edit
can never alias a stale model.

Eviction is LRU with two budgets: a model-count cap and an optional byte
budget over the resident CSR payloads.  Evicted models are recomputed on
the next miss; with a ``warm_dir`` the miss first consults the on-disk
archives written by :meth:`ModelCache.store_warm` (the
``core.persistence`` format with the key recorded in ``extras``), turning
a cold start into one ``np.load``.

Counters: ``serve.cache.hit`` / ``serve.cache.miss`` /
``serve.cache.evict`` / ``serve.cache.warm_hit``; gauge
``serve.cache.bytes``.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from ..core.persistence import (
    load_coarsening,
    peek_coarsening_meta,
    save_coarsening,
)
from ..core.result import CoarsenResult
from ..errors import GraphFormatError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, set_gauge

__all__ = ["ModelKey", "ModelCache", "result_nbytes"]

_KEY_META_FIELD = "serve_model_key"


@dataclass(frozen=True)
class ModelKey:
    """Content address of one coarsened model.

    ``graph_digest`` is :meth:`InfluenceGraph.digest` — a hash of the CSR
    arrays and weights — so the key identifies the *input*, not a Python
    object.  The remaining fields are exactly the parameters that change
    the coarsening output; anything that does not (e.g. the thread count
    for a fixed executor) stays out of the key.

    ``sampler`` names the coin discipline ("stream" for the sequential
    Algorithm 1 sampler, "addressable" for counter-based per-edge coins —
    see :mod:`repro.core.dynamic`).  It is part of the key *and* the warm
    stamp because the two disciplines realise different live-edge samples
    for the same seed.  For a live (mutating) graph this is also what makes
    epoch versioning content-addressed: each delta-epoch has a new graph
    digest, hence a new key — archives or cache lines from a previous
    epoch can never alias the current model, and a stale-epoch archive
    degrades to an ordinary miss.

    ``state`` names *which* derived artifact of the coarsening the key
    addresses: ``"model"`` for the :class:`CoarsenResult` itself, and a
    per-estimator name (``"pool"`` for shared RR pools, ``"sketch"`` for
    bottom-k oracles) for query-time read state derived from it.  Sketch
    state and RR pools for the same graph digest therefore live under
    *different* keys and can never collide or cross-rebind on eviction.
    """

    graph_digest: str
    r: int
    seed: int
    scc_backend: str
    executor: str
    sampler: str = "stream"
    state: str = "model"

    @classmethod
    def for_graph(cls, graph: InfluenceGraph, r: int, seed: int,
                  scc_backend: str, executor: str,
                  sampler: str = "stream") -> "ModelKey":
        """The key addressing ``graph`` coarsened under these parameters."""
        return cls(graph_digest=graph.digest(), r=int(r), seed=int(seed),
                   scc_backend=scc_backend, executor=executor,
                   sampler=sampler)

    def for_state(self, state: str) -> "ModelKey":
        """This key re-addressed to another derived artifact (``state``)."""
        return replace(self, state=state)

    def token(self) -> str:
        """A short filesystem-safe name for this key (warm archives)."""
        payload = "|".join([self.graph_digest, str(self.r), str(self.seed),
                            self.scc_backend, self.executor, self.sampler,
                            self.state])
        return hashlib.blake2b(payload.encode("utf-8"),
                               digest_size=12).hexdigest()

    def as_meta(self) -> dict:
        """The JSON form stamped into warm archives for validation."""
        return {
            "graph_digest": self.graph_digest,
            "r": self.r,
            "seed": self.seed,
            "scc_backend": self.scc_backend,
            "executor": self.executor,
            "sampler": self.sampler,
            "state": self.state,
        }


def result_nbytes(result: CoarsenResult) -> int:
    """Resident bytes of a model: the coarse CSR arrays plus the mapping."""
    coarse = result.coarse
    return int(
        coarse.indptr.nbytes + coarse.heads.nbytes + coarse.probs.nbytes
        + coarse.weights.nbytes + result.pi.nbytes
    )


class ModelCache:
    """LRU cache of coarsened models with a byte budget and warm start.

    Parameters
    ----------
    max_models:
        Resident model cap (LRU beyond it).
    max_bytes:
        Optional cap on the summed :func:`result_nbytes` of resident
        models; eviction runs LRU-first until under budget.  A single
        model larger than the budget is still admitted (the cache would
        otherwise be useless for it) and evicted on the next put.
    warm_dir:
        Optional directory of persisted models.  Misses probe
        ``<warm_dir>/<key.token()>.npz`` and validate the key stamped in
        the archive's meta before loading arrays.

    Thread-safe: the mutating paths (``get``/``put``) hold an internal
    lock; the introspection helpers read without one (a racy read of a
    size or key list is harmless).
    """

    def __init__(self, max_models: int = 8, max_bytes: "int | None" = None,
                 warm_dir: "str | os.PathLike[str] | None" = None) -> None:
        if max_models <= 0:
            raise ValueError("max_models must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when given")
        self.max_models = max_models
        self.max_bytes = max_bytes
        self.warm_dir = None if warm_dir is None else os.fspath(warm_dir)
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._models: "OrderedDict[ModelKey, CoarsenResult]" = OrderedDict()
        #: guarded-by: _lock
        self._bytes: "dict[ModelKey, int]" = {}

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def peek(self, key: ModelKey) -> "CoarsenResult | None":
        """Resident-only lookup: no counters, no warm probe.

        Used by the service's single-flight build path to re-check after
        waiting on the build lock without double-counting a miss.
        """
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self._models.move_to_end(key)
            return model

    def get(self, key: ModelKey) -> "CoarsenResult | None":
        """The cached model for ``key``, or ``None`` (after a warm probe)."""
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self._models.move_to_end(key)
                inc("serve.cache.hit")
                return model
        warm = self._load_warm(key)
        if warm is not None:
            inc("serve.cache.warm_hit")
            self.put(key, warm)
            return warm
        inc("serve.cache.miss")
        return None

    def put(self, key: ModelKey, result: CoarsenResult) -> None:
        """Insert (or refresh) a model, evicting LRU past the budgets."""
        nbytes = result_nbytes(result)
        with self._lock:
            self._models[key] = result
            self._models.move_to_end(key)
            self._bytes[key] = nbytes
            while len(self._models) > self.max_models:
                self._evict_lru()
            if self.max_bytes is not None:
                while len(self._models) > 1 and self.nbytes() > self.max_bytes:
                    self._evict_lru()
            set_gauge("serve.cache.bytes", self.nbytes())

    def _evict_lru(self) -> None:
        evicted, _ = self._models.popitem(last=False)
        del self._bytes[evicted]
        inc("serve.cache.evict")

    # ------------------------------------------------------------------
    # Warm-start archives
    # ------------------------------------------------------------------

    def _warm_path(self, key: ModelKey) -> "str | None":
        if self.warm_dir is None:
            return None
        return os.path.join(self.warm_dir, key.token() + ".npz")

    def _load_warm(self, key: ModelKey) -> "CoarsenResult | None":
        path = self._warm_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            meta = peek_coarsening_meta(path)
        except GraphFormatError:
            return None  # foreign or truncated file; treat as a cold miss
        stamped = (meta.get("extras") or {}).get(_KEY_META_FIELD)
        if stamped != key.as_meta():
            return None  # token collision or hand-renamed archive
        try:
            return load_coarsening(path)
        except GraphFormatError:
            return None  # corrupt warm archive degrades to a recompute

    def store_warm(self, key: ModelKey, result: CoarsenResult) -> "str | None":
        """Persist ``result`` under ``warm_dir`` for future cold starts.

        Stamps the key into ``stats.extras`` (round-tripped by the v2
        archive format) so :meth:`get` can validate a probe without
        loading arrays.  Returns the archive path, or ``None`` when the
        cache has no ``warm_dir``.
        """
        path = self._warm_path(key)
        if path is None:
            return None
        os.makedirs(self.warm_dir, exist_ok=True)
        result.stats.extras[_KEY_META_FIELD] = key.as_meta()
        save_coarsening(result, path)
        return path

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, key: ModelKey) -> bool:
        return key in self._models

    def keys(self) -> "list[ModelKey]":
        """Resident keys, least- to most-recently used."""
        return list(self._models)

    def nbytes(self) -> int:
        """Summed resident bytes of all cached models."""
        return sum(self._bytes.values())
