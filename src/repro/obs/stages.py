"""Per-stage wall-time accumulation for the coarsening pipeline.

:class:`StageTimes` is the bridge between the tracer and
:class:`~repro.core.result.CoarsenStats`: every ``stage(...)`` block both
emits a tracing span (when tracing is enabled) and adds its wall time to a
plain ``{stage: seconds}`` dict that the coarsening implementations copy
into ``CoarsenStats.stage_seconds``.  Stage accumulation is always on — it
is one ``perf_counter`` pair and a dict update per *stage*, far below the
instrumentation budget — so every ``CoarsenResult`` carries a breakdown even
when no tracer is installed.

Canonical stage keys (see ``docs/observability.md``):

``sample``     drawing a live-edge graph from ``D_G``;
``scc``        labelling one sample's strongly connected components;
``meet``       folding a sample partition into the running meet;
``contract``   building ``H`` from the final partition (second stage);
``broadcast``  publishing the CSR arrays to shared memory (Algorithm 6's
               process executor only — the master-to-worker graph
               broadcast of Appendix C.1).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from .runtime import span

__all__ = [
    "StageTimes",
    "STAGE_SAMPLE",
    "STAGE_SCC",
    "STAGE_MEET",
    "STAGE_CONTRACT",
    "STAGE_BROADCAST",
]

STAGE_SAMPLE = "sample"
STAGE_SCC = "scc"
STAGE_MEET = "meet"
STAGE_CONTRACT = "contract"
STAGE_BROADCAST = "broadcast"


class StageTimes:
    """Accumulates named stage durations; re-entrant per stage name."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time the enclosed block into ``name`` and emit a matching span."""
        with span(name, **attrs):
            t0 = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - t0
                self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def merge(self, other: "StageTimes") -> None:
        """Fold another accumulator's stages into this one."""
        for name, seconds in other.seconds.items():
            self.add(name, seconds)

    def total(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, float]:
        return dict(self.seconds)
