"""A zero-dependency tracer with nested spans and JSONL emission.

Every span records wall time (``time.perf_counter``) and, optionally, the
peak-RSS delta across its lifetime (``resource.getrusage``, Linux/macOS
only).  Spans nest per thread: the tracer keeps one span stack per thread id,
so worker threads spawned by :mod:`repro.core.parallel` produce correctly
parented sub-traces.

Records are emitted *at span close* (children before parents), one ``dict``
per span, through a pluggable :class:`~repro.obs.sinks.Sink`.  The JSONL
schema is versioned; see ``docs/observability.md`` and
:func:`validate_record`.

This module holds no global state — process-wide installation and the
disabled no-op fast path live in :mod:`repro.obs` (the package root).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Callable

from .sinks import JsonlSink, Sink

__all__ = ["Tracer", "TRACE_SCHEMA_VERSION", "read_trace", "validate_record"]

TRACE_SCHEMA_VERSION = 1

_SPAN_REQUIRED_FIELDS = {
    "type": str,
    "name": str,
    "id": int,
    "depth": int,
    "thread": int,
    "t_start": float,
    "seconds": float,
    "status": str,
    "attrs": dict,
}


def _peak_rss_kb() -> int:
    """Peak RSS of this process in KiB (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return int(usage // 1024) if os.uname().sysname == "Darwin" else int(usage)


class _SpanHandle:
    """Context manager for one span; created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "_id", "_parent", "_depth",
                 "_t0", "_rss0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack()
        self._id = next(tracer._ids)
        self._parent = stack[-1]._id if stack else None
        self._depth = len(stack)
        stack.append(self)
        if tracer._rss:
            self._rss0 = _peak_rss_kb()
        self._t0 = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        t1 = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        record = {
            "type": "span",
            "name": self.name,
            "id": self._id,
            "parent": self._parent,
            "depth": self._depth,
            "thread": threading.get_ident(),
            "t_start": self._t0 - tracer._origin,
            "seconds": t1 - self._t0,
            "status": "error" if exc_type is not None else "ok",
            "attrs": self.attrs,
        }
        if tracer._rss:
            record["rss_delta_kb"] = max(0, _peak_rss_kb() - self._rss0)
        tracer._emit(record)
        return False


class Tracer:
    """Emits nested span records through a sink.

    Parameters
    ----------
    sink:
        Destination for span records (see :mod:`repro.obs.sinks`).
    rss:
        Also record the peak-RSS delta (KiB) over each span's lifetime.
        ``ru_maxrss`` is a high-water mark, so the delta is zero for spans
        that stay under an earlier peak — it attributes *new* peaks only.
    clock:
        Monotonic clock (injectable for deterministic tests).
    """

    def __init__(
        self,
        sink: Sink,
        rss: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._sink = sink
        self._rss = rss
        self._clock = clock
        self._origin = clock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._emit_lock = threading.Lock()
        self._closed = False
        self._emit({
            "type": "meta",
            "schema": TRACE_SCHEMA_VERSION,
            "pid": os.getpid(),
            "rss": rss,
        })

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, record: dict) -> None:
        with self._emit_lock:
            if not self._closed:
                self._sink.emit(record)

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("scc", round=i): ...``."""
        return _SpanHandle(self, name, attrs)

    def close(self) -> None:
        """Close the sink; subsequent span exits are dropped silently."""
        with self._emit_lock:
            self._closed = True
        self._sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def validate_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the trace schema."""
    kind = record.get("type")
    if kind == "meta":
        if record.get("schema") != TRACE_SCHEMA_VERSION:
            raise ValueError(f"unsupported trace schema: {record.get('schema')!r}")
        return
    if kind != "span":
        raise ValueError(f"unknown record type {kind!r}")
    for field, field_type in _SPAN_REQUIRED_FIELDS.items():
        if field not in record:
            raise ValueError(f"span record missing field {field!r}")
        value = record[field]
        if field_type is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"span field {field!r} must be numeric")
        elif not isinstance(value, field_type):
            raise ValueError(f"span field {field!r} must be {field_type.__name__}")
    if record["status"] not in ("ok", "error"):
        raise ValueError(f"bad span status {record['status']!r}")
    if record["seconds"] < 0 or record["depth"] < 0:
        raise ValueError("span duration/depth must be non-negative")
    parent = record.get("parent")
    if parent is not None and not isinstance(parent, int):
        raise ValueError("span parent must be an int or null")


def read_trace(path: str, validate: bool = True) -> list[dict]:
    """Load a JSONL trace file, optionally validating every record."""
    import json

    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if validate:
                validate_record(record)
            records.append(record)
    return records


def open_jsonl_tracer(path: str, rss: bool = False) -> Tracer:
    """Convenience constructor: a tracer writing JSONL to ``path``."""
    return Tracer(JsonlSink(path), rss=rss)
