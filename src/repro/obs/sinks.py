"""Pluggable span-record sinks for the tracer.

A sink receives one ``dict`` per finished span (plus a single leading meta
record) and owns its own durability: the JSONL sink writes one JSON object
per line, the list sink keeps records in memory for tests and the bench
harness, and the null sink swallows everything.

Sinks must tolerate concurrent ``emit`` calls only when the tracer is shared
across threads; the tracer serialises emission with its own lock, so sink
implementations can stay lock-free.
"""

from __future__ import annotations

import json
from typing import IO, Protocol

__all__ = ["Sink", "NullSink", "ListSink", "JsonlSink"]


class Sink(Protocol):
    """Anything that can receive finished span records."""

    def emit(self, record: dict) -> None:
        """Consume one span (or meta) record."""
        ...

    def close(self) -> None:
        """Flush and release resources; further ``emit`` calls are invalid."""
        ...


class NullSink:
    """Discards every record (used to exercise the enabled code path)."""

    def emit(self, record: dict) -> None:
        pass

    def close(self) -> None:
        pass


class ListSink:
    """Accumulates records in memory — the test/bench harness sink."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.closed = False

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True


class JsonlSink:
    """Writes one JSON object per line to a path or open text handle."""

    def __init__(self, path_or_file: "str | IO[str]") -> None:
        if isinstance(path_or_file, str):
            self._file: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = path_or_file
            self._owns_file = False

    def emit(self, record: dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()
