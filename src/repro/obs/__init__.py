"""Observability: tracing spans, metrics, and profiling hooks.

The package has three moving parts, all dependency-free:

* **Tracer** (:mod:`~repro.obs.trace`) — nested wall-clock spans with
  optional peak-RSS deltas, emitted as JSONL (or to an in-memory list)
  through a pluggable sink.
* **MetricsRegistry** (:mod:`~repro.obs.metrics`) — counters, gauges and
  timers; construct your own for test isolation or install one process-wide.
* **Gated helpers** (:mod:`~repro.obs.runtime`) — the module-level
  ``span``/``inc``/``observe`` functions the library's hot paths call.
  When nothing is installed they are no-ops costing one global read, so the
  instrumented pipeline stays within a <5% overhead budget while disabled.

Typical uses::

    # trace one coarsening run to JSONL
    from repro import obs
    with obs.trace_to("run.jsonl", rss=True):
        coarsen_influence_graph(graph, r=16, rng=0)

    # isolated metrics in a test
    registry = obs.MetricsRegistry()
    with obs.use_metrics(registry):
        ...
    assert registry.counter("scc.runs") == 16

Span names, stage keys and the JSONL schema are documented in
``docs/observability.md``.
"""

from .metrics import MetricsRegistry, TimerStat
from .runtime import (
    current_metrics,
    current_tracer,
    default_registry,
    disable_metrics,
    enable_metrics,
    inc,
    observe,
    set_gauge,
    set_metrics,
    set_tracer,
    span,
    timed,
    trace_to,
    use_metrics,
    use_tracer,
)
from .sinks import JsonlSink, ListSink, NullSink, Sink
from .stages import (
    STAGE_BROADCAST,
    STAGE_CONTRACT,
    STAGE_MEET,
    STAGE_SAMPLE,
    STAGE_SCC,
    StageTimes,
)
from .trace import TRACE_SCHEMA_VERSION, Tracer, read_trace, validate_record

__all__ = [
    # tracing
    "Tracer",
    "TRACE_SCHEMA_VERSION",
    "read_trace",
    "validate_record",
    "span",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "trace_to",
    # sinks
    "Sink",
    "NullSink",
    "ListSink",
    "JsonlSink",
    # metrics
    "MetricsRegistry",
    "TimerStat",
    "inc",
    "set_gauge",
    "observe",
    "timed",
    "current_metrics",
    "set_metrics",
    "use_metrics",
    "default_registry",
    "enable_metrics",
    "disable_metrics",
    # stages
    "StageTimes",
    "STAGE_SAMPLE",
    "STAGE_SCC",
    "STAGE_MEET",
    "STAGE_CONTRACT",
    "STAGE_BROADCAST",
]
