"""Process-wide instrumentation gate with a no-op fast path.

Library code calls the module-level helpers here (via :mod:`repro.obs`);
each helper reads one module global and returns immediately when no tracer /
registry is installed.  The disabled cost is a dict-build for the kwargs plus
one attribute load — instrumentation sits at *stage* granularity (per live
edge sample, per SCC run), never per edge, so the disabled overhead on the
tier-1 suite is well under the 5% budget.

Installation is scoped: :func:`use_tracer` / :func:`use_metrics` are context
managers that restore the previous instrument on exit, so nested scopes and
test isolation come for free.  :func:`enable_metrics` installs the lazily
created process-default registry for long-lived processes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = [
    "span",
    "inc",
    "set_gauge",
    "observe",
    "timed",
    "current_tracer",
    "current_metrics",
    "set_tracer",
    "set_metrics",
    "use_tracer",
    "use_metrics",
    "default_registry",
    "enable_metrics",
    "disable_metrics",
    "trace_to",
]

_tracer: "Tracer | None" = None
_metrics: "MetricsRegistry | None" = None
_default_registry: "MetricsRegistry | None" = None


class _NullSpan:
    """Shared, reentrant, do-nothing span (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


# -- tracing ------------------------------------------------------------


def span(name: str, **attrs: Any):
    """A nested tracing span; no-op unless a tracer is installed."""
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def current_tracer() -> "Tracer | None":
    return _tracer


def set_tracer(tracer: "Tracer | None") -> "Tracer | None":
    """Install ``tracer`` process-wide; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: "Tracer | None") -> Iterator["Tracer | None"]:
    """Scope ``tracer`` as the active tracer, restoring the previous one."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def trace_to(path: str, rss: bool = False) -> Iterator["Tracer"]:
    """Trace the enclosed block to a JSONL file at ``path``."""
    from .sinks import JsonlSink

    tracer = Tracer(JsonlSink(path), rss=rss)
    try:
        with use_tracer(tracer):
            yield tracer
    finally:
        tracer.close()


# -- metrics ------------------------------------------------------------


def inc(name: str, value: float = 1) -> None:
    """Bump counter ``name``; no-op unless a registry is installed."""
    registry = _metrics
    if registry is not None:
        registry.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name``; no-op unless a registry is installed."""
    registry = _metrics
    if registry is not None:
        registry.set_gauge(name, value)


def observe(name: str, seconds: float) -> None:
    """Record a duration under timer ``name``; no-op when disabled."""
    registry = _metrics
    if registry is not None:
        registry.observe(name, seconds)


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TIMER = _NullTimer()


def timed(name: str):
    """Context manager timing its body into timer ``name`` (gated)."""
    registry = _metrics
    if registry is None:
        return _NULL_TIMER
    return registry.timer(name)


def current_metrics() -> "MetricsRegistry | None":
    return _metrics


def set_metrics(registry: "MetricsRegistry | None") -> "MetricsRegistry | None":
    """Install ``registry`` process-wide; returns the previous one."""
    global _metrics
    previous = _metrics
    _metrics = registry
    return previous


@contextmanager
def use_metrics(registry: "MetricsRegistry | None") -> Iterator["MetricsRegistry | None"]:
    """Scope ``registry`` as the active registry (test isolation path)."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)


def default_registry() -> MetricsRegistry:
    """The lazily created process-wide registry (not active until enabled)."""
    global _default_registry
    if _default_registry is None:
        _default_registry = MetricsRegistry()
    return _default_registry


def enable_metrics() -> MetricsRegistry:
    """Activate the process-default registry and return it."""
    registry = default_registry()
    set_metrics(registry)
    return registry


def disable_metrics() -> None:
    """Deactivate metrics collection (the default registry keeps its data)."""
    set_metrics(None)
