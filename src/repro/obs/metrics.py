"""Counters, gauges and timers with explicit-injection and a process default.

A :class:`MetricsRegistry` is a plain value object: tests construct their own
(full isolation, no cross-test bleed), long-running processes install one as
the process-wide default through :func:`repro.obs.use_metrics` /
:func:`repro.obs.enable_metrics`.  Instrumented library code never talks to a
registry directly — it calls the gated module-level helpers in
:mod:`repro.obs`, which are no-ops until a registry is installed.

Thread safety: counter/timer updates take a lock, so worker threads (the
``thread`` executor of Algorithm 6) can share one registry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["MetricsRegistry", "TimerStat"]


@dataclass
class TimerStat:
    """Aggregated observations of one named duration."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


class _TimerContext:
    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._registry.observe(self._name, time.perf_counter() - self._t0)
        return False


class MetricsRegistry:
    """Named counters, gauges and timers for one measurement scope."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, TimerStat] = {}

    # -- updates ---------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration observation under timer ``name``."""
        with self._lock:
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            stat.observe(seconds)

    def timer(self, name: str) -> _TimerContext:
        """Context manager timing its body into timer ``name``."""
        return _TimerContext(self, name)

    # -- reads -----------------------------------------------------------

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def gauge(self, name: str) -> float:
        return self.gauges.get(name, 0.0)

    def snapshot(self) -> dict:
        """A JSON-ready copy of every metric."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "timers": {k: v.as_dict() for k, v in self.timers.items()},
            }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.timers.clear()

    def render(self) -> str:
        """Human-readable report (the CLI's ``--metrics`` output)."""
        snap = self.snapshot()
        lines = ["metrics:"]
        for name in sorted(snap["counters"]):
            lines.append(f"  counter {name:<32} {snap['counters'][name]:,g}")
        for name in sorted(snap["gauges"]):
            lines.append(f"  gauge   {name:<32} {snap['gauges'][name]:,g}")
        for name in sorted(snap["timers"]):
            t = snap["timers"][name]
            lines.append(
                f"  timer   {name:<32} n={t['count']} total={t['total']:.4f}s "
                f"mean={t['mean']:.4f}s max={t['max']:.4f}s"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)
