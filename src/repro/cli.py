"""Command-line interface.

Thin argparse front-end over the library for shell pipelines::

    python -m repro datasets
    python -m repro info dataset:soc-slashdot:exp
    python -m repro coarsen dataset:soc-slashdot:exp -r 16 -o coarse.txt
    python -m repro estimate dataset:soc-slashdot:exp --seeds 1,2,3 --coarsen
    python -m repro maximize edges.txt -k 10 --algorithm dssa --coarsen
    python -m repro lint src/repro

Graphs are given either as an edge-list path (``u v [p]`` per line) or as
``dataset:NAME[:SETTING[:SEED]]`` referencing the built-in registry.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time

import numpy as np

from . import obs
from .algorithms import (
    CELFMaximizer,
    DegreeHeuristic,
    DSSAMaximizer,
    IMMMaximizer,
    RISMaximizer,
    SSAMaximizer,
)
from .analysis.bounds import guarantee_report
from .core import (
    coarsen_influence_graph,
    estimate_on_coarse,
    maximize_on_coarse,
)
from .datasets import list_datasets, load_dataset
from .errors import ReproError
from .estimators import DEFAULT_ESTIMATOR, available_estimators, make_estimator
from .graph import InfluenceGraph, read_edge_list, write_edge_list
from .scc import DEFAULT_SCC_BACKEND, SCC_BACKENDS

__all__ = ["main"]

def _make_imm(args: argparse.Namespace) -> IMMMaximizer:
    """Build IMM honoring ``--eps`` exactly as given.

    The sketch budget grows roughly as ``1/eps^2``, so a small eps can be
    very slow — but silently overriding a user's flag is worse, so small
    values get a visible note instead of a clamp.
    """
    if args.eps < 0.1:
        print(f"note: --eps {args.eps} is small; IMM's RR-set budget grows "
              f"~1/eps^2, so this run may be slow (the max_samples cap "
              f"still bounds it)", file=sys.stderr)
    return IMMMaximizer(eps=args.eps, rng=args.seed, model=args.model)


_MAXIMIZERS = {
    "dssa": lambda args: DSSAMaximizer(eps=args.eps, delta=args.delta,
                                       rng=args.seed, model=args.model),
    "ssa": lambda args: SSAMaximizer(eps=args.eps, delta=args.delta,
                                     rng=args.seed, model=args.model),
    "imm": _make_imm,
    "ris": lambda args: RISMaximizer(n_samples=args.simulations,
                                     rng=args.seed, model=args.model),
    "celf": lambda args: CELFMaximizer(
        make_estimator("mc", n_samples=args.simulations, rng=args.seed)
    ),
    "degree": lambda args: DegreeHeuristic(),
}


def _load_graph(spec: str, default_prob: float, undirected: bool,
                reverse: bool) -> InfluenceGraph:
    if spec.startswith("dataset:"):
        parts = spec.split(":")
        name = parts[1]
        setting = parts[2] if len(parts) > 2 else "exp"
        seed = int(parts[3]) if len(parts) > 3 else 0
        return load_dataset(name, setting=setting, seed=seed)
    return read_edge_list(spec, default_prob=default_prob,
                          undirected=undirected, reverse=reverse)


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="edge-list path or dataset:NAME[:SETTING[:SEED]]")
    parser.add_argument("--default-prob", type=float, default=0.1,
                        help="probability for edge lists without a p column")
    parser.add_argument("--undirected", action="store_true",
                        help="treat edge-list edges as undirected")
    parser.add_argument("--reverse", action="store_true",
                        help="flip edge-list edges (web-graph convention)")


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH",
                        help="write a JSONL span trace of the run to PATH "
                             "(schema: docs/observability.md)")
    parser.add_argument("--trace-rss", action="store_true",
                        help="also record peak-RSS deltas per span "
                             "(implies nothing without --trace)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect counters/timers during the run and "
                             "print a metrics report on exit")


def _add_coarsen_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scc-backend", choices=SCC_BACKENDS,
                        default=DEFAULT_SCC_BACKEND,
                        help="SCC implementation for the r-robust rounds "
                             "(default %(default)s; see docs/performance.md)")


def _parse_seeds(text: str, n: int) -> np.ndarray:
    try:
        seeds = np.asarray([int(s) for s in text.split(",") if s], dtype=np.int64)
    except ValueError as exc:
        raise ReproError(f"could not parse seed list {text!r}") from exc
    if seeds.size == 0:
        raise ReproError("seed list is empty")
    if seeds.min() < 0 or seeds.max() >= n:
        raise ReproError("seed id out of range")
    return seeds


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from .datasets import DATASETS

    print(f"{'name':18} {'kind':8} {'tier':7} {'paper |V|':>12} {'paper |E|':>14}")
    for name in list_datasets():
        spec = DATASETS[name]
        print(f"{name:18} {spec.kind:8} {spec.tier:7} "
              f"{spec.paper_vertices:>12,} {spec.paper_edges:>14,}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.default_prob, args.undirected,
                        args.reverse)
    degrees = graph.out_degree()
    print(f"vertices: {graph.n:,}")
    print(f"edges:    {graph.m:,}")
    print(f"weighted: {graph.is_weighted} (total weight {graph.total_weight:,})")
    print(f"avg degree: {graph.m / max(graph.n, 1):.2f} "
          f"(max out-degree {int(degrees.max(initial=0))})")
    print(f"probabilities: min {graph.probs.min(initial=1):.4g}, "
          f"mean {float(graph.probs.mean()) if graph.m else 0:.4g}, "
          f"max {graph.probs.max(initial=0):.4g}")
    return 0


def _cmd_coarsen(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.default_prob, args.undirected,
                        args.reverse)
    parallel = args.executor is not None or args.workers is not None
    result = coarsen_influence_graph(
        graph, r=args.r, rng=args.seed,
        executor=args.executor or ("thread" if parallel else "serial"),
        workers=args.workers,
        scc_backend=args.scc_backend,
    )
    if parallel:
        extras = result.stats.extras
        clamp = (f" (clamped from {extras['requested_workers']})"
                 if extras["workers"] != extras["requested_workers"] else "")
        print(f"parallel: executor={extras['executor']} "
              f"workers={extras['workers']}{clamp} "
              f"meet tree depth {extras['meet_tree_depth']}")
    stats = result.stats
    print(f"coarsened in {stats.total_seconds:.2f} s (r={args.r})")
    if stats.stage_seconds:
        print(stats.stage_summary())
    print(f"|W| = {stats.output_vertices:,} "
          f"({stats.vertex_reduction_ratio:.1%} of |V|)")
    print(f"|F| = {stats.output_edges:,} "
          f"({stats.edge_reduction_ratio:.1%} of |E|)")
    if args.output:
        write_edge_list(result.coarse, args.output)
        mapping_path = args.output + ".mapping"
        np.savetxt(mapping_path, result.pi, fmt="%d")
        print(f"coarse graph -> {args.output}; pi -> {mapping_path}")
    if args.bounds:
        report = guarantee_report(graph, result, rng=args.seed)
        print(report.summary())
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.default_prob, args.undirected,
                        args.reverse)
    seeds = _parse_seeds(args.seeds, graph.n)
    opts: dict = {}
    if args.estimator in ("mc", "ris"):
        opts["n_samples"] = args.simulations
        detail = f"{args.simulations} samples"
    elif args.estimator == "sketch":
        opts["r"] = args.r
        detail = f"bottom-k oracle, r={args.r}"
    else:
        detail = "eps/delta-sized sampling"
    estimator = make_estimator(args.estimator, rng=args.seed, **opts)
    t0 = time.perf_counter()
    if args.coarsen:
        result = coarsen_influence_graph(graph, r=args.r, rng=args.seed,
                                         scc_backend=args.scc_backend)
        value = estimate_on_coarse(result, seeds, estimator)
    else:
        value = estimator.estimate(graph, seeds)
    seconds = time.perf_counter() - t0
    print(f"Inf({seeds.tolist()}) ~= {value:.2f} "
          f"({args.estimator}: {detail}, {seconds:.2f} s"
          f"{', via coarse graph' if args.coarsen else ''})")
    return 0


def _cmd_maximize(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.default_prob, args.undirected,
                        args.reverse)
    if getattr(args, "model", "ic") == "lt":
        if args.coarsen:
            raise ReproError(
                "the coarsening guarantees are IC-only; --model lt cannot "
                "be combined with --coarsen"
            )
        if args.algorithm in ("celf", "degree"):
            raise ReproError(
                f"--model lt is supported by the sketch algorithms only, "
                f"not {args.algorithm}"
            )
    maximizer = _MAXIMIZERS[args.algorithm](args)
    t0 = time.perf_counter()
    if args.coarsen:
        result = coarsen_influence_graph(graph, r=args.r, rng=args.seed,
                                         scc_backend=args.scc_backend)
        answer = maximize_on_coarse(result, args.k, maximizer, rng=args.seed)
    else:
        answer = maximizer.select(graph, args.k)
    seconds = time.perf_counter() - t0
    print(f"seeds: {','.join(map(str, answer.seeds.tolist()))}")
    print(f"estimated influence: {answer.estimated_influence:.2f} "
          f"({args.algorithm}, {seconds:.2f} s"
          f"{', via coarse graph' if args.coarsen else ''})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import InfluenceService, ServiceConfig
    from .serve.http import make_server, serve_forever

    graph = _load_graph(args.graph, args.default_prob, args.undirected,
                        args.reverse)
    config = ServiceConfig(
        r=args.r, seed=args.seed, scc_backend=args.scc_backend,
        sampler=args.sampler,
        n_samples=args.simulations, max_models=args.max_models,
        warm_dir=args.warm_dir, max_workers=args.workers,
        max_pending=args.max_pending, deadline_seconds=args.deadline,
        shard_workers=args.shard_workers,
        estimator=args.estimator,
    )
    service = InfluenceService(config)
    print("coarsening model (one-time cost)...", file=sys.stderr)
    dynamic = None
    if args.sampler == "addressable":
        # Live-graph mode: /insert_edge, /delete_edge, /apply_deltas
        # mutate the served graph in place (unless --readonly).
        dynamic = service.attach_dynamic(graph)
    else:
        service.model_for(graph)
    if args.warm_dir:
        service.persist(graph)
    server = make_server(service, graph, host=args.host, port=args.port,
                         dynamic=dynamic, readonly=args.readonly)
    host, port = server.server_address[:2]
    # flush=True so wrappers that parse the port (scripts/serve_smoke.py)
    # see it before the first request.
    print(f"serving on http://{host}:{port} (Ctrl-C to stop)", flush=True)
    serve_forever(server, service)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run as lint_run

    return lint_run(args, args._lint_parser)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Influence-graph coarsening and diffusion analysis "
                    "(SIGMOD 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list built-in dataset analogues")

    p_info = sub.add_parser("info", help="print graph statistics")
    _add_graph_arguments(p_info)
    _add_obs_arguments(p_info)

    p_coarsen = sub.add_parser("coarsen", help="coarsen a graph (Algorithm 1)")
    _add_graph_arguments(p_coarsen)
    _add_obs_arguments(p_coarsen)
    p_coarsen.add_argument("-r", type=int, default=16,
                           help="robustness parameter (default 16)")
    _add_coarsen_arguments(p_coarsen)
    p_coarsen.add_argument("--executor", choices=("serial", "thread", "process"),
                           default=None,
                           help="run Algorithm 6 with this executor instead "
                                "of Algorithm 1 (process = zero-copy "
                                "shared-memory broadcast; implies --workers 4 "
                                "unless given)")
    p_coarsen.add_argument("--workers", type=int, default=None,
                           help="parallel worker count for Algorithm 6 "
                                "(clamped to min(workers, r); implies "
                                "--executor thread unless given)")
    p_coarsen.add_argument("--seed", type=int, default=0)
    p_coarsen.add_argument("-o", "--output",
                           help="write the coarse graph as an edge list "
                                "(and pi as OUTPUT.mapping)")
    p_coarsen.add_argument("--bounds", action="store_true",
                           help="estimate the Theorem 6.1/6.2 guarantees")

    p_est = sub.add_parser("estimate",
                           help="estimate influence of a seed set (Algorithm 3)")
    _add_graph_arguments(p_est)
    _add_obs_arguments(p_est)
    p_est.add_argument("--seeds", required=True,
                       help="comma-separated vertex ids")
    p_est.add_argument("--estimator", choices=available_estimators(),
                       default="mc",
                       help="estimator family (default %(default)s; "
                            "see docs/serving.md, 'Choosing an estimator')")
    p_est.add_argument("--simulations", type=int, default=10_000,
                       help="samples for the mc/ris families")
    p_est.add_argument("--coarsen", action="store_true",
                       help="run on the coarsened graph")
    p_est.add_argument("-r", type=int, default=16)
    p_est.add_argument("--seed", type=int, default=0)
    _add_coarsen_arguments(p_est)

    p_max = sub.add_parser("maximize",
                           help="select an influential seed set (Algorithm 4)")
    _add_graph_arguments(p_max)
    _add_obs_arguments(p_max)
    p_max.add_argument("-k", type=int, required=True, help="seed-set size")
    p_max.add_argument("--algorithm", choices=sorted(_MAXIMIZERS),
                       default="dssa")
    p_max.add_argument("--eps", type=float, default=0.1)
    p_max.add_argument("--delta", type=float, default=0.01)
    p_max.add_argument("--simulations", type=int, default=10_000,
                       help="budget for the ris/celf algorithms")
    p_max.add_argument("--model", choices=("ic", "lt"), default="ic",
                       help="diffusion model for the sketch algorithms "
                            "(lt requires LT-valid weights, e.g. WC; "
                            "--coarsen is IC-only)")
    p_max.add_argument("--coarsen", action="store_true",
                       help="run on the coarsened graph")
    p_max.add_argument("-r", type=int, default=16)
    p_max.add_argument("--seed", type=int, default=0)
    _add_coarsen_arguments(p_max)

    p_serve = sub.add_parser(
        "serve",
        help="run the JSON query endpoint over a cached model "
             "(see docs/serving.md)",
    )
    _add_graph_arguments(p_serve)
    _add_obs_arguments(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="TCP port (0 binds an ephemeral port, "
                              "printed on startup)")
    p_serve.add_argument("-r", type=int, default=16)
    p_serve.add_argument("--seed", type=int, default=0)
    _add_coarsen_arguments(p_serve)
    p_serve.add_argument("--simulations", type=int, default=10_000,
                         help="default RR sets per query")
    p_serve.add_argument("--estimator",
                         choices=available_estimators(serving=True),
                         default=DEFAULT_ESTIMATOR,
                         help="estimator family answering /estimate "
                              "(default %(default)s; 'sketch' precomputes a "
                              "bottom-k oracle per model epoch)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="query worker threads")
    p_serve.add_argument("--max-pending", type=int, default=64,
                         help="queued queries beyond the workers before "
                              "submits are rejected with 429")
    p_serve.add_argument("--shard-workers", type=int, default=None,
                         help="serve pool growth/scoring from this many "
                              "worker processes sharing the model over "
                              "shared memory (default: in-process)")
    p_serve.add_argument("--deadline", type=float, default=None,
                         help="per-query deadline in seconds (queries "
                              "degrade to fewer samples instead of missing it)")
    p_serve.add_argument("--max-models", type=int, default=8,
                         help="resident coarsened models (LRU beyond)")
    p_serve.add_argument("--warm-dir", default=None,
                         help="directory of persisted models for warm starts")
    p_serve.add_argument("--sampler", choices=["addressable", "stream"],
                         default="addressable",
                         help="live-edge coin discipline; 'addressable' "
                              "(default) serves a live graph with the "
                              "/insert_edge, /delete_edge and /apply_deltas "
                              "routes enabled, 'stream' serves the static "
                              "Algorithm 1 sampler")
    p_serve.add_argument("--readonly", action="store_true",
                         help="reject mutation routes with 403 (live-graph "
                              "mode only)")

    from .lint.cli import build_parser as lint_build_parser

    p_lint = sub.add_parser(
        "lint",
        parents=[lint_build_parser()],
        add_help=False,
        help="run the reprolint invariant checks "
             "(see docs/static-analysis.md)",
    )
    p_lint.set_defaults(_lint_parser=p_lint)

    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "info": _cmd_info,
    "coarsen": _cmd_coarsen,
    "estimate": _cmd_estimate,
    "maximize": _cmd_maximize,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    registry = None
    with contextlib.ExitStack() as stack:
        if getattr(args, "trace", None):
            try:
                stack.enter_context(
                    obs.trace_to(args.trace, rss=getattr(args, "trace_rss", False))
                )
            except OSError as exc:
                print(f"error: cannot open trace file: {exc}", file=sys.stderr)
                return 2
        if getattr(args, "metrics", False):
            registry = obs.MetricsRegistry()
            stack.enter_context(obs.use_metrics(registry))
        try:
            code = _COMMANDS[args.command](args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if getattr(args, "trace", None):
        print(f"trace -> {args.trace}")
    if registry is not None:
        print(registry.render())
    return code
