"""The estimator-backend registry (the estimation twin of :mod:`repro.scc`).

Four estimator families behind one dispatch point:

* ``"mc"`` — naive Monte-Carlo simulation (Section 3.2): unbiased, slow,
  the ground-truth reference;
* ``"ris"`` — the reverse-reachable sketch estimator of Borgs et al. /
  Cohen et al.: one pre-drawn RR collection amortised over arbitrarily
  many queries, the family ``repro.serve`` grows shared pools for;
* ``"imm"`` — RIS with the IMM-style ``(eps, delta)`` sample-size rule of
  Tang et al.: you state the accuracy, the registry derives the budget;
* ``"sketch"`` — the bottom-k combined reachability oracle
  (:mod:`repro.sketch`): per-vertex sketches precomputed over the ``r``
  live-edge rounds, point queries in O(1), seed-set queries by sketch
  merge — the read path for high-QPS serving.

Every family lives in one registry: :func:`available_estimators` is the
single source of truth the CLI ``--estimator`` choices,
``ServiceConfig(estimator=...)`` validation, and every "unknown
estimator" error message draw from — exactly the
:func:`repro.scc.available_backends` contract.  :func:`make_estimator`
constructs a protocol-conforming estimator
(:class:`repro.core.frameworks.InfluenceEstimator`);
:func:`estimate_with_report` runs it through the Framework translation
(Algorithm 3) and returns an :class:`EstimateResult` whose
:class:`~repro.analysis.bounds.GuaranteeReport` folds the family's
advertised accuracy into Theorem 6.1.

Direct construction (``MonteCarloEstimator(...)``, ``RISEstimator(...)``)
is deprecated since 1.2 and keeps working through :mod:`repro._compat`
shims until 2.0; CI runs with ``-W error::DeprecationWarning``, so every
in-repo call site goes through this registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..analysis.bounds import GuaranteeReport, guarantee_report
from ..core.frameworks import InfluenceEstimator, estimate_on_coarse
from ..core.result import CoarsenResult
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import RngLike, ensure_rng
from ..sketch import DEFAULT_SKETCH_K, SketchEstimator, sketch_eps

__all__ = [
    "EstimatorSpec",
    "EstimateResult",
    "available_estimators",
    "estimator_spec",
    "make_estimator",
    "estimate_with_report",
    "ESTIMATORS",
    "DEFAULT_ESTIMATOR",
]


@dataclass(frozen=True)
class EstimatorSpec:
    """One registered estimator family and its capabilities.

    ``pooled`` marks families the serving layer answers from shared
    grow-only RR pools (:mod:`repro.serve.pool`); ``oracle`` marks
    families with precomputed per-graph read state (cached and rebuilt
    per epoch by the serving layer); ``serveable`` marks families
    ``ServiceConfig(estimator=...)`` accepts; ``models`` lists the
    diffusion models the family supports.
    """

    name: str
    summary: str
    pooled: bool = False
    oracle: bool = False
    serveable: bool = False
    models: "tuple[str, ...]" = ("ic",)


_REGISTRY: "dict[str, EstimatorSpec]" = {
    spec.name: spec
    for spec in (
        EstimatorSpec(
            "mc",
            "naive Monte-Carlo simulation (Section 3.2)",
            serveable=True,
        ),
        EstimatorSpec(
            "ris",
            "reverse-reachable sketch estimator (pooled default)",
            pooled=True,
            serveable=True,
            models=("ic", "lt"),
        ),
        EstimatorSpec(
            "imm",
            "RIS with the IMM (eps, delta) sample-size rule",
            models=("ic", "lt"),
        ),
        EstimatorSpec(
            "sketch",
            "bottom-k combined reachability oracle (O(1) point queries)",
            oracle=True,
            serveable=True,
        ),
    )
}


def available_estimators(serving: bool = False) -> "tuple[str, ...]":
    """Registered estimator names, in registration order.

    With ``serving=True`` only the families
    ``ServiceConfig(estimator=...)`` accepts are listed (``imm`` derives
    a static sample budget, which the pooled ``ris`` path already covers
    when served).
    """
    return tuple(
        name for name, spec in _REGISTRY.items()
        if not serving or spec.serveable
    )


def estimator_spec(estimator: str) -> EstimatorSpec:
    """The :class:`EstimatorSpec` for ``estimator``; raises on unknown names.

    The one validation point every dispatch surface shares — CLI, serve
    config, :func:`make_estimator` — so a misspelled family fails early
    and the error always lists the full, current menu.
    """
    try:
        return _REGISTRY[estimator]
    except KeyError:
        raise AlgorithmError(
            f"unknown estimator {estimator!r}; choose from "
            f"{available_estimators()}"
        ) from None


#: All registered families — what ``--estimator`` offers.  Derived from the
#: registry so CLI choices, error messages, and :func:`available_estimators`
#: can never drift apart.
ESTIMATORS = available_estimators()

#: Family used when callers don't choose one: the pooled RIS estimator,
#: the serving layer's default since PR 5.
DEFAULT_ESTIMATOR = "ris"


def imm_sample_size(eps: float, delta: float) -> int:
    """The IMM-style RR budget for a ``(1 +- eps)`` estimate w.p. ``1 - delta``.

    The standard multiplicative Chernoff budget ``(2 + 2/3 eps) *
    ln(2/delta) / eps^2`` (Tang et al., Lemma 3 instantiated for a fixed
    seed set).
    """
    if not 0 < eps < 1:
        raise AlgorithmError("eps must lie in (0, 1)")
    if not 0 < delta < 1:
        raise AlgorithmError("delta must lie in (0, 1)")
    return int(math.ceil(
        (2.0 + 2.0 * eps / 3.0) * math.log(2.0 / delta) / (eps * eps)
    ))


def _check_model(spec: EstimatorSpec, model: str) -> None:
    if model not in spec.models:
        raise AlgorithmError(
            f"estimator {spec.name!r} supports diffusion models "
            f"{spec.models}, not {model!r}"
        )


def _make_mc(model: str, rng: RngLike, *, n_samples: int = 10_000):
    from ..algorithms.monte_carlo import MonteCarloEstimator

    est = MonteCarloEstimator._make(n_samples, rng=rng)
    return est, min(1.0, 1.0 / math.sqrt(n_samples))


def _make_ris(model: str, rng: RngLike, *, n_samples: int = 20_000):
    from ..algorithms.ris_estimator import RISEstimator

    est = RISEstimator._make(n_samples, rng=rng, model=model)
    return est, min(1.0, 1.0 / math.sqrt(n_samples))


def _make_imm(model: str, rng: RngLike, *, eps: float = 0.1,
              delta: float = 0.01):
    from ..algorithms.ris_estimator import RISEstimator

    n_samples = imm_sample_size(eps, delta)
    est = RISEstimator._make(n_samples, rng=rng, model=model)
    return est, eps


def _make_sketch(model: str, rng: RngLike, *, r: int = 16,
                 k: int = DEFAULT_SKETCH_K, delta: float = 0.05):
    return SketchEstimator(r=r, k=k, rng=rng), sketch_eps(k, delta)


_FACTORIES = {
    "mc": _make_mc,
    "ris": _make_ris,
    "imm": _make_imm,
    "sketch": _make_sketch,
}


def _build(estimator: str, model: str, rng: RngLike, opts: dict):
    """Construct ``(estimator instance, advertised eps)`` for a family."""
    spec = estimator_spec(estimator)
    _check_model(spec, model)
    try:
        return _FACTORIES[estimator](model, rng, **opts)
    except TypeError as exc:
        raise AlgorithmError(
            f"bad options for estimator {estimator!r}: {exc}"
        ) from None


def make_estimator(estimator: str, model: str = "ic", *,
                   rng: RngLike = None, **opts) -> InfluenceEstimator:
    """Construct a protocol-conforming estimator of the named family.

    Parameters
    ----------
    estimator:
        A name from :func:`available_estimators`.
    model:
        Diffusion model (``"ic"`` / ``"lt"``; families validate support).
    rng:
        Seed or generator for the family's randomness.
    **opts:
        Family options: ``n_samples`` (mc, ris), ``eps`` / ``delta``
        (imm), ``r`` / ``k`` / ``delta`` (sketch).  Unknown options raise
        :class:`~repro.errors.AlgorithmError`.
    """
    est, _ = _build(estimator, model, rng, opts)
    return est


@dataclass
class EstimateResult:
    """One influence estimate with its provenance and guarantees.

    The common return shape of every estimator family: the value, the
    family (``backend``) that produced it, and — when estimated through
    :func:`estimate_with_report` — the Theorem 6.1 report with the
    family's advertised accuracy folded in.
    """

    value: float
    backend: str
    guarantee_report: "GuaranteeReport | None" = None
    extras: dict = field(default_factory=dict)


def estimate_with_report(
    graph: InfluenceGraph,
    result: CoarsenResult,
    seeds: np.ndarray,
    estimator: str = DEFAULT_ESTIMATOR,
    model: str = "ic",
    rng: RngLike = None,
    report: bool = True,
    reliability_samples: int = 2_000,
    **opts,
) -> EstimateResult:
    """Algorithm 3 with the full guarantee translation, any family.

    Runs the named estimator on the coarsened graph ``H`` (seed mapping
    through ``pi``), then instantiates Theorem 6.1 at the family's
    advertised accuracy — ``1/sqrt(n_samples)`` for the sampling
    families, the stated ``eps`` for ``imm``, the bottom-k Chebyshev
    envelope for ``sketch``.  Set ``report=False`` to skip the
    reliability estimation (the report is then ``None``).
    """
    rng = ensure_rng(rng)
    est, eps = _build(estimator, model, rng, opts)
    value = estimate_on_coarse(result, np.asarray(seeds, dtype=np.int64), est)
    guarantees = None
    if report:
        guarantees = guarantee_report(
            graph, result, estimation_eps=eps,
            n_samples=reliability_samples, rng=rng,
        )
    return EstimateResult(value=value, backend=estimator,
                          guarantee_report=guarantees,
                          extras={"advertised_eps": eps})
