"""Sketch-based influence oracles (bottom-k combined reachability).

The read-optimised estimator family: :class:`InfluenceOracle` precomputes
bottom-k reachability sketches over the ``r`` live-edge rounds of a
(coarsened) graph, then answers single-seed influence queries with one
array read and seed-set queries with a sketch merge — no RR pools, no
sampling at query time.  ``repro.serve`` routes ``/estimate`` through an
oracle under ``ServiceConfig(estimator="sketch")``; the registry entry is
``"sketch"`` in :mod:`repro.estimators`.

See :mod:`repro.sketch.oracle` for the construction and the accuracy
model, ``docs/serving.md`` ("Choosing an estimator") for when to pick it.
"""

from .oracle import (
    DEFAULT_SKETCH_K,
    InfluenceOracle,
    SketchEstimator,
    SketchStats,
    round_masks,
    sketch_eps,
)

__all__ = [
    "DEFAULT_SKETCH_K",
    "InfluenceOracle",
    "SketchEstimator",
    "SketchStats",
    "round_masks",
    "sketch_eps",
]
