"""Bottom-k combined reachability sketches over the r live-edge rounds.

The oracle construction follows Cohen et al. ("Sketch-based Influence
Maximization and Computation"): under the live-edge view of the IC model,

    Inf(S) = (1/r) * sum_i w(R_i(S))

for ``r`` sampled live-edge graphs.  Give every *item* — a pair
``(round i, vertex u)`` — an independent exponential rank with rate
``w(u)``.  The bottom-k sketch of a vertex ``v`` keeps the ``k`` smallest
ranks among the items reachable from ``v`` (vertex ``u`` reachable from
``v`` in round ``i``); the rank-conditioning bottom-k estimator

    sum_i w(R_i(v))  ~=  sum_{rank_j < tau_k} w_j / (1 - exp(-w_j tau_k))

(``tau_k`` the k-th smallest rank, summed over the ``k - 1`` items below
it) is unbiased with coefficient of variation at most ``1 / sqrt(k - 2)``.
In the ``k << N`` regime each inclusion probability ``1 - exp(-w tau)``
is ``~ w tau`` and the sum collapses to the classic ``(k - 1) / tau_k``;
unlike that form it stays unbiased when the reachable item count barely
exceeds ``k`` (rank depletion inflates ``tau_k`` there, which the
conditioning absorbs).  A sketch holding fewer than ``k`` items is
*complete* — the estimate is then exact.  Sketches merge:
the bottom-k of a seed set is the k smallest distinct-item ranks across
its members' sketches, so seed-set queries never touch the graph.

Construction amortises the ``r`` rounds through one flat domain — vertex
``v`` of round ``i`` is ``i * n + v``, exactly the disjoint-union idiom of
:mod:`repro.scc.multi` — and a single row-major ``np.nonzero`` of the
``(r, m)`` keep matrix yields the union's reverse CSR with one argsort.
Items are then processed in ascending rank order with a pruned reverse
BFS: a copy whose per-round sketch already holds ``k`` smaller ranks
neither records nor propagates the item (every vertex behind it is
provably saturated too), bounding total work by ``O(k)`` insertions per
vertex copy.

Determinism: the whole build is a pure function of ``(graph content,
entropy, r, k)``.  Round ``i``'s keep-mask comes from the indexed stream
``(entropy, i)`` and the rank matrix from stream ``(entropy, r)``
(:func:`repro.rng.indexed_rng`), so an oracle rebuilt after cache
eviction — or by a dynamic epoch publish on an unchanged coarse graph —
is bit-for-bit the cold build.

Counters/spans (``docs/observability.md``): span ``sketch.build``;
counters ``sketch.builds``, ``sketch.insertions``, ``sketch.pruned``,
``sketch.queries``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..diffusion.reachability import gather_ranges
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, span
from ..rng import RngLike, derive_entropy, ensure_rng, indexed_rng

__all__ = [
    "DEFAULT_SKETCH_K",
    "InfluenceOracle",
    "SketchEstimator",
    "SketchStats",
    "round_masks",
    "sketch_eps",
]

#: Default sketch size.  ``k`` trades memory/build time for accuracy: the
#: estimator's coefficient of variation is at most ``1 / sqrt(k - 2)``.
DEFAULT_SKETCH_K = 64

#: Smallest admissible sketch size — the rank-conditioning estimator
#: needs ``k >= 2`` and its variance bound ``k >= 3``; 4 keeps a margin.
_MIN_K = 4


def sketch_eps(k: int, delta: float = 0.05) -> float:
    """The advertised relative-error bound of a size-``k`` sketch.

    By Chebyshev over the bottom-k estimator's variance (``CV <= 1 /
    sqrt(k - 2)``), the relative error exceeds ``eps`` with probability at
    most ``1 / ((k - 2) * eps^2)``; solving for ``delta`` gives ``eps =
    1 / sqrt((k - 2) * delta)``.  Deliberately conservative — the
    differential suite checks estimates against this envelope, not a
    tuned constant.
    """
    if k < _MIN_K:
        raise AlgorithmError(f"sketch k must be >= {_MIN_K}")
    if not 0 < delta < 1:
        raise AlgorithmError("delta must lie in (0, 1)")
    return 1.0 / math.sqrt((k - 2) * delta)


def round_masks(graph: InfluenceGraph, entropy: int, r: int) -> np.ndarray:
    """The ``(r, m)`` live-edge keep matrix of the ``entropy`` family.

    Row ``i`` is drawn from the indexed stream ``(entropy, i)`` — the
    same mask an oracle built from ``entropy`` used for round ``i``, so
    tests (and the exact differential oracle) can reconstruct the
    realised rounds without the oracle having to retain them.
    """
    keep = np.empty((r, graph.m), dtype=bool)
    for i in range(r):
        keep[i] = indexed_rng(entropy, i).random(graph.m) < graph.probs
    return keep


def _rank_matrix(graph: InfluenceGraph, entropy: int, r: int) -> np.ndarray:
    """Exponential item ranks, rate ``w(u)``: an ``(r, n)`` float matrix.

    Drawn from the indexed stream ``(entropy, r)`` — disjoint from the
    mask streams ``0..r-1`` — so masks and ranks are independent and both
    are pure functions of ``(entropy, r)``.
    """
    rng = indexed_rng(entropy, r)
    exponentials = rng.standard_exponential((r, graph.n))
    return exponentials / graph.weights.astype(np.float64)[None, :]


def _union_reverse_csr(
    graph: InfluenceGraph, keep: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Reverse CSR of the disjoint union of all masked copies.

    Flat vertex ``i * n + v`` is vertex ``v`` of round ``i`` (the
    :mod:`repro.scc.multi` domain).  The row-major ``np.nonzero`` yields
    the kept edges already sorted by round, and one stable argsort by
    head builds the reversed adjacency.
    """
    n = graph.n
    rounds, edges = np.nonzero(keep)
    base = rounds * n
    flat_tails = base + graph.tails()[edges]
    flat_heads = base + graph.heads[edges]
    order = np.argsort(flat_heads, kind="stable")
    rev_heads = flat_tails[order]
    counts = np.bincount(flat_heads, minlength=keep.shape[0] * n)
    rev_indptr = np.zeros(keep.shape[0] * n + 1, dtype=np.int64)
    np.cumsum(counts, out=rev_indptr[1:])
    return rev_indptr, rev_heads


@dataclass
class SketchStats:
    """Work counters for one oracle build."""

    items: int = 0  # flat items processed (r * n)
    union_edges: int = 0  # edges of the union reverse CSR
    insertions: int = 0  # (copy, rank) sketch insertions
    pruned: int = 0  # BFS arrivals dropped at saturated copies
    bfs_levels: int = 0  # frontier expansions summed over all items


class InfluenceOracle:
    """A per-vertex influence oracle over bottom-k reachability sketches.

    Parameters
    ----------
    graph:
        The (typically coarsened, vertex-weighted) graph to sketch.
    r:
        Live-edge rounds averaged over — the same role as the coarsening
        parameter ``r``.
    k:
        Sketch size (see :data:`DEFAULT_SKETCH_K`).
    rng:
        Seed or generator the oracle's entropy is drawn from; the build
        is then a pure function of ``(graph content, entropy, r, k)``.

    The oracle conforms to the
    :class:`repro.core.frameworks.InfluenceEstimator` protocol, but is
    *bound* to its graph by identity — Algorithm 3 composes it with the
    Framework translation exactly like a pooled estimator.
    """

    def __init__(self, graph: InfluenceGraph, r: int = 16,
                 k: int = DEFAULT_SKETCH_K, rng: RngLike = None) -> None:
        if r <= 0:
            raise AlgorithmError("r must be positive")
        if k < _MIN_K:
            raise AlgorithmError(f"sketch k must be >= {_MIN_K}")
        self.graph = graph
        self.r = int(r)
        self.k = int(k)
        self.entropy = derive_entropy(rng)
        self.stats = SketchStats()
        with span("sketch.build", n=graph.n, m=graph.m, r=self.r, k=self.k):
            self._build()
        inc("sketch.builds")
        inc("sketch.insertions", self.stats.insertions)
        inc("sketch.pruned", self.stats.pruned)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        graph, r, k = self.graph, self.r, self.k
        n = graph.n
        flat_n = r * n
        keep = round_masks(graph, self.entropy, r)
        rev_indptr, rev_heads = _union_reverse_csr(graph, keep)
        ranks = _rank_matrix(graph, self.entropy, r).reshape(flat_n)
        self.stats.items = flat_n
        self.stats.union_edges = int(rev_heads.size)

        # Pruned reverse BFS in ascending rank order: per-copy sketch
        # cardinalities are all the pruning needs; the insertions
        # themselves are folded per original vertex afterwards.
        counts = np.zeros(flat_n, dtype=np.int64)
        stamp = np.zeros(flat_n, dtype=np.int64)
        ins_vertices: "list[np.ndarray]" = []
        ins_items: "list[np.ndarray]" = []
        token = 0
        for item in np.argsort(ranks, kind="stable"):
            token += 1
            if counts[item] >= k:
                self.stats.pruned += 1
                continue
            stamp[item] = token
            frontier = np.asarray([item], dtype=np.int64)
            reached = [frontier]
            while frontier.size:
                edge_idx = gather_ranges(rev_indptr[frontier],
                                         rev_indptr[frontier + 1])
                if edge_idx.size == 0:
                    break
                targets = rev_heads[edge_idx]
                new = targets[stamp[targets] != token]
                if new.size == 0:
                    break
                new = np.unique(new)
                stamp[new] = token
                live = new[counts[new] < k]
                self.stats.pruned += int(new.size - live.size)
                self.stats.bfs_levels += 1
                frontier = live
                if live.size:
                    reached.append(live)
            copies = np.concatenate(reached)
            counts[copies] += 1
            ins_vertices.append(copies % n)
            ins_items.append(np.full(copies.size, item, dtype=np.int64))
            self.stats.insertions += int(copies.size)

        self._fold(np.concatenate(ins_vertices) if ins_vertices
                   else np.empty(0, dtype=np.int64),
                   np.concatenate(ins_items) if ins_items
                   else np.empty(0, dtype=np.int64),
                   ranks)

    def _fold(self, vertices: np.ndarray, items: np.ndarray,
              ranks: np.ndarray) -> None:
        """Combine per-copy insertions into per-vertex bottom-k sketches.

        A vertex's copies receive disjoint item sets (copy ``(i, v)``
        only ever reaches round-``i`` items), so the combined bottom-k is
        simply the ``k`` smallest ranks among all insertions — one
        lexsort, no dedup.
        """
        n, k = self.graph.n, self.k
        item_ranks = ranks[items]
        order = np.lexsort((item_ranks, vertices))
        vertices, items, item_ranks = (
            vertices[order], items[order], item_ranks[order])
        # Position of each insertion within its vertex's sorted run.
        starts = np.searchsorted(vertices, np.arange(n), side="left")
        offsets = np.arange(vertices.size) - starts[vertices]
        take = offsets < k
        self.ranks = np.full((n, k), np.inf, dtype=np.float64)
        self.items = np.full((n, k), -1, dtype=np.int64)
        self.ranks[vertices[take], offsets[take]] = item_ranks[take]
        self.items[vertices[take], offsets[take]] = items[take]
        self.counts = np.minimum(
            np.searchsorted(vertices, np.arange(n), side="right") - starts, k
        ).astype(np.int64)
        self._weights = self.graph.weights.astype(np.float64)
        # Precomputed point estimates make single-seed queries one read.
        full = self.counts >= k
        item_weights = np.where(self.items >= 0,
                                self._weights[self.items % n], 0.0)
        exact = item_weights.sum(axis=1)
        # Rank-conditioning estimate over the k-1 items below tau_k.  For
        # non-full rows tau is inf and the padded weights are 0, feeding
        # nan/0 into inclusion — masked out by `where` and discarded by
        # the `full` select anyway.
        tau = self.ranks[:, k - 1]
        head_weights = item_weights[:, : k - 1]
        with np.errstate(invalid="ignore"):
            inclusion = -np.expm1(-head_weights * tau[:, None])
        conditioned = np.divide(
            head_weights, inclusion,
            out=np.zeros_like(head_weights), where=inclusion > 0,
        ).sum(axis=1)
        self.point_estimates = np.where(full, conditioned, exact) / self.r

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def eps(self, delta: float = 0.05) -> float:
        """The advertised relative-error bound at confidence ``1 - delta``."""
        return sketch_eps(self.k, delta)

    def point(self, vertex: int) -> float:
        """``Inf(vertex)`` — one array read off the precomputed estimates."""
        if not 0 <= vertex < self.graph.n:
            raise AlgorithmError("vertex id out of range")
        inc("sketch.queries")
        return float(self.point_estimates[vertex])

    def points(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`point`: one gather off the precomputed estimates.

        The batch face of the oracle — a point-query workload of q
        vertices costs one fancy index, not q Python calls.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            raise AlgorithmError("vertex batch must be non-empty")
        if vertices.min() < 0 or vertices.max() >= self.graph.n:
            raise AlgorithmError("vertex id out of range")
        inc("sketch.queries", int(vertices.size))
        return self.point_estimates[vertices].copy()

    def estimate(self, graph: InfluenceGraph, seeds: np.ndarray) -> float:
        """``Inf(seeds)`` from the merged bottom-k of the seeds' sketches.

        Protocol-conforming (Algorithm 3 plugs it in unchanged), but
        bound to the sketched graph by identity — sketches cannot answer
        for a graph they were not built on.
        """
        if graph is not self.graph:
            raise AlgorithmError(
                "InfluenceOracle is bound to the graph it sketched; "
                "build a new oracle for a different graph"
            )
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if seeds.size == 0:
            raise AlgorithmError("seed set must be non-empty")
        if seeds[0] < 0 or seeds[-1] >= self.graph.n:
            raise AlgorithmError("seed id out of range")
        if seeds.size == 1:
            return self.point(int(seeds[0]))
        inc("sketch.queries")
        k = self.k
        ranks = self.ranks[seeds].ravel()
        items = self.items[seeds].ravel()
        valid = items >= 0
        ranks, items = ranks[valid], items[valid]
        # Seeds' reachable sets overlap, so the same item (with the same
        # rank) may appear under several seeds: merge on distinct items.
        items, first = np.unique(items, return_index=True)
        ranks = ranks[first]
        if items.size < k:
            # Every member sketch was complete, so the union is too.
            total = self._weights[items % self.graph.n].sum()
            return float(total / self.r)
        smallest = np.argpartition(ranks, k - 1)[:k]
        tau = ranks[smallest].max()
        below = smallest[ranks[smallest] < tau]
        weights = self._weights[items[below] % self.graph.n]
        inclusion = -np.expm1(-weights * tau)
        return float((weights / inclusion).sum() / self.r)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Resident bytes of the sketch arrays."""
        return int(self.ranks.nbytes + self.items.nbytes + self.counts.nbytes
                   + self.point_estimates.nbytes)

    def state_digest(self) -> str:
        """A content digest of the sketch state (bit-for-bit comparisons)."""
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        for array in (self.ranks, self.items, self.counts,
                      self.point_estimates):
            h.update(np.ascontiguousarray(array).tobytes())
        h.update(str((self.r, self.k, self.entropy)).encode("ascii"))
        return h.hexdigest()


class SketchEstimator:
    """The registry face of the oracle: lazily sketches each queried graph.

    Conforms to the :class:`repro.core.frameworks.InfluenceEstimator`
    protocol like :class:`~repro.algorithms.ris_estimator.RISEstimator`:
    the oracle is (re)built per graph *object* and reused across queries
    on it, so a batch of q queries pays one construction.  Construct via
    ``repro.estimators.make_estimator("sketch", ...)``.
    """

    def __init__(self, r: int = 16, k: int = DEFAULT_SKETCH_K,
                 rng: RngLike = None) -> None:
        if r <= 0:
            raise AlgorithmError("r must be positive")
        if k < _MIN_K:
            raise AlgorithmError(f"sketch k must be >= {_MIN_K}")
        self.r = int(r)
        self.k = int(k)
        self._rng = ensure_rng(rng)
        self._oracle: "InfluenceOracle | None" = None

    def oracle_for(self, graph: InfluenceGraph) -> InfluenceOracle:
        """The oracle bound to ``graph``, building it on first use."""
        if self._oracle is None or self._oracle.graph is not graph:
            self._oracle = InfluenceOracle(graph, r=self.r, k=self.k,
                                           rng=self._rng)
        return self._oracle

    def eps(self, delta: float = 0.05) -> float:
        """The advertised relative-error bound at confidence ``1 - delta``."""
        return sketch_eps(self.k, delta)

    def estimate(self, graph: InfluenceGraph, seeds: np.ndarray) -> float:
        """``Inf_graph(seeds)`` from the graph's (lazily built) oracle."""
        return self.oracle_for(graph).estimate(graph, seeds)
