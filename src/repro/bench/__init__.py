"""Benchmark harness: measurement, resource budgets, table rendering."""

from .ascii_plot import ascii_plot
from .harness import Budget, RunOutcome, format_seconds, run_budgeted
from .memory import MeasuredRun, measure
from .tables import render_series, render_table, save_json

__all__ = [
    "ascii_plot",
    "Budget",
    "RunOutcome",
    "run_budgeted",
    "format_seconds",
    "measure",
    "MeasuredRun",
    "render_table",
    "render_series",
    "save_json",
]
