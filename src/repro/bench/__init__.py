"""Benchmark harness: measurement, resource budgets, table rendering."""

from .ascii_plot import ascii_plot
from .harness import (
    COARSEN_STAGES,
    Budget,
    RunOutcome,
    aggregate_spans,
    format_seconds,
    render_stage_table,
    run_budgeted,
    run_traced,
)
from .memory import MeasuredRun, measure
from .tables import render_series, render_table, save_json

__all__ = [
    "ascii_plot",
    "Budget",
    "RunOutcome",
    "run_budgeted",
    "run_traced",
    "aggregate_spans",
    "render_stage_table",
    "COARSEN_STAGES",
    "format_seconds",
    "measure",
    "MeasuredRun",
    "render_table",
    "render_series",
    "save_json",
]
