"""Peak-memory measurement for benchmark runs.

Uses :mod:`tracemalloc` so the number reported is the Python-level peak
allocation of the measured call — the right analogue of the paper's
"memory usage" column, because every competing implementation here is
measured the same way.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["MeasuredRun", "measure"]


@dataclass
class MeasuredRun:
    """Result of a measured call."""

    result: Any
    seconds: float
    peak_bytes: int

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / (1024 * 1024)


def measure(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> MeasuredRun:
    """Run ``fn`` under tracemalloc, returning result, wall time and peak.

    tracemalloc adds interpreter overhead, so wall times measured here are
    comparable *to each other* but slower than un-instrumented runs; the
    harness therefore measures time and memory in separate invocations when
    a table reports both.
    """
    tracemalloc.start()
    tracemalloc.reset_peak()
    t0 = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    seconds = time.perf_counter() - t0
    return MeasuredRun(result=result, seconds=seconds, peak_bytes=peak)
