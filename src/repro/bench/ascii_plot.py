"""Terminal line plots for the figure benchmarks.

The paper's figures are log-scale line charts; in a text-only environment
the benchmarks render the same series as a monospace chart (plus the exact
numbers as a table and JSON).  Pure string manipulation — no plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:g}"


def ascii_plot(
    xs: Sequence[float],
    series: "dict[str, Sequence[float]]",
    title: str = "",
    width: int = 60,
    height: int = 16,
    log_x: bool = False,
) -> str:
    """Render one or more ``y(x)`` series as a monospace chart.

    Parameters
    ----------
    xs:
        Shared x coordinates (positive when ``log_x``).
    series:
        Mapping of legend label to y values (aligned with ``xs``).
    width, height:
        Plot-area size in characters.
    log_x:
        Place x ticks on a log scale (the paper's r sweeps are log-spaced).
    """
    if not series or not xs:
        return title
    x_vals = [math.log2(x) for x in xs] if log_x else list(map(float, xs))
    y_all = [y for ys in series.values() for y in ys]
    y_min, y_max = min(y_all), max(y_all)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_vals), max(x_vals)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][col] = marker

    for (label, ys), marker in zip(series.items(), _MARKERS):
        for x, y in zip(x_vals, ys):
            place(x, float(y), marker)

    y_labels = [_format_tick(y_max), _format_tick((y_min + y_max) / 2),
                _format_tick(y_min)]
    label_width = max(len(t) for t in y_labels)
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            tick = y_labels[0]
        elif i == height // 2:
            tick = y_labels[1]
        elif i == height - 1:
            tick = y_labels[2]
        else:
            tick = ""
        lines.append(f"{tick:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_left = _format_tick(xs[0])
    x_right = _format_tick(xs[-1])
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * (label_width + 2) + x_left + " " * max(pad, 1) + x_right)
    legend = "   ".join(
        f"{marker} {label}" for (label, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
