"""Plain-text table/series rendering for the benchmark harness.

Every benchmark prints the same rows or series its paper counterpart
reports, via these helpers, and can persist the raw numbers as JSON next to
the formatted output (consumed by ``EXPERIMENTS.md``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Sequence

__all__ = ["render_table", "render_series", "save_json"]


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Render an aligned monospace table with a title rule."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(row, widths)))

    lines = [title, "=" * len(title), fmt(list(headers)),
             "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_series(title: str, x_label: str, xs: Sequence[Any],
                  series: dict[str, Sequence[Any]]) -> str:
    """Render a figure's data as one row per x value (one column per line)."""
    headers = [x_label, *series.keys()]
    rows = [[x, *(s[i] for s in series.values())] for i, x in enumerate(xs)]
    return render_table(title, headers, rows)


def save_json(payload: dict, path: str) -> None:
    """Persist raw benchmark numbers (creates parent directories)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
