"""Experiment runner with resource budgets.

The paper reports ``OOM`` for runs that exhausted a 256 GB server.  At
laptop scale nothing here exhausts real memory, so the harness reproduces
those rows with an explicit *budget*: every run can carry a cost estimate
(estimated peak bytes and/or estimated seconds); if the estimate — or the
measured value — exceeds the budget, the row is reported as ``OOM`` /
``TIMEOUT`` instead of a number.  Estimates are only used to *skip* runs
that would clearly blow the budget (e.g. a dense eigensolver on the largest
graph), mirroring which systems fell over in the paper; they are documented
per-benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from .memory import MeasuredRun, measure

__all__ = ["Budget", "RunOutcome", "run_budgeted"]


@dataclass
class Budget:
    """Resource envelope for one benchmark run."""

    max_bytes: int | None = None
    max_seconds: float | None = None


@dataclass
class RunOutcome:
    """A benchmark cell: either a measurement or a budget violation."""

    status: str  # "ok" | "oom" | "timeout" | "skipped-oom" | "skipped-timeout"
    run: MeasuredRun | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def time_cell(self) -> str:
        """Formatted run-time table cell (matches the paper's OOM rows)."""
        if self.status in ("oom", "skipped-oom"):
            return "OOM"
        if self.status in ("timeout", "skipped-timeout"):
            return "TIMEOUT"
        assert self.run is not None
        return format_seconds(self.run.seconds)

    def memory_cell(self) -> str:
        """Formatted peak-memory table cell (OOM/TIMEOUT aware)."""
        if self.status in ("oom", "skipped-oom"):
            return "OOM"
        if self.status in ("timeout", "skipped-timeout"):
            return "TIMEOUT"
        assert self.run is not None
        return f"{self.run.peak_mb:,.1f} MB"


def format_seconds(seconds: float) -> str:
    """Human formatting matching the paper's tables (ms below 1 s)."""
    if seconds < 1.0:
        return f"{seconds * 1e3:,.1f} ms"
    return f"{seconds:,.2f} s"


def run_budgeted(
    fn: Callable[[], Any],
    budget: Budget | None = None,
    estimated_bytes: int | None = None,
    estimated_seconds: float | None = None,
    track_memory: bool = True,
) -> RunOutcome:
    """Run ``fn`` under a resource budget.

    If an a-priori estimate already exceeds the budget the run is skipped
    and reported as OOM/TIMEOUT (the paper's behaviour for runs that cannot
    fit); otherwise the run is measured and post-checked against the budget.
    """
    if budget is not None:
        if (
            budget.max_bytes is not None
            and estimated_bytes is not None
            and estimated_bytes > budget.max_bytes
        ):
            return RunOutcome(status="skipped-oom")
        if (
            budget.max_seconds is not None
            and estimated_seconds is not None
            and estimated_seconds > budget.max_seconds
        ):
            return RunOutcome(status="skipped-timeout")
    if track_memory:
        run = measure(fn)
    else:
        t0 = time.perf_counter()
        result = fn()
        run = MeasuredRun(result=result, seconds=time.perf_counter() - t0,
                          peak_bytes=0)
    if budget is not None:
        if budget.max_bytes is not None and run.peak_bytes > budget.max_bytes:
            return RunOutcome(status="oom", run=run)
        if budget.max_seconds is not None and run.seconds > budget.max_seconds:
            return RunOutcome(status="timeout", run=run)
    return RunOutcome(status="ok", run=run)
