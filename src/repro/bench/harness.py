"""Experiment runner with resource budgets.

The paper reports ``OOM`` for runs that exhausted a 256 GB server.  At
laptop scale nothing here exhausts real memory, so the harness reproduces
those rows with an explicit *budget*: every run can carry a cost estimate
(estimated peak bytes and/or estimated seconds); if the estimate — or the
measured value — exceeds the budget, the row is reported as ``OOM`` /
``TIMEOUT`` instead of a number.  Estimates are only used to *skip* runs
that would clearly blow the budget (e.g. a dense eigensolver on the largest
graph), mirroring which systems fell over in the paper; they are documented
per-benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..obs import ListSink, Tracer, use_tracer
from ..obs.stages import STAGE_CONTRACT, STAGE_MEET, STAGE_SAMPLE, STAGE_SCC
from .memory import MeasuredRun, measure

__all__ = [
    "Budget",
    "RunOutcome",
    "run_budgeted",
    "run_traced",
    "aggregate_spans",
    "render_stage_table",
    "COARSEN_STAGES",
]

COARSEN_STAGES = (STAGE_SAMPLE, STAGE_SCC, STAGE_MEET, STAGE_CONTRACT)


@dataclass
class Budget:
    """Resource envelope for one benchmark run."""

    max_bytes: int | None = None
    max_seconds: float | None = None


@dataclass
class RunOutcome:
    """A benchmark cell: either a measurement or a budget violation."""

    status: str  # "ok" | "oom" | "timeout" | "skipped-oom" | "skipped-timeout"
    run: MeasuredRun | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def time_cell(self) -> str:
        """Formatted run-time table cell (matches the paper's OOM rows)."""
        if self.status in ("oom", "skipped-oom"):
            return "OOM"
        if self.status in ("timeout", "skipped-timeout"):
            return "TIMEOUT"
        assert self.run is not None
        return format_seconds(self.run.seconds)

    def memory_cell(self) -> str:
        """Formatted peak-memory table cell (OOM/TIMEOUT aware)."""
        if self.status in ("oom", "skipped-oom"):
            return "OOM"
        if self.status in ("timeout", "skipped-timeout"):
            return "TIMEOUT"
        assert self.run is not None
        return f"{self.run.peak_mb:,.1f} MB"


def format_seconds(seconds: float) -> str:
    """Human formatting matching the paper's tables (ms below 1 s)."""
    if seconds < 1.0:
        return f"{seconds * 1e3:,.1f} ms"
    return f"{seconds:,.2f} s"


def run_budgeted(
    fn: Callable[[], Any],
    budget: Budget | None = None,
    estimated_bytes: int | None = None,
    estimated_seconds: float | None = None,
    track_memory: bool = True,
) -> RunOutcome:
    """Run ``fn`` under a resource budget.

    If an a-priori estimate already exceeds the budget the run is skipped
    and reported as OOM/TIMEOUT (the paper's behaviour for runs that cannot
    fit); otherwise the run is measured and post-checked against the budget.
    """
    if budget is not None:
        if (
            budget.max_bytes is not None
            and estimated_bytes is not None
            and estimated_bytes > budget.max_bytes
        ):
            return RunOutcome(status="skipped-oom")
        if (
            budget.max_seconds is not None
            and estimated_seconds is not None
            and estimated_seconds > budget.max_seconds
        ):
            return RunOutcome(status="skipped-timeout")
    if track_memory:
        run = measure(fn)
    else:
        t0 = time.perf_counter()
        result = fn()
        run = MeasuredRun(result=result, seconds=time.perf_counter() - t0,
                          peak_bytes=0)
    if budget is not None:
        if budget.max_bytes is not None and run.peak_bytes > budget.max_bytes:
            return RunOutcome(status="oom", run=run)
        if budget.max_seconds is not None and run.seconds > budget.max_seconds:
            return RunOutcome(status="timeout", run=run)
    return RunOutcome(status="ok", run=run)


def run_traced(fn: Callable[[], Any]) -> tuple[Any, list[dict]]:
    """Run ``fn`` under an in-memory tracer; returns (result, span records).

    The records follow the JSONL trace schema (``repro.obs.validate_record``)
    and are the input to :func:`aggregate_spans` /
    :func:`render_stage_table` — this is how benchmarks attribute wall time
    to pipeline stages without re-instrumenting anything.
    """
    sink = ListSink()
    tracer = Tracer(sink)
    try:
        with use_tracer(tracer):
            result = fn()
    finally:
        tracer.close()
    return result, sink.records


def aggregate_spans(
    records: Sequence[dict], names: "Sequence[str] | None" = None
) -> dict[str, dict]:
    """Sum span durations by name: ``{name: {"count": n, "seconds": s}}``.

    Nested spans each contribute their own wall time, so only aggregate
    sibling names together (e.g. the four ``COARSEN_STAGES``, which never
    nest within one another).
    """
    agg: dict[str, dict] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        name = record["name"]
        if names is not None and name not in names:
            continue
        entry = agg.setdefault(name, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += record["seconds"]
    return agg


def render_stage_table(
    title: str,
    rows: Sequence[tuple[Any, dict[str, dict]]],
    stages: Sequence[str] = COARSEN_STAGES,
) -> str:
    """Render per-stage time columns for a list of (label, aggregate) rows.

    ``rows`` pairs a run label (e.g. an ``r`` value) with the output of
    :func:`aggregate_spans`; stages absent from a run render as ``-``.
    """
    from .tables import render_table

    headers = ["run", *stages, "total"]
    body = []
    for label, agg in rows:
        cells: list[str] = [label]
        total = 0.0
        for stage in stages:
            entry = agg.get(stage)
            if entry is None:
                cells.append("-")
            else:
                cells.append(format_seconds(entry["seconds"]))
                total += entry["seconds"]
        cells.append(format_seconds(total))
        body.append(cells)
    return render_table(title, headers, body)
