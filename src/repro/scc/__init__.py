"""Strongly-connected-component algorithms.

Four independent implementations with one dispatch point:

* ``"fwbw"`` — vectorised forward–backward decomposition with trimming and
  a coloring phase (:mod:`repro.scc.fwbw`), the default: it runs on numpy
  frontiers instead of a per-vertex interpreter loop, and is the only
  backend that accepts a ``block_labels`` restriction for refinement-aware
  r-robust rounds;
* ``"tarjan"`` — iterative Tarjan, the pure-Python reference routine;
* ``"kosaraju"`` — two-pass Kosaraju, an independent cross-check;
* ``"scipy"`` — optional acceleration via :mod:`scipy.sparse.csgraph` when
  scipy is installed (results are label-equivalent; tests verify this).

The semi-external streaming algorithm lives in
:mod:`repro.scc.semi_external` and is dispatched separately because it
operates on disk stores, not CSR arrays.
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..obs import inc, span
from .fwbw import FwbwStats, fwbw_scc_labels
from .kosaraju import kosaraju_scc_labels
from .semi_external import SemiExternalStats, semi_external_scc_labels
from .tarjan import tarjan_scc_labels

__all__ = [
    "scc_labels",
    "fwbw_scc_labels",
    "tarjan_scc_labels",
    "kosaraju_scc_labels",
    "semi_external_scc_labels",
    "FwbwStats",
    "SemiExternalStats",
    "SCC_BACKENDS",
    "DEFAULT_SCC_BACKEND",
]

SCC_BACKENDS = ("fwbw", "tarjan", "kosaraju", "scipy")

#: Backend used when callers don't choose one.  ``fwbw`` is bit-identical to
#: ``tarjan`` up to label renaming (the differential suite pins this) and an
#: order of magnitude faster on large graphs; see ``docs/performance.md``.
DEFAULT_SCC_BACKEND = "fwbw"


def _scipy_scc_labels(indptr: np.ndarray, heads: np.ndarray) -> np.ndarray:
    # The one sanctioned scipy touchpoint: an *optional* accelerator backend,
    # imported lazily, never on the default path, and failing over to an
    # AlgorithmError when scipy is absent (see scc_labels below).
    from scipy.sparse import csr_array  # reprolint: disable=RL001 - optional backend
    from scipy.sparse.csgraph import connected_components  # reprolint: disable=RL001 - optional backend

    n = indptr.size - 1
    data = np.ones(heads.size, dtype=np.int8)
    matrix = csr_array((data, heads, indptr), shape=(n, n))
    _, labels = connected_components(matrix, directed=True, connection="strong")
    return labels.astype(np.int64)


def scc_labels(
    indptr: np.ndarray,
    heads: np.ndarray,
    backend: str = DEFAULT_SCC_BACKEND,
    block_labels: "np.ndarray | None" = None,
) -> np.ndarray:
    """Label every vertex of a CSR digraph with its SCC id.

    ``backend`` selects the implementation (see module docstring).  Labels
    differ between backends only by renaming; canonicalise with
    :class:`repro.partition.Partition` before comparing.

    ``block_labels`` optionally restricts the computation to refining a
    running partition (the ``fwbw`` backend skips work that cannot split a
    surviving block; other backends compute the full SCC, which is always a
    valid refinement input).  With a restriction in place only the meet
    ``block_labels ∧ result`` is meaningful — see
    :func:`repro.scc.fwbw.fwbw_scc_labels`.
    """
    with span("scc_labels", backend=backend, n=int(indptr.size - 1),
              m=int(heads.size)):
        inc("scc.runs")
        if backend == "fwbw":
            labels, stats = fwbw_scc_labels(
                indptr, heads, block_labels=block_labels, return_stats=True
            )
            if stats.frozen_vertices:
                inc("scc.frozen_vertices", stats.frozen_vertices)
            if stats.masked_edges:
                inc("scc.masked_edges", stats.masked_edges)
            return labels
        if backend == "tarjan":
            return tarjan_scc_labels(indptr, heads)
        if backend == "kosaraju":
            return kosaraju_scc_labels(indptr, heads)
        if backend == "scipy":
            try:
                return _scipy_scc_labels(indptr, heads)
            except ImportError as exc:
                raise AlgorithmError(
                    "scipy backend requested but scipy missing"
                ) from exc
        raise AlgorithmError(
            f"unknown SCC backend {backend!r}; choose from {SCC_BACKENDS}"
        )
