"""Strongly-connected-component algorithms.

Five independent implementations with one dispatch point:

* ``"fwbw"`` — vectorised forward–backward decomposition with trimming and
  a coloring phase (:mod:`repro.scc.fwbw`), the default: it runs on numpy
  frontiers instead of a per-vertex interpreter loop and accepts a
  ``block_labels`` restriction for refinement-aware r-robust rounds;
* ``"multi"`` — the batched multi-sample variant (:mod:`repro.scc.multi`):
  one decomposition over the disjoint union of all ``r`` live-edge rounds,
  amortising CSR traversal across the sample axis.  On a single CSR it
  degrades gracefully to a one-row batch;
* ``"tarjan"`` — iterative Tarjan, the pure-Python reference routine;
* ``"kosaraju"`` — two-pass Kosaraju, an independent cross-check;
* ``"scipy"`` — optional acceleration via :mod:`scipy.sparse.csgraph` when
  scipy is installed (results are label-equivalent; tests verify this).

The semi-external streaming algorithm (:mod:`repro.scc.semi_external`)
is registered too — so misspellings fail fast with the full menu — but it
operates on disk stores, not CSR arrays, and is dispatched by the
sublinear-space path rather than :func:`scc_labels`.

Every kernel lives in one :data:`registry <BackendSpec>`:
:func:`available_backends` is the single source of truth the CLI
``--scc-backend`` choices, the sublinear-space validation, and every
"unknown backend" error message draw from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AlgorithmError
from ..obs import inc, span
from .fwbw import FwbwStats, fwbw_scc_labels
from .kosaraju import kosaraju_scc_labels
from .multi import (
    MULTI_REFINE_CHUNK,
    MultiStats,
    multi_chunk_cap,
    multi_scc_labels,
)
from .semi_external import SemiExternalStats, semi_external_scc_labels
from .tarjan import tarjan_scc_labels

__all__ = [
    "scc_labels",
    "fwbw_scc_labels",
    "multi_chunk_cap",
    "multi_scc_labels",
    "tarjan_scc_labels",
    "kosaraju_scc_labels",
    "semi_external_scc_labels",
    "available_backends",
    "backend_spec",
    "BackendSpec",
    "FwbwStats",
    "MultiStats",
    "MULTI_REFINE_CHUNK",
    "SemiExternalStats",
    "SCC_BACKENDS",
    "DEFAULT_SCC_BACKEND",
]


@dataclass(frozen=True)
class BackendSpec:
    """One registered SCC kernel and its capabilities.

    ``supports_block_labels`` marks kernels that accept the running
    r-robust partition as a restriction (``refine=True`` in
    :func:`repro.core.robust_scc.robust_scc_partition`);
    ``supports_batch`` marks kernels that consume the whole ``(r, m)``
    keep-mask matrix in one call; ``streaming`` marks kernels that operate
    on disk pair stores instead of in-memory CSR arrays; ``optional``
    marks kernels behind an optional dependency.
    """

    name: str
    summary: str
    supports_block_labels: bool = False
    supports_batch: bool = False
    streaming: bool = False
    optional: bool = False


_REGISTRY: "dict[str, BackendSpec]" = {
    spec.name: spec
    for spec in (
        BackendSpec(
            "fwbw",
            "vectorised FW-BW with trimming and coloring (default)",
            supports_block_labels=True,
        ),
        BackendSpec(
            "multi",
            "batched FW-BW over all r live-edge rounds at once",
            supports_block_labels=True,
            supports_batch=True,
        ),
        BackendSpec("tarjan", "iterative Tarjan, pure-Python reference"),
        BackendSpec("kosaraju", "two-pass Kosaraju cross-check"),
        BackendSpec(
            "scipy",
            "scipy.sparse.csgraph accelerator (optional dependency)",
            optional=True,
        ),
        BackendSpec(
            "semi-external",
            "Algorithm 2 streaming SCC over disk pair stores",
            streaming=True,
        ),
    )
}


def available_backends(streaming: bool = False) -> "tuple[str, ...]":
    """Registered backend names, in registration order.

    With ``streaming=False`` (the default) only in-memory CSR kernels are
    listed — the menu :func:`scc_labels` and the ``--scc-backend`` CLI
    flag accept.  ``streaming=True`` adds the disk-store kernels accepted
    by the sublinear-space path.
    """
    return tuple(
        name for name, spec in _REGISTRY.items()
        if streaming or not spec.streaming
    )


def backend_spec(backend: str) -> BackendSpec:
    """The :class:`BackendSpec` for ``backend``; raises on unknown names.

    The one validation point every dispatch surface shares, so a
    misspelled backend fails *early* and the error always lists the full,
    current menu.
    """
    try:
        return _REGISTRY[backend]
    except KeyError:
        raise AlgorithmError(
            f"unknown SCC backend {backend!r}; choose from "
            f"{available_backends(streaming=True)}"
        ) from None


#: In-memory CSR backends — what ``--scc-backend`` offers.  Derived from
#: the registry so the CLI choices, error messages, and
#: :func:`available_backends` can never drift apart.
SCC_BACKENDS = available_backends()

#: Backend used when callers don't choose one.  ``fwbw`` is bit-identical to
#: ``tarjan`` up to label renaming (the differential suite pins this) and an
#: order of magnitude faster on large graphs; see ``docs/performance.md``.
DEFAULT_SCC_BACKEND = "fwbw"


def _scipy_scc_labels(indptr: np.ndarray, heads: np.ndarray) -> np.ndarray:
    # The one sanctioned scipy touchpoint: an *optional* accelerator backend,
    # imported lazily, never on the default path, and failing over to an
    # AlgorithmError when scipy is absent (see scc_labels below).
    from scipy.sparse import csr_array  # reprolint: disable=RL001 - optional backend
    from scipy.sparse.csgraph import connected_components  # reprolint: disable=RL001 - optional backend

    n = indptr.size - 1
    data = np.ones(heads.size, dtype=np.int8)
    matrix = csr_array((data, heads, indptr), shape=(n, n))
    _, labels = connected_components(matrix, directed=True, connection="strong")
    return labels.astype(np.int64)


def scc_labels(
    indptr: np.ndarray,
    heads: np.ndarray,
    backend: str = DEFAULT_SCC_BACKEND,
    block_labels: "np.ndarray | None" = None,
) -> np.ndarray:
    """Label every vertex of a CSR digraph with its SCC id.

    ``backend`` selects the implementation (see module docstring).  Labels
    differ between backends only by renaming; canonicalise with
    :class:`repro.partition.Partition` before comparing.

    ``block_labels`` optionally restricts the computation to refining a
    running partition (the ``fwbw`` and ``multi`` backends skip work that
    cannot split a surviving block; other backends compute the full SCC,
    which is always a valid refinement input).  With a restriction in
    place only the meet ``block_labels ∧ result`` is meaningful — see
    :func:`repro.scc.fwbw.fwbw_scc_labels`.
    """
    spec = backend_spec(backend)
    if spec.streaming:
        raise AlgorithmError(
            f"SCC backend {backend!r} streams disk pair stores, not CSR "
            f"arrays; use space='sublinear' (coarsen_influence_graph) or "
            f"semi_external_scc_labels directly"
        )
    with span("scc_labels", backend=backend, n=int(indptr.size - 1),
              m=int(heads.size)):
        inc("scc.runs")
        if backend == "fwbw":
            labels, stats = fwbw_scc_labels(
                indptr, heads, block_labels=block_labels, return_stats=True
            )
            if stats.frozen_vertices:
                inc("scc.frozen_vertices", stats.frozen_vertices)
            if stats.masked_edges:
                inc("scc.masked_edges", stats.masked_edges)
            return labels
        if backend == "multi":
            # A single CSR is a one-row batch: same kernel, same labels
            # modulo the canonical relabelling all backends need anyway.
            keep = np.ones((1, int(heads.size)), dtype=bool)
            return multi_scc_labels(
                indptr, heads, keep, block_labels=block_labels
            )[0]
        if backend == "tarjan":
            return tarjan_scc_labels(indptr, heads)
        if backend == "kosaraju":
            return kosaraju_scc_labels(indptr, heads)
        try:
            return _scipy_scc_labels(indptr, heads)
        except ImportError as exc:
            raise AlgorithmError(
                "scipy backend requested but scipy missing"
            ) from exc
