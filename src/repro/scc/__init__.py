"""Strongly-connected-component algorithms.

Three independent implementations with one dispatch point:

* ``"tarjan"`` — iterative Tarjan, the default in-memory routine;
* ``"kosaraju"`` — two-pass Kosaraju, an independent cross-check;
* ``"scipy"`` — optional acceleration via :mod:`scipy.sparse.csgraph` when
  scipy is installed (results are label-equivalent; tests verify this).

The semi-external streaming algorithm lives in
:mod:`repro.scc.semi_external` and is dispatched separately because it
operates on disk stores, not CSR arrays.
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..obs import inc, span
from .kosaraju import kosaraju_scc_labels
from .semi_external import SemiExternalStats, semi_external_scc_labels
from .tarjan import tarjan_scc_labels

__all__ = [
    "scc_labels",
    "tarjan_scc_labels",
    "kosaraju_scc_labels",
    "semi_external_scc_labels",
    "SemiExternalStats",
    "SCC_BACKENDS",
]

SCC_BACKENDS = ("tarjan", "kosaraju", "scipy")


def _scipy_scc_labels(indptr: np.ndarray, heads: np.ndarray) -> np.ndarray:
    from scipy.sparse import csr_array
    from scipy.sparse.csgraph import connected_components

    n = indptr.size - 1
    data = np.ones(heads.size, dtype=np.int8)
    matrix = csr_array((data, heads, indptr), shape=(n, n))
    _, labels = connected_components(matrix, directed=True, connection="strong")
    return labels.astype(np.int64)


def scc_labels(
    indptr: np.ndarray, heads: np.ndarray, backend: str = "tarjan"
) -> np.ndarray:
    """Label every vertex of a CSR digraph with its SCC id.

    ``backend`` selects the implementation (see module docstring).  Labels
    differ between backends only by renaming; canonicalise with
    :meth:`repro.partition.Partition.canonical` before comparing.
    """
    with span("scc_labels", backend=backend, n=int(indptr.size - 1),
              m=int(heads.size)):
        inc("scc.runs")
        if backend == "tarjan":
            return tarjan_scc_labels(indptr, heads)
        if backend == "kosaraju":
            return kosaraju_scc_labels(indptr, heads)
        if backend == "scipy":
            try:
                return _scipy_scc_labels(indptr, heads)
            except ImportError as exc:
                raise AlgorithmError(
                    "scipy backend requested but scipy missing"
                ) from exc
        raise AlgorithmError(
            f"unknown SCC backend {backend!r}; choose from {SCC_BACKENDS}"
        )
