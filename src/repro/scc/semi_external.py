"""Semi-external SCC over an on-disk edge stream with O(V) resident state.

This module plays the role of the disk-based SCC algorithm (Laura & Santaroni
[27]) that the sublinear-space implementation (Algorithm 2) invokes on every
sampled live-edge graph.  The contract matches the paper's cost model: the
edge set is never held in memory — only O(V) label arrays plus one streamed
chunk are resident — and every access to the edges is a sequential pass over
the store.

The algorithm is the forward–backward (FB) divide-and-conquer SCC method
adapted to streaming:

1. every active partition of undecided vertices selects a pivot;
2. forward and backward reachability from all pivots (restricted to their own
   partitions) is computed by repeated label-propagation passes over the edge
   stream until fixpoint;
3. ``forward AND backward`` is the pivot's SCC — it is finalised;
4. the remainder of each partition splits into forward-only, backward-only
   and untouched sub-partitions (SCCs never straddle these), and the process
   repeats.

Vertices with no intra-partition edges are finalised as singleton SCCs in
bulk each round, which keeps the round count low on the tree-like fringe of
social networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import inc, span
from ..storage.triplet_store import DEFAULT_CHUNK_EDGES, PairStore

__all__ = ["semi_external_scc_labels", "SemiExternalStats"]


@dataclass
class SemiExternalStats:
    """Observability counters for a semi-external SCC run."""

    rounds: int
    stream_passes: int
    bytes_read: int


def semi_external_scc_labels(
    store: PairStore,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    return_stats: bool = False,
):
    """Compute SCC labels for the graph stored in ``store``.

    Parameters
    ----------
    store:
        A :class:`~repro.storage.triplet_store.PairStore` holding the edges
        of a directed graph on ``store.n`` vertices.
    chunk_edges:
        Edges per streamed chunk; bounds resident memory.
    return_stats:
        Also return a :class:`SemiExternalStats` with round/pass counters.

    Returns
    -------
    numpy.ndarray (and optionally :class:`SemiExternalStats`)
        ``int64`` SCC labels in ``[0, n_components)``.
    """
    with span("scc_semi_external", n=store.n, m=store.m):
        comp, stats = _fb_scc_streaming(store, chunk_edges)
    inc("scc.runs")
    inc("scc.stream_passes", stats.stream_passes)
    if return_stats:
        return comp, stats
    return comp


def _fb_scc_streaming(
    store: PairStore, chunk_edges: int
) -> "tuple[np.ndarray, SemiExternalStats]":
    """The forward–backward streaming recursion behind the public wrapper."""
    n = store.n
    part = np.zeros(n, dtype=np.int64)  # active partition id; -1 once decided
    comp = np.full(n, -1, dtype=np.int64)
    n_comp = 0
    rounds = 0
    passes = 0
    start_bytes = store.bytes_read

    while True:
        active = np.nonzero(part >= 0)[0]
        if active.size == 0:
            break
        rounds += 1

        # Trim phase: a vertex with zero intra-partition in-degree or
        # out-degree cannot sit on a cycle inside its partition, so it is a
        # singleton SCC.  Peeling to fixpoint resolves every tree-, chain-
        # and DAG-like region in (peel-depth) passes — without it the FB
        # recursion would spend one full round per chain vertex.
        while True:
            outdeg = np.zeros(n, dtype=np.int64)
            indeg = np.zeros(n, dtype=np.int64)
            for tails, heads in store.iter_chunks(chunk_edges):
                live = (part[tails] >= 0) & (part[tails] == part[heads])
                if live.any():
                    np.add.at(outdeg, tails[live], 1)
                    np.add.at(indeg, heads[live], 1)
            passes += 1
            active = np.nonzero(part >= 0)[0]
            trim = active[(outdeg[active] == 0) | (indeg[active] == 0)]
            if trim.size == 0:
                break
            comp[trim] = n_comp + np.arange(trim.size, dtype=np.int64)
            n_comp += trim.size
            part[trim] = -1
        active = np.nonzero(part >= 0)[0]
        if active.size == 0:
            break

        # Pivot = first undecided vertex of each partition.
        labels = part[active]
        _, first = np.unique(labels, return_index=True)
        pivots = active[first]

        reach_f = np.zeros(n, dtype=bool)
        reach_b = np.zeros(n, dtype=bool)
        reach_f[pivots] = True
        reach_b[pivots] = True

        # Label propagation to fixpoint, one hop (at least) per stream pass.
        changed = True
        while changed:
            changed = False
            for tails, heads in store.iter_chunks(chunk_edges):
                live = (part[tails] >= 0) & (part[tails] == part[heads])
                if not live.any():
                    continue
                u, v = tails[live], heads[live]
                fwd = reach_f[u] & ~reach_f[v]
                if fwd.any():
                    reach_f[v[fwd]] = True
                    changed = True
                bwd = reach_b[v] & ~reach_b[u]
                if bwd.any():
                    reach_b[u[bwd]] = True
                    changed = True
            passes += 1

        # Finalise each pivot's SCC (forward AND backward within partition).
        in_scc = np.zeros(n, dtype=bool)
        in_scc[active] = reach_f[active] & reach_b[active]
        scc_vertices = np.nonzero(in_scc)[0]
        scc_parts = part[scc_vertices]
        uniq_parts, inverse = np.unique(scc_parts, return_inverse=True)
        comp[scc_vertices] = n_comp + inverse
        n_comp += uniq_parts.size
        part[scc_vertices] = -1

        # Split remainders into (forward-only, backward-only, untouched).
        remaining = np.nonzero(part >= 0)[0]
        if remaining.size:
            state = np.where(
                reach_f[remaining], 1, np.where(reach_b[remaining], 2, 0)
            ).astype(np.int64)
            key = part[remaining] * 3 + state
            _, new_part = np.unique(key, return_inverse=True)
            part[remaining] = new_part

    stats = SemiExternalStats(
        rounds=rounds,
        stream_passes=passes,
        bytes_read=store.bytes_read - start_bytes,
    )
    return comp, stats
