"""Iterative Tarjan strongly-connected-components (Tarjan 1972, ref. [45]).

This is the in-memory SCC routine used by the linear-space implementation
(Algorithm 1).  It runs in O(n + m) time and O(n) auxiliary space, with an
explicit work stack instead of recursion so million-vertex graphs do not hit
Python's recursion limit.

The function operates directly on CSR arrays rather than a graph object so it
can be applied to sampled live-edge graphs without wrapping them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tarjan_scc_labels"]


def tarjan_scc_labels(indptr: np.ndarray, heads: np.ndarray) -> np.ndarray:
    """Label every vertex with its SCC id.

    Parameters
    ----------
    indptr, heads:
        CSR adjacency of a directed graph on ``len(indptr) - 1`` vertices.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of component labels in ``[0, n_components)``.  Labels
        are assigned in reverse-topological completion order (Tarjan's order);
        callers needing canonical labels should relabel via
        :meth:`repro.partition.Partition.canonical`.
    """
    n = int(indptr.size - 1)
    # Python lists are markedly faster than numpy arrays for the per-element
    # access pattern of the DFS inner loop.
    indptr_l = indptr.tolist()
    heads_l = heads.tolist()
    disc = [-1] * n  # discovery index, -1 = unvisited
    low = [0] * n
    comp = [-1] * n
    on_stack = bytearray(n)
    scc_stack: list[int] = []
    counter = 0
    n_comp = 0

    for root in range(n):
        if disc[root] != -1:
            continue
        work = [(root, indptr_l[root])]
        disc[root] = low[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack[root] = 1
        while work:
            v, ptr = work[-1]
            if ptr < indptr_l[v + 1]:
                work[-1] = (v, ptr + 1)
                w = heads_l[ptr]
                if disc[w] == -1:
                    disc[w] = low[w] = counter
                    counter += 1
                    scc_stack.append(w)
                    on_stack[w] = 1
                    work.append((w, indptr_l[w]))
                elif on_stack[w] and disc[w] < low[v]:
                    low[v] = disc[w]
            else:
                work.pop()
                if work:
                    u = work[-1][0]
                    if low[v] < low[u]:
                        low[u] = low[v]
                if low[v] == disc[v]:
                    while True:
                        w = scc_stack.pop()
                        on_stack[w] = 0
                        comp[w] = n_comp
                        if w == v:
                            break
                    n_comp += 1
    return np.asarray(comp, dtype=np.int64)
