"""Shared frontier machinery for the vectorised SCC kernels.

:mod:`repro.scc.fwbw` (one graph per call) and :mod:`repro.scc.multi`
(all ``r`` live-edge rounds per call) play the same decomposition moves —
scratch-dedup frontier BFS, trim peels, coloring rounds, bucket
relabels — over different vertex domains.  This module holds those moves
so the two kernels stay byte-compatible in behaviour: every helper is a
whole-frontier numpy operation, no per-vertex Python anywhere.

All functions take the caller's ``stats`` object duck-typed on the
counter attributes they bump (``bfs_passes``, ``trim_waves``,
``color_passes``); :class:`repro.scc.fwbw.FwbwStats` and
:class:`repro.scc.multi.MultiStats` both qualify.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bucket_ids",
    "color_round",
    "csr_of",
    "decrement_degrees",
    "dedup",
    "frontier_bfs",
    "gather",
    "resolve",
    "trim_peel",
]

# Dense-counting threshold for ``decrement_degrees``: ``np.subtract.at``
# pays a high per-element constant (unbuffered fancy indexing), while a
# ``bincount`` subtraction pays O(domain) but streams at memcpy speed.
# Counting wins once the update set is a non-trivial fraction of the
# domain; tiny late-wave updates stay on ``subtract.at``.
_COUNT_FRACTION = 8


def gather(indptr: np.ndarray, heads: np.ndarray, verts: np.ndarray) -> np.ndarray:
    """All CSR neighbours of ``verts``, concatenated (duplicates included).

    Zero-degree vertices need no masking: ``repeat`` with a zero count
    drops them from the offset expansion on its own.
    """
    starts = indptr[verts]
    counts = indptr[verts + 1] - starts
    ends = counts.cumsum()
    total = int(ends[-1]) if counts.size else 0
    if total == 0:
        return np.empty(0, dtype=heads.dtype)
    offsets = (starts - (ends - counts)).repeat(counts)
    return heads[np.arange(total, dtype=counts.dtype) + offsets]


def csr_of(tails: np.ndarray, heads: np.ndarray, n: int,
           dtype=np.int64) -> np.ndarray:
    """``indptr`` for an edge list already sorted by tail."""
    indptr = np.zeros(n + 1, dtype=dtype)
    indptr[1:] = np.cumsum(np.bincount(tails, minlength=n))
    return indptr


def resolve(ids: "np.ndarray | None", verts: np.ndarray) -> np.ndarray:
    """Map compact-domain vertices to original ids (``None`` = identity).

    Before the first domain compaction the mapping is the identity, so the
    kernels pass ``None`` and skip a full gather on every trim wave of the
    heaviest round.
    """
    return verts if ids is None else ids[verts]


def dedup(verts: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Distinct values of ``verts`` via a scratch write-then-readback pass —
    O(len) with no sort or hash, the frontier dedup the BFS lives on."""
    pos = np.arange(verts.size, dtype=scratch.dtype)
    scratch[verts] = pos
    return verts[scratch[verts] == pos]


def bucket_ids(values: np.ndarray, domain: int) -> "tuple[np.ndarray, int]":
    """Dense ids (arbitrary but consistent order) for ``values`` < domain."""
    mark = np.zeros(domain, dtype=np.int64)
    mark[values] = 1
    dense = np.cumsum(mark) - 1
    return dense[values], int(dense[-1]) + 1 if values.size else 0


def decrement_degrees(deg: np.ndarray, targets: np.ndarray, cur_n: int) -> None:
    """``deg[t] -= 1`` for every occurrence of ``t`` in ``targets``.

    Large update sets are counted densely (one ``bincount`` at memcpy
    speed); small ones use ``np.subtract.at`` so late trim waves don't
    pay O(domain) each.  Exact either way.
    """
    if targets.size * _COUNT_FRACTION >= cur_n:
        deg -= np.bincount(targets, minlength=cur_n)
    else:
        np.subtract.at(deg, targets, 1)


def frontier_bfs(
    indptr: np.ndarray,
    heads: np.ndarray,
    seeds: np.ndarray,
    part: np.ndarray,
    scratch: np.ndarray,
    stats,
) -> np.ndarray:
    """Reachability from ``seeds`` over live edges, never through decided
    vertices (``part < 0``) — trimmed vertices still sit in the CSR arrays
    but are not legal path interior for the induced-subgraph semantics.

    Decided vertices are pre-marked reached so the per-pass frontier filter
    is a single mask: they can never enter a frontier, which implements the
    no-decided-interior rule.  Callers must therefore only read ``reach``
    entries of undecided vertices (every call site restricts to
    ``part >= 0``)."""
    reach = part < 0
    reach[seeds] = True
    frontier = seeds
    while frontier.size:
        stats.bfs_passes += 1
        nbrs = gather(indptr, heads, frontier)
        if nbrs.size == 0:
            break
        nbrs = nbrs[~reach[nbrs]]
        if nbrs.size == 0:
            break
        frontier = dedup(nbrs, scratch)
        reach[frontier] = True
    return reach


def trim_peel(
    fip: np.ndarray,
    fh: np.ndarray,
    rip: np.ndarray,
    rh: np.ndarray,
    part: np.ndarray,
    comp: np.ndarray,
    ids: "np.ndarray | None",
    active: np.ndarray,
    n_comp: int,
    scratch: np.ndarray,
    stats,
) -> int:
    """Frontier peel of zero-in/out-degree vertices (singleton SCCs).

    Mutates ``part`` (decided vertices go to -1) and ``comp`` in place;
    returns the updated component counter.  Resolves the whole tree/DAG
    fringe of a live-edge sample in O(n + m) total work.

    Both orientations are merged into one *combined* adjacency before the
    wave loop — out-edges store their head as-is, in-edges store their tail
    biased by ``cur_n`` — so each wave pays a single neighbour gather
    instead of two, and the candidate set needs no concatenation.
    """
    cur_n = part.size
    outdeg = np.diff(fip)
    indeg = np.diff(rip)
    if active.size == cur_n:
        wave = np.flatnonzero((outdeg == 0) | (indeg == 0))
    else:
        wave = active[(outdeg[active] == 0) | (indeg[active] == 0)]
    if wave.size == 0:
        return n_comp

    # Combined both-orientation adjacency, built once per call.  The bias
    # needs headroom for 2 * cur_n, so widen when the edge dtype is too
    # narrow for it (the same overflow bound the callers' int32 gate uses).
    enc_dtype = (fh.dtype if 2 * cur_n < np.iinfo(fh.dtype).max
                 else np.int64)
    cip = np.zeros(cur_n + 1, dtype=np.int64)
    np.cumsum(outdeg + indeg, out=cip[1:])
    pos = np.arange(fh.size, dtype=np.int64)
    pos += np.repeat(cip[:-1] - fip[:-1], outdeg)
    enc = np.empty(int(fh.size) + int(rh.size), dtype=enc_dtype)
    enc[pos] = fh
    pos = np.arange(rh.size, dtype=np.int64)
    pos += np.repeat(cip[:-1] + outdeg - rip[:-1], indeg)
    enc[pos] = rh.astype(enc_dtype, copy=False) + cur_n
    del pos

    while wave.size:
        stats.trim_waves += 1
        comp[resolve(ids, wave)] = n_comp + np.arange(wave.size,
                                                      dtype=np.int64)
        n_comp += int(wave.size)
        part[wave] = -1
        nb = gather(cip, enc, wave)
        rev = nb >= cur_n
        nb[rev] -= cur_n
        decrement_degrees(indeg, nb[~rev], cur_n)  # heads of out-edges
        decrement_degrees(outdeg, nb[rev], cur_n)  # tails of in-edges
        cand = nb[part[nb] >= 0]
        if cand.size:
            cand = dedup(cand, scratch)
        wave = cand[(outdeg[cand] == 0) | (indeg[cand] == 0)]
    return n_comp


def color_round(
    n: int,
    ft: np.ndarray,
    fh: np.ndarray,
    rt: np.ndarray,
    rh: np.ndarray,
    part: np.ndarray,
    comp: np.ndarray,
    ids: "np.ndarray | None",
    n_comp: int,
    scratch: np.ndarray,
    stats,
) -> "tuple[int, int]":
    """One coloring round: resolve every color root's SCC simultaneously.

    Forward max-id propagation runs to fixpoint pull-style — each pass is a
    single segmented ``np.maximum.reduceat`` over the reverse CSR.  A vertex
    that keeps its own id is a *root*; a backward BFS from all roots over
    same-color edges collects each root's SCC exactly (any vertex that
    reaches its color root is also reached by it, by color maximality).
    Returns the updated ``(n_comp, n_parts)``.
    """
    # Trim/retirement may have decided vertices since the round's edge
    # refresh; drop their edges before propagating.
    live = (part[ft] >= 0) & (part[fh] >= 0)
    ft, fh = ft[live], fh[live]
    rlive = (part[rt] >= 0) & (part[rh] >= 0)
    rt, rh = rt[rlive], rh[rlive]

    color = np.arange(n, dtype=part.dtype)
    rip = csr_of(rt, rh, n, dtype=part.dtype)
    nzv = np.flatnonzero(np.diff(rip) > 0)  # vertices with live in-edges
    starts = rip[nzv]
    while nzv.size:
        stats.color_passes += 1
        seg_max = np.maximum.reduceat(color[rh], starts)
        upd = seg_max > color[nzv]
        if not upd.any():
            break
        color[nzv[upd]] = seg_max[upd]

    active = np.flatnonzero(part >= 0)
    roots = active[color[active] == active]

    # Backward BFS from all roots along same-color edges = each root's SCC.
    same = color[rt] == color[rh]
    rt2, rh2 = rt[same], rh[same]
    reach = frontier_bfs(csr_of(rt2, rh2, n, dtype=part.dtype), rh2, roots,
                         part, scratch, stats)
    # ``reach`` pre-marks decided vertices (see frontier_bfs); membership is
    # only meaningful on the undecided domain.
    members = np.flatnonzero(reach & (part >= 0))
    new_id, n_new = bucket_ids(color[members], n)
    comp[resolve(ids, members)] = n_comp + new_id
    n_comp += n_new
    part[members] = -1

    # Remainders regroup by color class (color classes never straddle
    # parts, and SCCs never straddle color classes).
    remaining = np.flatnonzero(part >= 0)
    if remaining.size:
        new_part, n_parts = bucket_ids(color[remaining], n)
        part[remaining] = new_part
    else:
        n_parts = 0
    return n_comp, n_parts
