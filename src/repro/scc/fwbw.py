"""Vectorised forward–backward (FW-BW) SCC with trimming, a coloring phase
for fragmented remainders, and optional block-restricted refinement.

The divide-and-conquer FW-BW method (Fleischer, Hendrickson & Pinar) picks a
pivot, computes its forward and backward reachable sets, finalises their
intersection as one SCC, and recurses on the three remainder sets — which is
ideal for an array runtime because every step is a whole-frontier operation:

* **trim** — vertices with zero in- or out-degree inside their part are
  singleton SCCs; a frontier peel resolves the whole tree/DAG fringe of a
  live-edge sample in O(n + m) total work;
* **multi-source frontier BFS** — one pivot per active part, all parts
  advanced simultaneously; frontier expansion is a single ``indptr``-diff /
  ``np.repeat`` gather plus an O(1)-per-element scratch dedup, no
  per-vertex Python;
* **three-way split** — the remainder of each part splits into
  forward-only, backward-only and untouched sub-parts (SCCs never straddle
  these), implemented as one bucket relabel;
* **domain compaction** — whenever the active set halves, the surviving
  vertices are renumbered into a dense domain (one monotone gather, so the
  edge lists stay sorted), which keeps every later round's cost
  proportional to the live subgraph instead of the original ``n``.  The
  first round typically resolves the giant SCC and trims the fringe, after
  which hundreds of cleanup rounds may each touch only a few hundred
  vertices.

The explicit work queue of the classic recursion is the ``part`` label
array: every active part is an outstanding work item, and one pass of the
round loop services all of them at once.  The whole-frontier primitives
(gather, scratch dedup, trim peel, coloring round) live in the shared
:mod:`repro.scc._frontier` module; :mod:`repro.scc.multi` drives the same
moves over the disjoint union of all ``r`` live-edge rounds at once.

Pure FW-BW degenerates when a graph decomposes into *many* small SCCs (the
reciprocal-edge clusters of social-network samples): each round only peels a
few components per part and the decomposition tree gets deep.  Following the
Multistep design of Slota, Rajamanickam & Madduri (IPDPS'14), once the
decomposition has fragmented past a threshold the kernel switches to a
**coloring** round: propagate the maximum vertex id forward to fixpoint
(pull-based ``np.maximum.reduceat`` over the reverse CSR), take every vertex
that kept its own id as a root, and resolve every root's SCC simultaneously
with one backward BFS restricted to its color class.  Thousands of SCCs
finalise per round instead of O(parts).

Block-restricted refinement (``block_labels``)
----------------------------------------------
When the caller supplies the running r-robust partition, the kernel prunes
work that cannot refine it further.  Vertices in singleton blocks are
*frozen*: the meet can never split or merge them again, so their exact SCC
label is irrelevant — but they are kept as path conduits, because
reachability between two same-block vertices may legally route through
other blocks.  (A naive edge mask ``label[tail] == label[head]`` is *not*
sound for directed graphs for exactly that reason; see
``docs/performance.md`` for a three-vertex counterexample.)

The sound pruning rule: a part of the decomposition is **retired** as soon
as no surviving block has two non-frozen vertices inside it.  Parts are
reachability-closed, so an SCC can never straddle two parts — a part
without such a pair can only produce meet-singletons, and every vertex in
it is finalised with a fresh unique label without scanning its edges again.
Retired-part edge counts are reported as ``masked_edges``; the per-round
live edge working set shrinks monotonically as the partition refines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ._frontier import (
    bucket_ids,
    color_round,
    csr_of,
    frontier_bfs,
    resolve,
    trim_peel,
)

__all__ = ["fwbw_scc_labels", "FwbwStats"]

# Switch from pivot rounds to coloring rounds once the decomposition has
# fragmented (many active parts) or stopped collapsing quickly (round
# count): coloring finalises one SCC per color root instead of one per
# part.  The exact values are uncritical: both phases are exact, the
# thresholds only trade constants.
_COLOR_PARTS = 32
_COLOR_ROUNDS = 3


@dataclass
class FwbwStats:
    """Work counters for one FW-BW run (observability + regression tests)."""

    rounds: int = 0
    bfs_passes: int = 0
    color_passes: int = 0
    trim_waves: int = 0
    processed_edges: int = 0  # live edges entering each round, summed
    masked_edges: int = 0  # live edges dropped by block-restricted retirement
    retired_vertices: int = 0  # vertices finalised by retirement
    frozen_vertices: int = 0  # singleton-block vertices in the restriction


def fwbw_scc_labels(
    indptr: np.ndarray,
    heads: np.ndarray,
    block_labels: "np.ndarray | None" = None,
    return_stats: bool = False,
):
    """Label every vertex of a CSR digraph with its SCC id, vectorised.

    Parameters
    ----------
    indptr, heads:
        CSR adjacency of a directed graph on ``len(indptr) - 1`` vertices.
    block_labels:
        Optional label array of the running r-robust partition.  When given,
        the kernel retires decomposition parts that can no longer refine any
        non-singleton block (see the module docstring); the labels returned
        for retired vertices are fresh singletons, which is exact for the
        subsequent meet because every retired vertex is provably a meet
        singleton.  **Only the meet ``block_labels ∧ result`` is meaningful
        in this mode** — raw labels of retired vertices are arbitrary.
    return_stats:
        Also return a :class:`FwbwStats` with round/pass/work counters.

    Returns
    -------
    numpy.ndarray (and optionally :class:`FwbwStats`)
        ``int64`` SCC labels in ``[0, n_components)``.  Label numbering is
        implementation-defined; canonicalise via
        :class:`repro.partition.Partition` before comparing across backends.
    """
    n = int(indptr.size) - 1
    stats = FwbwStats()
    comp = np.full(max(n, 0), -1, dtype=np.int64)
    if n <= 0:
        return (comp, stats) if return_stats else comp

    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    # A 32-bit index domain halves the memory traffic of every gather and
    # edge filter, which wins ~2x once the working set spills out of
    # last-level cache; below that, numpy's index-to-intp conversion makes
    # int32 a net loss, so small graphs stay on the native width.
    m_in = int(indptr[-1])
    imax = np.iinfo(np.int32).max
    use32 = n + m_in >= 256_000 and n < imax and m_in < imax
    idx = np.int32 if use32 else np.int64
    heads = np.ascontiguousarray(heads, dtype=idx)
    tails = np.repeat(np.arange(n, dtype=idx), np.diff(indptr))
    keep = tails != heads  # self-loops never affect SCC membership
    if keep.all():
        ft, fh = tails, heads
    else:
        ft, fh = tails[keep], heads[keep]
    # Reverse orientation, sorted by head: the same boolean filters keep
    # both edge lists CSR-ordered for the rest of the run, so per-round CSR
    # rebuilds are a bincount + cumsum, never a sort.  Within-bucket order
    # is irrelevant for a CSR, so the default (unstable, faster) sort is
    # fine — this is the only sort in the whole run.
    order = np.argsort(fh)
    rt, rh = fh[order], ft[order]

    frozen = None
    block_stride = 0
    if block_labels is not None:
        block_labels = np.ascontiguousarray(block_labels, dtype=np.int64)
        if block_labels.size != n:
            raise ValueError("block_labels must have one entry per vertex")
        sizes = np.bincount(block_labels)
        frozen = sizes[block_labels] == 1
        block_stride = int(block_labels.max()) + 1
        stats.frozen_vertices = int(frozen.sum())

    cur_n = n
    ids = None  # compact-domain vertex -> original; None = identity
    part = np.zeros(n, dtype=idx)  # active part id; -1 once decided
    scratch = np.empty(n, dtype=idx)  # dedup workspace, reused all run
    n_comp = 0
    n_parts = 1  # active part ids are always dense in [0, n_parts)

    while True:
        # Refresh the live edge lists: an edge survives while both endpoints
        # are undecided and in the same part.  The lists only ever shrink.
        # (Round one is a no-op — everything starts live in part 0.)
        if stats.rounds:
            pf, ph = part[ft], part[fh]
            live = (pf >= 0) & (pf == ph)
            ft, fh = ft[live], fh[live]
            pf, ph = part[rt], part[rh]
            rlive = (ph >= 0) & (ph == pf)
            rt, rh = rt[rlive], rh[rlive]

        active = np.flatnonzero(part >= 0)
        if active.size == 0:
            break

        # ---- domain compaction --------------------------------------------
        # Renumbering is monotone over the sorted ``active``, so both edge
        # lists stay CSR-ordered; amortised O(n + m) over the whole run.
        if active.size * 2 < cur_n:
            old2new = scratch  # safe: fully rewritten before next dedup use
            old2new[active] = np.arange(active.size, dtype=idx)
            ft, fh = old2new[ft], old2new[fh]
            rt, rh = old2new[rt], old2new[rh]
            ids = resolve(ids, active)
            part = part[active]
            if frozen is not None:
                frozen = frozen[active]
                block_labels = block_labels[active]
            cur_n = active.size
            scratch = np.empty(cur_n, dtype=idx)
            active = np.arange(cur_n, dtype=np.int64)

        stats.rounds += 1
        stats.processed_edges += int(ft.size)

        fip = csr_of(ft, fh, cur_n, dtype=idx)
        rip = csr_of(rt, rh, cur_n, dtype=idx)

        # ---- trim: frontier peel of zero-in/out-degree vertices ----------
        n_comp = trim_peel(fip, fh, rip, rh, part, comp, ids, active, n_comp,
                           scratch, stats)
        active = np.flatnonzero(part >= 0)
        if active.size == 0:
            break

        # ---- block-restricted retirement ---------------------------------
        # The key scan only pays for itself once frozen vertices dominate
        # the active set — the regime where whole parts hold no splittable
        # block and retire en masse.  Below that threshold nearly every
        # part is still good and the scan is pure overhead, so skip it.
        if frozen is not None and (
            (nonfrozen := active[~frozen[active]]).size * 2 <= active.size
        ):
            if nonfrozen.size:
                key = (part[nonfrozen].astype(np.int64) * block_stride
                       + block_labels[nonfrozen])
                uniq, counts = np.unique(key, return_counts=True)
                good = np.unique(uniq[counts >= 2] // block_stride)
            else:
                good = np.empty(0, dtype=np.int64)
            retire = active[~np.isin(part[active], good)]
            if retire.size:
                flag = np.zeros(cur_n, dtype=bool)
                flag[retire] = True
                stats.masked_edges += int((flag[ft] & (part[fh] >= 0)).sum())
                stats.retired_vertices += int(retire.size)
                comp[resolve(ids, retire)] = n_comp + np.arange(
                    retire.size, dtype=np.int64
                )
                n_comp += retire.size
                part[retire] = -1
                active = np.flatnonzero(part >= 0)
                if active.size == 0:
                    break

        if n_parts >= _COLOR_PARTS or stats.rounds > _COLOR_ROUNDS:
            n_comp, n_parts = color_round(
                cur_n, ft, fh, rt, rh, part, comp, ids, n_comp, scratch, stats
            )
            continue

        # ---- pivots: one per active part, preferring non-frozen ----------
        # Bucket writes, no sort: any representative per part will do, and
        # non-frozen writes last so they win where available.
        pivot_of = np.full(n_parts, -1, dtype=np.int64)
        pivot_of[part[active]] = active
        if frozen is not None:
            nonfrozen = active[~frozen[active]]
            pivot_of[part[nonfrozen]] = nonfrozen
        pivots = pivot_of[pivot_of >= 0]

        # ---- forward/backward multi-source frontier BFS ------------------
        reach_f = frontier_bfs(fip, fh, pivots, part, scratch, stats)
        reach_b = frontier_bfs(rip, rh, pivots, part, scratch, stats)

        # ---- finalise every pivot's SCC (F ∩ B, per part) ----------------
        in_scc = np.zeros(cur_n, dtype=bool)
        in_scc[active] = reach_f[active] & reach_b[active]
        members = np.flatnonzero(in_scc)
        new_id, n_new = bucket_ids(part[members], n_parts)
        comp[resolve(ids, members)] = n_comp + new_id
        n_comp += n_new
        part[members] = -1

        # ---- split remainders into (F-only, B-only, untouched) -----------
        remaining = np.flatnonzero(part >= 0)
        if remaining.size:
            state = np.where(
                reach_f[remaining], 1, np.where(reach_b[remaining], 2, 0)
            ).astype(np.int64)
            new_part, n_parts = bucket_ids(
                part[remaining].astype(np.int64) * 3 + state, 3 * n_parts
            )
            part[remaining] = new_part
        else:
            n_parts = 0

    return (comp, stats) if return_stats else comp
