"""Kosaraju's two-pass SCC algorithm.

Kept alongside Tarjan as an independent implementation: property tests
cross-validate the two on random graphs, and the ablation benchmark
(``bench_ablation_scc``) compares their constants.  Iterative, O(n + m).
"""

from __future__ import annotations

import numpy as np

__all__ = ["kosaraju_scc_labels"]


def _reverse_csr(indptr: np.ndarray, heads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Transpose a CSR adjacency (counting sort on heads)."""
    n = indptr.size - 1
    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    order = np.argsort(heads, kind="stable")
    rev_indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(rev_indptr, heads + 1, 1)
    np.cumsum(rev_indptr, out=rev_indptr)
    return rev_indptr, tails[order]


def kosaraju_scc_labels(indptr: np.ndarray, heads: np.ndarray) -> np.ndarray:
    """Label every vertex with its SCC id (Kosaraju's algorithm).

    Pass 1: iterative DFS on G recording finish order.  Pass 2: DFS on the
    transpose in reverse finish order; each tree is one SCC.
    """
    n = int(indptr.size - 1)
    indptr_l = indptr.tolist()
    heads_l = heads.tolist()

    # Pass 1 — finish order via iterative DFS.
    visited = bytearray(n)
    finish: list[int] = []
    for root in range(n):
        if visited[root]:
            continue
        visited[root] = 1
        stack = [(root, indptr_l[root])]
        while stack:
            v, ptr = stack[-1]
            if ptr < indptr_l[v + 1]:
                stack[-1] = (v, ptr + 1)
                w = heads_l[ptr]
                if not visited[w]:
                    visited[w] = 1
                    stack.append((w, indptr_l[w]))
            else:
                stack.pop()
                finish.append(v)

    # Pass 2 — collect trees on the transpose.
    rev_indptr, rev_heads = _reverse_csr(indptr, heads)
    rev_indptr_l = rev_indptr.tolist()
    rev_heads_l = rev_heads.tolist()
    comp = [-1] * n
    n_comp = 0
    for v in reversed(finish):
        if comp[v] != -1:
            continue
        comp[v] = n_comp
        stack = [v]
        while stack:
            u = stack.pop()
            for ptr in range(rev_indptr_l[u], rev_indptr_l[u + 1]):
                w = rev_heads_l[ptr]
                if comp[w] == -1:
                    comp[w] = n_comp
                    stack.append(w)
        n_comp += 1
    return np.asarray(comp, dtype=np.int64)
