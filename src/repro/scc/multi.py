"""Batched multi-sample FW-BW: all ``r`` live-edge rounds in one pass.

Coarsening (Algorithm 1) computes ``r`` SCC decompositions of near-identical
live-edge subgraphs of one base graph.  Run per sample, each decomposition
pays the same fixed costs — CSR materialisation, hundreds of tiny cleanup
rounds, per-call numpy dispatch — on a problem far smaller than the
machine's vector appetite.  This kernel instead runs **one** decomposition
over the disjoint union of all ``r`` masked copies of the base graph:

* **flat domain** — vertex ``v`` of round ``i`` becomes ``i * n + v``.  The
  ``(r, m)`` keep-mask matrix turns into flat edge lists with a single
  row-major ``np.nonzero`` — already sorted by (round, CSR position), so
  the union's forward CSR needs no sort at all and the whole run performs
  exactly one ``argsort`` (the reverse orientation), same as one
  :mod:`~repro.scc.fwbw` call on one sample;
* **rounds never interact** — the union graph is ``r`` disconnected
  copies, so its SCCs are *exactly* the per-round SCCs, and every
  whole-frontier move (trim peel, multi-source BFS, coloring round)
  serves every still-active round per adjacency scan.  The ``part``
  array starts as the round index, so parts never straddle rounds and
  the first pivot sweep advances all rounds simultaneously;
* **per-round early retirement** — a round whose copies are all decided
  simply vanishes at the next domain compaction; the shared frontier,
  label and scratch buffers shrink to the surviving rounds.  The
  ``scc.multi.*`` counters report batch occupancy and retirement.

Equivalence: per-round labels are the union's global component ids
restricted to that round's copies — a bijective relabelling of the
per-sample kernel's output, so
:class:`repro.partition.Partition` canonicalisation makes the r-robust
meet fold **bit-for-bit identical** to the per-sample path (the
differential suite pins this, including the coarse graph digest).

Block-restricted refinement (``block_labels``) tiles the running
partition across the copies.  Retirement uses the same sound rule as
:mod:`~repro.scc.fwbw` — a part retires when no surviving block has two
non-frozen vertices inside it — and because parts never straddle rounds,
the union rule is exactly the per-round rule.  Callers fold rounds in
chunks (:func:`multi_chunk_cap` rounds, wider on smaller graphs) so later
chunks see the meet of earlier ones, trading batch width for pruning
depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import inc, span
from ._frontier import (
    bucket_ids,
    color_round,
    csr_of,
    frontier_bfs,
    resolve,
    trim_peel,
)

__all__ = [
    "multi_scc_labels",
    "multi_chunk_cap",
    "MultiStats",
    "MULTI_REFINE_CHUNK",
]

# Same phase thresholds as fwbw, with the part threshold scaled by the
# number of still-live rounds so per-round pacing matches the per-sample
# kernel (r fresh rounds start with r parts, not one).
_COLOR_PARTS = 32
_COLOR_ROUNDS = 3

#: Minimum rounds per kernel call when a caller folds the batch into a
#: running partition.  Refining folds refresh the block restriction
#: between chunks; full folds use the chunk boundary to take the same
#: finest-partition early exit as the per-sample loop.  Both extremes are
#: exact; 4 keeps most of the amortisation while checking the fold state
#: often enough to stop (or prune) early.
MULTI_REFINE_CHUNK = 4

# Union-edge budget for one fold chunk.  Chunk width trades amortisation
# (fewer kernel setups, whole-frontier moves shared by more rounds)
# against cache locality and fold-state checks: past roughly this many
# union edges the wider domain stops fitting hot caches and misaligned
# trim/BFS waves across rounds start to dominate.  Measured knee on the
# ablation tiers; see docs/performance.md.
_CHUNK_EDGE_BUDGET = 48_000


def multi_chunk_cap(m: int) -> int:
    """Fold-chunk width (rounds per kernel call) for a base graph of ``m``
    edges.

    Small graphs are exactly where batching pays — per-call fixed costs
    dominate and the union still fits in cache — so the cap grows as the
    graph shrinks: ``max(MULTI_REFINE_CHUNK, _CHUNK_EDGE_BUDGET // m)``.
    Chunking never changes results (the fold is exact at any width; the
    differential suite pins bit-for-bit equality), only the speed and how
    often the fold can early-exit or refresh its block restriction.
    """
    return max(MULTI_REFINE_CHUNK, _CHUNK_EDGE_BUDGET // max(m, 1))


@dataclass
class MultiStats:
    """Work counters for one batched run (observability + regression tests).

    ``occupancy`` sums the number of still-live sample rounds entering each
    kernel round — ``occupancy / (rounds * samples)`` is the mean batch
    occupancy, the amortisation the kernel exists for.  ``retired_rounds``
    counts sample rounds that became fully decided before the final kernel
    round (early retirement); ``compactions`` counts domain compactions
    (shared-buffer reallocations), so ``rounds - compactions`` kernel
    rounds reused the frontier/scratch buffers as-is.
    """

    samples: int = 0
    rounds: int = 0
    bfs_passes: int = 0
    color_passes: int = 0
    trim_waves: int = 0
    processed_edges: int = 0  # live union edges entering each round, summed
    masked_edges: int = 0  # union edges dropped by block-restricted retirement
    retired_vertices: int = 0  # vertex copies finalised by retirement
    frozen_vertices: int = 0  # frozen copies (singleton blocks × samples)
    occupancy: int = 0  # live sample rounds entering each kernel round, summed
    retired_rounds: int = 0  # sample rounds fully decided before the last round
    compactions: int = 0  # shared-buffer reallocations (domain compactions)


def multi_scc_labels(
    indptr: np.ndarray,
    heads: np.ndarray,
    keep: np.ndarray,
    block_labels: "np.ndarray | None" = None,
    return_stats: bool = False,
):
    """SCC labels of every masked copy of a CSR digraph, in one pass.

    Parameters
    ----------
    indptr, heads:
        CSR adjacency of the base directed graph on ``len(indptr) - 1``
        vertices.
    keep:
        ``(r, m)`` boolean matrix; row ``i`` selects the live edges of
        sample round ``i`` (CSR edge order, exactly the mask produced by
        :func:`repro.diffusion.live_edge.sample_live_edge_mask` or
        maintained by :class:`repro.core.dynamic.DynamicCoarsener`).
    block_labels:
        Optional label array of the running r-robust partition, applied to
        **every** round of the batch (see the module docstring).  As with
        the per-sample kernel, only the meet ``block_labels ∧ row`` is
        meaningful per row in this mode.
    return_stats:
        Also return a :class:`MultiStats`.

    Returns
    -------
    numpy.ndarray (and optionally :class:`MultiStats`)
        ``(r, n)`` ``int64`` label matrix; row ``i`` labels the SCCs of
        sample ``i``.  Labels are globally unique across rounds and
        otherwise implementation-defined — canonicalise each row via
        :class:`repro.partition.Partition` before comparing across
        backends.
    """
    n = int(indptr.size) - 1
    keep = np.ascontiguousarray(keep, dtype=bool)
    if keep.ndim != 2:
        raise ValueError("keep must be an (r, m) boolean matrix")
    r = int(keep.shape[0])
    if keep.shape[1] != int(heads.size):
        raise ValueError("keep must have one column per CSR edge")
    stats = MultiStats(samples=r)
    if n <= 0 or r == 0:
        labels = np.full((r, max(n, 0)), -1, dtype=np.int64)
        return (labels, stats) if return_stats else labels

    with span("scc_multi", samples=r, n=n, m=int(heads.size)):
        comp = _decompose_union(indptr, heads, keep, block_labels, stats)
    inc("scc.multi.runs")
    inc("scc.multi.samples", r)
    inc("scc.multi.rounds", stats.rounds)
    inc("scc.multi.occupancy", stats.occupancy)
    if stats.retired_rounds:
        inc("scc.multi.retired_rounds", stats.retired_rounds)
    if stats.rounds > stats.compactions:
        inc("scc.multi.buffer_reuse", stats.rounds - stats.compactions)
    if stats.frozen_vertices:
        inc("scc.frozen_vertices", stats.frozen_vertices)
    if stats.masked_edges:
        inc("scc.masked_edges", stats.masked_edges)
    labels = comp.reshape(r, n)
    return (labels, stats) if return_stats else labels


def _decompose_union(
    indptr: np.ndarray,
    heads: np.ndarray,
    keep: np.ndarray,
    block_labels: "np.ndarray | None",
    stats: MultiStats,
) -> np.ndarray:
    """FW-BW over the disjoint union of the masked copies (flat labels)."""
    n = int(indptr.size) - 1
    r = int(keep.shape[0])
    big_n = r * n
    total_kept = int(np.count_nonzero(keep))
    # The same size-gated index discipline as fwbw, applied to the *union*
    # sizes: a batch of small samples routinely crosses the 32-bit win
    # threshold that each sample alone would miss.
    imax = np.iinfo(np.int32).max
    use32 = big_n + total_kept >= 256_000 and big_n < imax and total_kept < imax
    idx = np.int32 if use32 else np.int64

    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    base_tails = np.repeat(np.arange(n, dtype=idx), np.diff(indptr))
    base_heads = np.ascontiguousarray(heads, dtype=idx)

    # Row-major nonzero: flat edges arrive sorted by (round, CSR position)
    # = sorted by flat tail — the union's forward CSR order, for free.
    ri, ei = np.nonzero(keep)
    t, h = base_tails[ei], base_heads[ei]
    loop = t != h  # self-loops never affect SCC membership
    if not loop.all():
        ri, t, h = ri[loop], t[loop], h[loop]
    # Flat ids stay in the gated index dtype end to end: ri * n < big_n by
    # construction, so the narrow offset cannot overflow.
    offset = ri.astype(idx, copy=False)
    offset *= n
    ft = offset + t
    fh = offset + h
    del ri, ei, t, h, offset
    # Reverse orientation — the only sort of the whole batched run.
    order = np.argsort(fh)
    rt, rh = fh[order], ft[order]
    del order

    frozen = None
    blocks = None
    block_stride = 0
    if block_labels is not None:
        block_labels = np.ascontiguousarray(block_labels, dtype=np.int64)
        if block_labels.size != n:
            raise ValueError("block_labels must have one entry per vertex")
        sizes = np.bincount(block_labels)
        frozen_base = sizes[block_labels] == 1
        frozen = np.tile(frozen_base, r)
        blocks = np.tile(block_labels, r)
        block_stride = int(block_labels.max()) + 1
        stats.frozen_vertices = int(frozen_base.sum()) * r

    # Component ids live in the gated dtype too (they are < big_n); the
    # output contract stays int64 via one astype on return.
    comp = np.full(big_n, -1, dtype=idx)
    cur_n = big_n
    ids = None  # compact-domain vertex -> flat; None = identity
    # One part per round: parts only ever split, so no part straddles two
    # rounds and the first pivot sweep already runs one BFS source per
    # still-undecided round.
    part = np.repeat(np.arange(r, dtype=idx), n)
    scratch = np.empty(big_n, dtype=idx)
    n_comp = 0
    n_parts = r
    prev_live = r

    while True:
        # Refresh the live edge lists: an edge survives while both endpoints
        # are undecided and in the same part.  The lists only ever shrink.
        # (Round one is a no-op — every round starts live in its own part.)
        if stats.rounds:
            pf, ph = part[ft], part[fh]
            live = (pf >= 0) & (pf == ph)
            ft, fh = ft[live], fh[live]
            pf, ph = part[rt], part[rh]
            rlive = (ph >= 0) & (ph == pf)
            rt, rh = rt[rlive], rh[rlive]
            active = np.flatnonzero(part >= 0)
            if active.size == 0:
                break
        else:
            active = np.arange(big_n, dtype=np.int64)

        # ---- domain compaction -------------------------------------------
        # Monotone renumbering over the sorted ``active`` keeps both edge
        # lists CSR-ordered; fully-decided rounds vanish here, shrinking
        # every shared buffer to the surviving rounds.
        if active.size * 2 < cur_n:
            old2new = scratch  # safe: fully rewritten before next dedup use
            old2new[active] = np.arange(active.size, dtype=idx)
            ft, fh = old2new[ft], old2new[fh]
            rt, rh = old2new[rt], old2new[rh]
            ids = resolve(ids, active)
            part = part[active]
            if frozen is not None:
                frozen = frozen[active]
                blocks = blocks[active]
            cur_n = active.size
            scratch = np.empty(cur_n, dtype=idx)
            active = np.arange(cur_n, dtype=np.int64)
            stats.compactions += 1

        # Batch occupancy: how many sample rounds are still live this round.
        # ``ids`` is ascending (compaction preserves order), so the per-round
        # segments fall out of one searchsorted over the round boundaries;
        # a fully-live identity domain (round one) is trivially all rounds.
        if ids is None and active.size == cur_n:
            live_rounds = r
        else:
            flat_active = resolve(ids, active)
            bounds = np.searchsorted(flat_active,
                                     np.arange(1, r, dtype=np.int64) * n)
            segments = np.diff(np.concatenate(
                ([0], bounds, [flat_active.size])
            ))
            live_rounds = int(np.count_nonzero(segments))
        stats.occupancy += live_rounds
        if live_rounds < prev_live:
            stats.retired_rounds += prev_live - live_rounds
            prev_live = live_rounds

        stats.rounds += 1
        stats.processed_edges += int(ft.size)

        fip = csr_of(ft, fh, cur_n, dtype=idx)
        rip = csr_of(rt, rh, cur_n, dtype=idx)

        # ---- trim: frontier peel of zero-in/out-degree vertices ----------
        n_comp = trim_peel(fip, fh, rip, rh, part, comp, ids, active, n_comp,
                           scratch, stats)
        active = np.flatnonzero(part >= 0)
        if active.size == 0:
            break

        # ---- block-restricted retirement ---------------------------------
        # Same sound rule and same cost gate as fwbw; parts never straddle
        # rounds, so the union-level scan is exactly the per-round scan.
        if frozen is not None and (
            (nonfrozen := active[~frozen[active]]).size * 2 <= active.size
        ):
            if nonfrozen.size:
                key = (part[nonfrozen].astype(np.int64) * block_stride
                       + blocks[nonfrozen])
                uniq, counts = np.unique(key, return_counts=True)
                good = np.unique(uniq[counts >= 2] // block_stride)
            else:
                good = np.empty(0, dtype=np.int64)
            retire = active[~np.isin(part[active], good)]
            if retire.size:
                flag = np.zeros(cur_n, dtype=bool)
                flag[retire] = True
                stats.masked_edges += int((flag[ft] & (part[fh] >= 0)).sum())
                stats.retired_vertices += int(retire.size)
                comp[resolve(ids, retire)] = n_comp + np.arange(
                    retire.size, dtype=np.int64
                )
                n_comp += int(retire.size)
                part[retire] = -1
                active = np.flatnonzero(part >= 0)
                if active.size == 0:
                    break

        # Phase switch scaled by live rounds so each round's pacing matches
        # a per-sample fwbw run of the same depth.
        if (n_parts >= _COLOR_PARTS * max(live_rounds, 1)
                or stats.rounds > _COLOR_ROUNDS):
            n_comp, n_parts = color_round(
                cur_n, ft, fh, rt, rh, part, comp, ids, n_comp, scratch, stats
            )
            continue

        # ---- pivots: one per active part, preferring non-frozen ----------
        pivot_of = np.full(n_parts, -1, dtype=np.int64)
        pivot_of[part[active]] = active
        if frozen is not None:
            nonfrozen = active[~frozen[active]]
            pivot_of[part[nonfrozen]] = nonfrozen
        pivots = pivot_of[pivot_of >= 0]

        # ---- forward/backward multi-source frontier BFS ------------------
        reach_f = frontier_bfs(fip, fh, pivots, part, scratch, stats)
        reach_b = frontier_bfs(rip, rh, pivots, part, scratch, stats)

        # ---- finalise every pivot's SCC (F ∩ B, per part) ----------------
        in_scc = np.zeros(cur_n, dtype=bool)
        in_scc[active] = reach_f[active] & reach_b[active]
        members = np.flatnonzero(in_scc)
        new_id, n_new = bucket_ids(part[members], n_parts)
        comp[resolve(ids, members)] = n_comp + new_id
        n_comp += n_new
        part[members] = -1

        # ---- split remainders into (F-only, B-only, untouched) -----------
        remaining = np.flatnonzero(part >= 0)
        if remaining.size:
            state = np.where(
                reach_f[remaining], 1, np.where(reach_b[remaining], 2, 0)
            ).astype(np.int64)
            new_part, n_parts = bucket_ids(
                part[remaining].astype(np.int64) * 3 + state, 3 * n_parts
            )
            part[remaining] = new_part
        else:
            n_parts = 0

    return comp.astype(np.int64, copy=False)
