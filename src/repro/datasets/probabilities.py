"""Influence-probability settings from the paper's setup (Section 7.1).

Four standard assignments over a fixed topology:

* ``EXP`` — exponential with mean 0.1 (empirically motivated [3, 13]),
  truncated to ``(0, 1]``;
* ``TRI`` — trivalency: uniform choice from ``{0.1, 0.01, 0.001}`` [9];
* ``UC``  — uniform cascade: constant 0.1 [22];
* ``WC``  — weighted cascade: ``p(u, v) = 1 / indegree(v)`` [22].
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng

__all__ = [
    "assign_exponential",
    "assign_trivalency",
    "assign_uniform",
    "assign_weighted_cascade",
    "apply_setting",
    "PROBABILITY_SETTINGS",
]


def assign_exponential(
    graph: InfluenceGraph, rng=None, mean: float = 0.1
) -> InfluenceGraph:
    """EXP setting: i.i.d. exponential(mean) probabilities, clipped to (0, 1]."""
    rng = ensure_rng(rng)
    probs = rng.exponential(scale=mean, size=graph.m)
    probs = np.clip(probs, np.nextafter(0.0, 1.0), 1.0)
    return graph.with_probabilities(probs)


def assign_trivalency(graph: InfluenceGraph, rng=None) -> InfluenceGraph:
    """TRI setting: uniform random choice from {0.1, 0.01, 0.001}."""
    rng = ensure_rng(rng)
    choices = np.array([0.1, 0.01, 0.001])
    return graph.with_probabilities(choices[rng.integers(0, 3, size=graph.m)])


def assign_uniform(graph: InfluenceGraph, p: float = 0.1) -> InfluenceGraph:
    """UC setting: every edge gets the constant probability ``p``."""
    if not 0.0 < p <= 1.0:
        raise AlgorithmError("uniform probability must lie in (0, 1]")
    return graph.with_probabilities(np.full(graph.m, p))


def assign_weighted_cascade(graph: InfluenceGraph) -> InfluenceGraph:
    """WC setting: ``p(u, v) = 1 / indegree(v)``."""
    indeg = graph.in_degree().astype(np.float64)
    probs = 1.0 / indeg[graph.heads]
    return graph.with_probabilities(probs)


PROBABILITY_SETTINGS = ("exp", "tri", "uc", "wc")


def apply_setting(graph: InfluenceGraph, setting: str, rng=None) -> InfluenceGraph:
    """Apply one of the four named settings (case-insensitive)."""
    setting = setting.lower()
    if setting == "exp":
        return assign_exponential(graph, rng)
    if setting == "tri":
        return assign_trivalency(graph, rng)
    if setting == "uc":
        return assign_uniform(graph)
    if setting == "wc":
        return assign_weighted_cascade(graph)
    raise AlgorithmError(
        f"unknown probability setting {setting!r}; choose from {PROBABILITY_SETTINGS}"
    )
