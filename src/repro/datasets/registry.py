"""Registry of scaled-down analogues of the paper's datasets (Table 1).

The originals (SNAP, LAW, and Yahoo's proprietary ``ameblo`` crawl) range up
to 6.9 billion edges and are not redistributable here, so each is replaced by
a synthetic graph of the same *type* — social / web / collaboration /
communication, directed or undirected, dense-cored or tree-like — generated
deterministically from a seed.  The analogy preserved is structural (see
``DESIGN.md``): reduction ratios, accuracy, and who-wins orderings depend on
the core–fringe decomposition, which the generators reproduce, not on raw
scale.

Usage::

    from repro.datasets import load_dataset
    graph = load_dataset("soc-slashdot", setting="exp", seed=0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng
from . import generators
from .probabilities import apply_setting

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "list_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset analogue.

    Attributes
    ----------
    name:
        Registry key (paper dataset name, lower-cased and shortened).
    kind:
        Network type as in Table 1 (collab. / social / web / commu.).
    directed:
        Whether the *source* network is directed (undirected networks are
        symmetrised by the generators, per the paper's setup).
    tier:
        ``"small"`` / ``"medium"`` / ``"large"`` — controls which benchmarks
        include the dataset, mirroring which paper experiments ran on it.
    paper_vertices, paper_edges:
        The original network's size, for documentation and table headers.
    make:
        Topology generator ``seed -> InfluenceGraph``.
    """

    name: str
    kind: str
    directed: bool
    tier: str
    paper_vertices: int
    paper_edges: int
    make: Callable[[object], InfluenceGraph]


DATASETS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    DATASETS[spec.name] = spec


# Generator parameters below are calibrated so that r=16 coarsening under the
# EXP setting lands near the paper's Table 3 reduction ratios (see
# EXPERIMENTS.md for the measured values).
_register(DatasetSpec(
    "ca-hepph", "collab.", False, "small", 12_008, 236_978,
    lambda rng: generators.collaboration_graph(900, group_size_mean=5.0,
                                               membership_overlap=0.2,
                                               heavy_tail=0.02, rng=rng),
))
_register(DatasetSpec(
    "soc-slashdot", "social", True, "small", 82_168, 870_161,
    lambda rng: generators.powerlaw_social_graph(3_000, out_degree=9,
                                                 reciprocity=0.5,
                                                 rich_club_fraction=0.09,
                                                 rich_club_degree=80, rng=rng),
))
_register(DatasetSpec(
    "web-notredame", "web", True, "small", 325_729, 1_469_679,
    lambda rng: generators.web_graph(160, pages_per_host=20, intra_links=4,
                                     inter_links=4, portal_core_size=50,
                                     portal_core_degree=45,
                                     core_link_fraction=0.75, rng=rng),
))
_register(DatasetSpec(
    "wiki-talk", "commu.", True, "small", 2_394_385, 5_021_410,
    lambda rng: generators.powerlaw_social_graph(6_000, out_degree=2,
                                                 reciprocity=0.05,
                                                 rich_club_fraction=0.015,
                                                 rich_club_degree=80, rng=rng),
))
_register(DatasetSpec(
    "com-youtube", "social", False, "medium", 1_134_890, 5_975_248,
    lambda rng: generators.powerlaw_social_graph(5_000, out_degree=5,
                                                 reciprocity=1.0,
                                                 rich_club_fraction=0.045,
                                                 rich_club_degree=60, rng=rng),
))
_register(DatasetSpec(
    "higgs-twitter", "social", True, "medium", 456_626, 14_855_819,
    lambda rng: generators.powerlaw_social_graph(3_500, out_degree=16,
                                                 reciprocity=0.2,
                                                 rich_club_fraction=0.10,
                                                 rich_club_degree=80, rng=rng),
))
_register(DatasetSpec(
    "soc-pokec", "social", True, "medium", 1_632_803, 30_622_564,
    lambda rng: generators.powerlaw_social_graph(8_000, out_degree=12,
                                                 reciprocity=0.5,
                                                 rich_club_fraction=0.08,
                                                 rich_club_degree=50, rng=rng),
))
_register(DatasetSpec(
    "soc-livejournal", "social", True, "medium", 4_847_571, 68_475_391,
    lambda rng: generators.powerlaw_social_graph(12_000, out_degree=12,
                                                 reciprocity=0.6,
                                                 rich_club_fraction=0.07,
                                                 rich_club_degree=60, rng=rng),
))
_register(DatasetSpec(
    "com-orkut", "social", False, "large", 3_072_441, 234_370_166,
    lambda rng: generators.core_fringe_graph(4_500, 3_500, core_out_degree=60,
                                             rng=rng),
))
_register(DatasetSpec(
    "twitter-2010", "social", True, "large", 41_652_230, 1_468_364_884,
    lambda rng: generators.powerlaw_social_graph(20_000, out_degree=16,
                                                 reciprocity=0.3,
                                                 rich_club_fraction=0.12,
                                                 rich_club_degree=90, rng=rng),
))
_register(DatasetSpec(
    "com-friendster", "social", False, "large", 65_608_366, 3_612_134_270,
    lambda rng: generators.core_fringe_graph(7_000, 17_000, core_out_degree=50,
                                             rng=rng),
))
_register(DatasetSpec(
    "uk-2007-05", "web", True, "large", 105_218_569, 3_717_169_969,
    lambda rng: generators.web_graph(800, pages_per_host=25, intra_links=2,
                                     inter_links=8, portal_core_size=120,
                                     portal_core_degree=45,
                                     core_link_fraction=0.9, rng=rng),
))
_register(DatasetSpec(
    "ameblo", "web", True, "large", 272_687_914, 6_910_266_107,
    lambda rng: generators.web_graph(1_200, pages_per_host=25, intra_links=4,
                                     inter_links=4, portal_core_size=60,
                                     portal_core_degree=45,
                                     core_link_fraction=0.7, rng=rng),
))


def list_datasets(tier: str | None = None, max_tier: str | None = None) -> list[str]:
    """Dataset names, optionally filtered by tier or up to a tier."""
    tiers = ("small", "medium", "large")
    names = list(DATASETS)
    if tier is not None:
        names = [n for n in names if DATASETS[n].tier == tier]
    if max_tier is not None:
        cutoff = tiers.index(max_tier)
        names = [n for n in names if tiers.index(DATASETS[n].tier) <= cutoff]
    return names


def load_dataset(name: str, setting: str = "exp", seed: int = 0) -> InfluenceGraph:
    """Generate a dataset analogue and apply a probability setting.

    Topology and probabilities are both deterministic in ``(name, setting,
    seed)`` — the topology uses the seed directly and the probabilities use a
    derived stream, so the same topology can carry all four settings.
    """
    if name not in DATASETS:
        raise AlgorithmError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    spec = DATASETS[name]
    topo_rng = ensure_rng(seed)
    graph = spec.make(topo_rng)
    prob_rng = ensure_rng(seed + 1_000_003)
    return apply_setting(graph, setting, prob_rng)
