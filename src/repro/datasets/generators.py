"""Synthetic network generators — the dataset substrate.

The paper evaluates on SNAP / LAW / proprietary crawls of up to 6.9 billion
edges that are unavailable here, so the registry (:mod:`repro.datasets.registry`)
replaces each with a scaled-down synthetic analogue of matching *type*.  The
generators below reproduce the structural property the paper's analysis
leans on (Section 4.3): complex networks decompose into a well-connected
dense **core** — which stays strongly connected in live-edge samples and
therefore coarsens into big r-robust SCCs — and a tree-like **fringe** that
fragments into singletons.

All generators return topologies with a uniform placeholder probability of
0.1; apply one of the Section 7.1 settings with
:func:`repro.datasets.probabilities.apply_setting`.
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..graph.builder import GraphBuilder
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng

__all__ = [
    "core_fringe_graph",
    "powerlaw_social_graph",
    "rmat_graph",
    "web_graph",
    "collaboration_graph",
]

_PLACEHOLDER_P = 0.1


def _finish(builder: GraphBuilder) -> InfluenceGraph:
    return builder.build()


def core_fringe_graph(
    n_core: int,
    n_fringe: int,
    core_out_degree: int = 12,
    fringe_back_prob: float = 0.05,
    rng=None,
) -> InfluenceGraph:
    """A dense strongly connected core with a tree-like directed fringe.

    * Core: a directed cycle through the ``n_core`` core vertices (guarantees
      strong connectivity of the deterministic core) plus ``core_out_degree``
      random intra-core out-edges per vertex.
    * Fringe: each of the ``n_fringe`` fringe vertices picks a random parent
      among earlier vertices (core or fringe) and links *toward* it; with
      probability ``fringe_back_prob`` the parent links back, so a few small
      reciprocated pockets exist but the fringe is overwhelmingly tree-like.
    """
    if n_core < 2:
        raise AlgorithmError("core must have at least 2 vertices")
    rng = ensure_rng(rng)
    n = n_core + n_fringe
    builder = GraphBuilder(n=n)

    core = np.arange(n_core, dtype=np.int64)
    cycle_heads = np.roll(core, -1)
    builder.add_edges(core, cycle_heads, np.full(n_core, _PLACEHOLDER_P))
    tails = np.repeat(core, core_out_degree)
    heads = rng.integers(0, n_core, size=tails.size)
    builder.add_edges(tails, heads, np.full(tails.size, _PLACEHOLDER_P))

    if n_fringe:
        children = np.arange(n_core, n, dtype=np.int64)
        # Parent of fringe vertex v is uniform over all earlier vertices, so
        # the fringe forms a random recursive forest rooted in the core.
        parents = (rng.random(n_fringe) * children).astype(np.int64)
        builder.add_edges(children, parents, np.full(n_fringe, _PLACEHOLDER_P))
        back = rng.random(n_fringe) < fringe_back_prob
        if back.any():
            builder.add_edges(
                parents[back], children[back], np.full(int(back.sum()), _PLACEHOLDER_P)
            )
    return _finish(builder)


def powerlaw_social_graph(
    n: int,
    out_degree: int = 8,
    reciprocity: float = 0.3,
    rich_club_fraction: float = 0.0,
    rich_club_degree: int = 0,
    rng=None,
) -> InfluenceGraph:
    """Directed preferential-attachment social network with a rich club.

    Vertex ``t`` links to ``out_degree`` targets drawn proportionally to
    in-degree + 1 among earlier vertices (the repeated-endpoints pool trick);
    each link is reciprocated with probability ``reciprocity``, producing the
    mutual-follow pockets that become non-trivial SCCs.

    ``rich_club_fraction`` / ``rich_club_degree`` densify the top-connected
    vertices with extra mutual edges — the *rich-club effect* observed in
    real social networks, and the structural source of the paper's
    core–fringe decomposition (Section 4.3): the club stays strongly
    connected across live-edge samples and coarsens into a giant r-robust
    SCC, while the fringe stays singleton.
    """
    if n <= out_degree:
        raise AlgorithmError("n must exceed out_degree")
    rng = ensure_rng(rng)
    tails: list[int] = []
    heads: list[int] = []
    pool: list[int] = list(range(out_degree + 1))  # seed clique endpoints
    for u in range(out_degree + 1):
        for v in range(out_degree + 1):
            if u != v:
                tails.append(u)
                heads.append(v)
    for t in range(out_degree + 1, n):
        raw = rng.integers(0, len(pool), size=out_degree)
        targets = {pool[i] for i in raw.tolist()}
        # Sorted: set iteration order is a CPython implementation detail,
        # and the reciprocity draws below consume the rng in target order.
        for v in sorted(targets):
            tails.append(t)
            heads.append(v)
            pool.append(v)
            pool.append(t)
            if rng.random() < reciprocity:
                tails.append(v)
                heads.append(t)
    builder = GraphBuilder(n=n)
    builder.add_edges(
        np.asarray(tails), np.asarray(heads), np.full(len(tails), _PLACEHOLDER_P)
    )
    if rich_club_fraction > 0.0 and rich_club_degree > 0:
        degree = np.bincount(np.asarray(heads), minlength=n) + np.bincount(
            np.asarray(tails), minlength=n
        )
        club_size = max(2, int(round(rich_club_fraction * n)))
        club = np.argsort(degree, kind="stable")[::-1][:club_size].astype(np.int64)
        club_tails = np.repeat(club, rich_club_degree)
        club_heads = club[rng.integers(0, club_size, size=club_tails.size)]
        builder.add_edges(
            club_tails, club_heads, np.full(club_tails.size, _PLACEHOLDER_P)
        )
        builder.add_edges(
            club_heads, club_tails, np.full(club_tails.size, _PLACEHOLDER_P)
        )
    return _finish(builder)


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    quadrants: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    rng=None,
) -> InfluenceGraph:
    """R-MAT recursive-matrix graph on ``2**scale`` vertices.

    Classic Kronecker-style generator: each of the ``edge_factor * n`` edges
    picks one quadrant per bit level with probabilities ``(a, b, c, d)``.
    Produces the heavy-tailed, self-similar structure of web crawls.
    """
    rng = ensure_rng(rng)
    a, b, c, d = quadrants
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise AlgorithmError("quadrant probabilities must sum to 1")
    n = 1 << scale
    m = edge_factor * n
    tails = np.zeros(m, dtype=np.int64)
    heads = np.zeros(m, dtype=np.int64)
    thresholds = np.cumsum([a, b, c])
    for _ in range(scale):
        tails <<= 1
        heads <<= 1
        quadrant = np.searchsorted(thresholds, rng.random(m), side="right")
        tails |= quadrant >> 1  # quadrants 2, 3 set the tail bit
        heads |= quadrant & 1  # quadrants 1, 3 set the head bit
    builder = GraphBuilder(n=n)
    builder.add_edges(tails, heads, np.full(m, _PLACEHOLDER_P))
    return _finish(builder)


def web_graph(
    n_hosts: int,
    pages_per_host: int = 20,
    intra_links: int = 4,
    inter_links: int = 2,
    portal_core_size: int = 0,
    portal_core_degree: int = 0,
    core_link_fraction: float = 0.7,
    rng=None,
) -> InfluenceGraph:
    """Host-structured web graph (already in *influence* direction).

    Pages link within their host and to the wider web, mirroring the paper's
    reversed web graphs (edges point from linked-to page to linker).  The
    front pages of the top ``portal_core_size`` hosts form a *portal core* —
    mutually and densely interlinked (directories, aggregators, blog rolls).
    With ``portal_core_degree`` internal links per core page the core stays
    strongly connected in live-edge samples and coarsens into one giant
    r-robust SCC; every ordinary page's multiple links into the (now merged)
    core then bundle into a single coarse edge, which is the dominant edge
    reduction mechanism on web crawls (Table 3's web rows).

    ``core_link_fraction`` is the share of each page's ``inter_links`` that
    target portal-core pages rather than a random host's front page.
    """
    rng = ensure_rng(rng)
    n = n_hosts * pages_per_host
    builder = GraphBuilder(n=n)
    core_pages = (
        np.arange(min(portal_core_size, n_hosts), dtype=np.int64) * pages_per_host
    )
    if core_pages.size >= 2 and portal_core_degree > 0:
        c_tails = np.repeat(core_pages, portal_core_degree)
        c_heads = core_pages[rng.integers(0, core_pages.size, size=c_tails.size)]
        builder.add_edges(c_tails, c_heads, np.full(c_tails.size, _PLACEHOLDER_P))
        builder.add_edges(c_heads, c_tails, np.full(c_tails.size, _PLACEHOLDER_P))
    for host in range(n_hosts):
        base = host * pages_per_host
        pages = np.arange(base, base + pages_per_host, dtype=np.int64)
        # Intra-host ring (breadcrumb navigation) connects each host weakly.
        builder.add_edges(
            pages, np.roll(pages, -1), np.full(pages.size, _PLACEHOLDER_P)
        )
        # Body pages reference random pages of their own host.
        tails = np.repeat(pages, intra_links)
        heads = base + rng.integers(0, pages_per_host, size=tails.size)
        builder.add_edges(tails, heads, np.full(tails.size, _PLACEHOLDER_P))
        # Outbound links: mostly into the portal core, else a random front
        # page.  Multiple core links per page bundle after coarsening.
        tails = np.repeat(pages, inter_links)
        front = rng.integers(0, n_hosts, size=tails.size) * pages_per_host
        if core_pages.size:
            to_core = rng.random(tails.size) < core_link_fraction
            core_target = core_pages[
                rng.integers(0, core_pages.size, size=tails.size)
            ]
            heads = np.where(to_core, core_target, front)
        else:
            heads = front
        builder.add_edges(tails, heads, np.full(tails.size, _PLACEHOLDER_P))
    return _finish(builder)


def collaboration_graph(
    n_groups: int,
    group_size_mean: float = 4.0,
    membership_overlap: float = 0.15,
    heavy_tail: float = 0.0,
    max_group_size: int = 120,
    rng=None,
) -> InfluenceGraph:
    """Undirected collaboration network built from overlapping cliques.

    Each "paper" is a clique over its authors; a fraction of authors recur
    across groups, chaining the cliques together.  Undirected edges become
    bidirected pairs, as in the paper's treatment of ca-HepPh.

    ``heavy_tail`` is the probability that a group is a *large collaboration*
    (Pareto-sized, capped at ``max_group_size``) — the detector-experiment
    cliques that give ca-HepPh its dense robust core.
    """
    rng = ensure_rng(rng)
    author_count = 0
    us: list[int] = []
    vs: list[int] = []
    known: list[int] = []
    for _ in range(n_groups):
        if heavy_tail > 0.0 and rng.random() < heavy_tail:
            size = min(max_group_size, 10 + int(rng.pareto(1.5) * 20))
        else:
            size = max(2, int(rng.poisson(group_size_mean)))
        members: list[int] = []
        for _ in range(size):
            if known and rng.random() < membership_overlap:
                members.append(known[int(rng.integers(len(known)))])
            else:
                members.append(author_count)
                known.append(author_count)
                author_count += 1
        members = list(dict.fromkeys(members))
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                us.append(u)
                vs.append(v)
    builder = GraphBuilder(n=author_count)
    builder.add_undirected_edges(
        np.asarray(us), np.asarray(vs), np.full(len(us), _PLACEHOLDER_P)
    )
    return _finish(builder)
