"""Dataset analogues and probability settings (Section 7.1)."""

from .generators import (
    collaboration_graph,
    core_fringe_graph,
    powerlaw_social_graph,
    rmat_graph,
    web_graph,
)
from .probabilities import (
    PROBABILITY_SETTINGS,
    apply_setting,
    assign_exponential,
    assign_trivalency,
    assign_uniform,
    assign_weighted_cascade,
)
from .registry import DATASETS, DatasetSpec, list_datasets, load_dataset

__all__ = [
    "core_fringe_graph",
    "powerlaw_social_graph",
    "rmat_graph",
    "web_graph",
    "collaboration_graph",
    "apply_setting",
    "assign_exponential",
    "assign_trivalency",
    "assign_uniform",
    "assign_weighted_cascade",
    "PROBABILITY_SETTINGS",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "list_datasets",
]
