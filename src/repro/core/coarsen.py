"""Coarsening an influence graph by a strongly connected partition.

Implements Definition 4.1.  Given ``G = (V, E, p)`` and a partition
``P = {C_1..C_l}`` of ``V`` into strongly connected sets, produce the
vertex-weighted influence graph ``H = (W, F, q, w)`` where:

* ``W`` has one vertex per block, with weight ``w(c_j) = |C_j|`` (or the
  block's total weight when ``G`` itself is already weighted, so coarsening
  composes);
* ``F`` contains an edge ``(c_x, c_y)`` whenever some original edge crosses
  ``C_x -> C_y``;
* ``q(c_x, c_y) = 1 - prod (1 - p(u, v))`` over the crossing edges (Eq. 5).

The construction is fully vectorised: endpoints are mapped through the label
array, coarse self-loops are dropped, and parallel bundles are combined with
the noisy-or rule in one grouped pass.
"""

from __future__ import annotations

import numpy as np

from ..errors import CoarseningError
from ..graph.builder import combine_parallel_edges
from ..graph.influence_graph import InfluenceGraph
from ..partition.partition import Partition
from ..scc import scc_labels

__all__ = ["coarsen", "check_partition_strongly_connected"]


def check_partition_strongly_connected(
    graph: InfluenceGraph, partition: Partition
) -> None:
    """Raise :class:`CoarseningError` unless every block is SC in ``graph``.

    Definition 4.1 requires each coarsened block to be strongly connected;
    blocks produced by r-robust SCC extraction satisfy this by construction
    (they are SC in a subgraph of ``G``), so this check is opt-in.
    """
    labels = partition.labels
    tails, heads, _ = graph.edge_arrays()
    # Restrict the graph to intra-block edges, then check every block is one
    # SCC of that restricted graph.
    intra = labels[tails] == labels[heads]
    counts = np.bincount(tails[intra], minlength=graph.n)
    indptr = np.zeros(graph.n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    sub_labels = scc_labels(indptr, heads[intra])
    meet = Partition(sub_labels).meet(partition)
    if meet.n_blocks != partition.n_blocks:
        raise CoarseningError(
            "partition contains a block that is not strongly connected"
        )


def coarsen(
    graph: InfluenceGraph,
    partition: Partition,
    validate: bool = False,
) -> tuple[InfluenceGraph, np.ndarray]:
    """Coarsen ``graph`` by ``partition`` (Definition 4.1).

    Parameters
    ----------
    graph:
        The input influence graph; may itself be vertex-weighted, in which
        case coarse weights are block weight sums (coarsening composes).
    partition:
        A partition of the vertex set into strongly connected blocks with
        canonical labels; block label ``j`` becomes coarse vertex ``j``.
    validate:
        Verify the strong-connectivity precondition (O(n + m) extra work).

    Returns
    -------
    (H, pi):
        The coarsened vertex-weighted :class:`InfluenceGraph` and the
        correspondence mapping as a label array.
    """
    if partition.n != graph.n:
        raise CoarseningError("partition does not cover the graph's vertex set")
    if validate:
        check_partition_strongly_connected(graph, partition)

    pi = partition.labels
    n_coarse = partition.n_blocks

    # Coarse vertex weights: block sizes, or block weight sums if weighted.
    weights = np.zeros(n_coarse, dtype=np.int64)
    np.add.at(weights, pi, graph.weights)

    tails, heads, probs = graph.edge_arrays()
    cu, cv = pi[tails], pi[heads]
    cross = cu != cv
    f_tails, f_heads, f_probs = combine_parallel_edges(
        cu[cross], cv[cross], probs[cross]
    )
    coarse = InfluenceGraph.from_edges(
        n_coarse, f_tails, f_heads, f_probs, weights=weights
    )
    return coarse, pi.copy()
