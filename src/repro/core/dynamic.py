"""Algorithm 7 — dynamic updates of coarsened graphs (Appendix C.2).

:class:`DynamicCoarsener` maintains, for a mutating influence graph, the
``r`` live-edge samples ``G_i``, their SCC partitions ``C_i``, the meet
``P_r``, and the coarsened graph ``H`` / mapping ``pi`` — updating them on
edge insertion and deletion instead of re-running coarsening from scratch.

The pruning argument of the paper applies verbatim: an inserted or deleted
edge materialises in each sample only with probability ``p_uv``, so only a
``p_uv`` fraction of the ``r`` SCC computations reruns in expectation; and
when no ``C_i`` changes, ``P_r`` is provably unchanged and only the single
coarse edge bundle ``(pi(u), pi(v))`` needs a probability update:

* insert: ``q <- 1 - (1 - q)(1 - p)``
* delete: ``q <- 1 - (1 - q) / (1 - p)`` (bundle dropped when it empties)

Bundle multiplicities are tracked exactly, so deletions never rely on
floating-point cancellation to discover that a bundle became empty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CoarseningError
from ..graph.influence_graph import InfluenceGraph
from ..partition.partition import Partition
from ..rng import ensure_rng
from ..scc import DEFAULT_SCC_BACKEND, scc_labels
from .coarsen import coarsen
from .result import CoarsenResult, CoarsenStats

__all__ = ["DynamicCoarsener", "DynamicStats"]


@dataclass
class DynamicStats:
    """Counters showing how much work dynamic pruning avoided."""

    insertions: int = 0
    deletions: int = 0
    scc_recomputations: int = 0
    scc_skipped: int = 0
    full_rebuilds: int = 0
    fast_updates: int = 0


class DynamicCoarsener:
    """Incrementally maintained coarsening of a mutating influence graph.

    Parameters
    ----------
    graph:
        Initial influence graph (unweighted).
    r:
        Robustness parameter.
    rng:
        Seed or generator driving both the initial samples and the coin
        flips of subsequent insertions.
    """

    def __init__(self, graph: InfluenceGraph, r: int = 16, rng=None,
                 scc_backend: str = DEFAULT_SCC_BACKEND) -> None:
        if graph.is_weighted:
            raise CoarseningError("dynamic coarsening expects an unweighted input")
        self.n = graph.n
        self.r = r
        self._rng = ensure_rng(rng)
        self._scc_backend = scc_backend
        self.stats = DynamicStats()

        tails, heads, probs = graph.edge_arrays()
        self._edges: dict[tuple[int, int], float] = {
            (int(u), int(v)): float(p) for u, v, p in zip(tails, heads, probs)
        }
        # Live-edge samples as edge sets (mutable); their SCC partitions.
        self._live: list[set[tuple[int, int]]] = []
        self._comps: list[Partition] = []
        for _ in range(r):
            keep = self._rng.random(graph.m) < probs
            live = {
                (int(u), int(v)) for u, v in zip(tails[keep], heads[keep])
            }
            self._live.append(live)
            self._comps.append(self._scc_partition(live))
        self._rebuild_from_components()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _scc_partition(self, live: set[tuple[int, int]]) -> Partition:
        if live:
            edges = np.array(sorted(live), dtype=np.int64)
            order = np.lexsort((edges[:, 1], edges[:, 0]))
            tails, heads = edges[order, 0], edges[order, 1]
        else:
            tails = np.empty(0, dtype=np.int64)
            heads = np.empty(0, dtype=np.int64)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(indptr, tails + 1, 1)
        np.cumsum(indptr, out=indptr)
        return Partition(scc_labels(indptr, heads, backend=self._scc_backend))

    def _rebuild_from_components(self) -> None:
        """Recompute ``P_r``, ``pi`` and ``H`` from the current ``C_i``."""
        partition = Partition.trivial(self.n)
        for comp in self._comps:
            partition = partition.meet(comp)
        self._partition = partition
        self._pi = partition.labels
        self._weights = partition.block_sizes()
        self._q: dict[tuple[int, int], float] = {}
        self._bundle_count: dict[tuple[int, int], int] = {}
        for (u, v), p in self._edges.items():
            self._bundle_insert(u, v, p)

    def _bundle_insert(self, u: int, v: int, p: float) -> None:
        cu, cv = int(self._pi[u]), int(self._pi[v])
        if cu == cv:
            return
        key = (cu, cv)
        miss = 1.0 - self._q.get(key, 0.0)
        self._q[key] = 1.0 - miss * (1.0 - p)
        self._bundle_count[key] = self._bundle_count.get(key, 0) + 1

    def _bundle_delete(self, u: int, v: int, p: float) -> None:
        cu, cv = int(self._pi[u]), int(self._pi[v])
        if cu == cv:
            return
        key = (cu, cv)
        count = self._bundle_count[key] - 1
        if count == 0:
            del self._q[key]
            del self._bundle_count[key]
            return
        self._bundle_count[key] = count
        if 1.0 - p < 1e-12:
            # Division would be unstable; recompute the bundle exactly.
            self._q[key] = self._recompute_bundle(key)
        else:
            self._q[key] = 1.0 - (1.0 - self._q[key]) / (1.0 - p)

    def _recompute_bundle(self, key: tuple[int, int]) -> float:
        miss = 1.0
        for (u, v), p in self._edges.items():
            if (int(self._pi[u]), int(self._pi[v])) == key:
                miss *= 1.0 - p
        return 1.0 - miss

    # ------------------------------------------------------------------
    # Updates (Algorithm 7)
    # ------------------------------------------------------------------

    def insert_edge(self, u: int, v: int, p: float) -> None:
        """Insert edge ``(u, v)`` with probability ``p``."""
        if u == v:
            raise CoarseningError("self-loops are not allowed")
        if not 0.0 < p <= 1.0:
            raise CoarseningError("influence probability must lie in (0, 1]")
        if (u, v) in self._edges:
            raise CoarseningError(f"edge ({u}, {v}) already present")
        self.stats.insertions += 1
        self._edges[(u, v)] = p
        changed = False
        for i in range(self.r):
            if self._rng.random() >= p:
                self.stats.scc_skipped += 1
                continue  # the edge did not materialise in sample i
            self._live[i].add((u, v))
            new_comp = self._scc_partition(self._live[i])
            self.stats.scc_recomputations += 1
            if new_comp != self._comps[i]:
                self._comps[i] = new_comp
                changed = True
        if changed:
            self.stats.full_rebuilds += 1
            self._rebuild_from_components()
        else:
            self.stats.fast_updates += 1
            self._bundle_insert(u, v, p)

    def delete_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``."""
        if (u, v) not in self._edges:
            raise CoarseningError(f"edge ({u}, {v}) not present")
        self.stats.deletions += 1
        # Remove from the edge map up front: _bundle_delete may recompute a
        # bundle by scanning self._edges, which must no longer contain the
        # edge being deleted.
        p = self._edges.pop((u, v))
        changed = False
        for i in range(self.r):
            if (u, v) not in self._live[i]:
                self.stats.scc_skipped += 1
                continue
            self._live[i].discard((u, v))
            new_comp = self._scc_partition(self._live[i])
            self.stats.scc_recomputations += 1
            if new_comp != self._comps[i]:
                self._comps[i] = new_comp
                changed = True
        if changed:
            self.stats.full_rebuilds += 1
            self._rebuild_from_components()
        else:
            self.stats.fast_updates += 1
            self._bundle_delete(u, v, p)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def current_graph(self) -> InfluenceGraph:
        """The latest snapshot of the underlying influence graph ``G``."""
        if self._edges:
            items = sorted(self._edges.items())
            tails = np.array([e[0][0] for e in items], dtype=np.int64)
            heads = np.array([e[0][1] for e in items], dtype=np.int64)
            probs = np.array([e[1] for e in items], dtype=np.float64)
        else:
            tails = np.empty(0, dtype=np.int64)
            heads = np.empty(0, dtype=np.int64)
            probs = np.empty(0, dtype=np.float64)
        return InfluenceGraph.from_edges(self.n, tails, heads, probs)

    def snapshot(self) -> CoarsenResult:
        """The maintained coarsening as a :class:`CoarsenResult`."""
        if self._q:
            keys = sorted(self._q)
            tails = np.array([k[0] for k in keys], dtype=np.int64)
            heads = np.array([k[1] for k in keys], dtype=np.int64)
            probs = np.clip(
                np.array([self._q[k] for k in keys], dtype=np.float64),
                np.nextafter(0.0, 1.0),
                1.0,
            )
        else:
            tails = np.empty(0, dtype=np.int64)
            heads = np.empty(0, dtype=np.int64)
            probs = np.empty(0, dtype=np.float64)
        coarse = InfluenceGraph.from_edges(
            self._partition.n_blocks, tails, heads, probs, weights=self._weights
        )
        stats = CoarsenStats(
            r=self.r,
            input_vertices=self.n,
            input_edges=len(self._edges),
            output_vertices=coarse.n,
            output_edges=coarse.m,
        )
        return CoarsenResult(
            coarse=coarse, pi=self._pi.copy(), partition=self._partition, stats=stats
        )

    def reference_coarsening(self) -> CoarsenResult:
        """Coarsen the current graph from scratch *with the same samples*.

        Used by tests and the dynamic-updates benchmark to verify that the
        incremental state matches a full recomputation.
        """
        partition = Partition.trivial(self.n)
        for comp in self._comps:
            partition = partition.meet(comp)
        coarse, pi = coarsen(self.current_graph(), partition)
        return CoarsenResult(
            coarse=coarse,
            pi=pi,
            partition=partition,
            stats=CoarsenStats(r=self.r),
        )
