"""Algorithm 7 — dynamic updates of coarsened graphs (Appendix C.2).

:class:`DynamicCoarsener` maintains, for a mutating influence graph, the
``r`` live-edge samples ``G_i``, their SCC partitions ``C_i``, the meet
``P_r``, and the coarsened graph ``H`` / mapping ``pi`` — updating them on
edge insertion and deletion instead of re-running coarsening from scratch.

The pruning argument of the paper applies twice over:

* an inserted or deleted edge materialises in each sample only with
  probability ``p_uv``, so only a ``p_uv`` fraction of the ``r`` samples
  is touched at all in expectation (coin-flip skips);
* even a materialised edge usually cannot change the sample's SCCs — an
  insert whose endpoints already share an SCC adds no new reachability
  pair inside any cycle, an insert ``u -> v`` with no live path ``v ~> u``
  closes no cycle, and a delete whose endpoints lie in *different* SCCs
  removes an edge that was on no cycle.  These cases are detected in O(1)
  label reads (plus a capped BFS for the cross-component insert) and
  counted as ``scc_pruned`` — the SCC recomputation is skipped with the
  partition provably unchanged.

When no ``C_i`` changes, ``P_r`` is provably unchanged and only the
coarse edge bundles touched by the batch need a probability update.

Internal representation
-----------------------

All maintained state is flat numpy arrays so updates cost vectorised
O(m) splices, never Python-object churn: the edge list lives in canonical
CSR order (``_tails``/``_heads``/``_probs`` plus a packed ``_sortkey``
for O(log m) membership), each sample is a boolean keep-mask over that
edge list, and the coarse graph is a parallel set of sorted bundle
arrays patched in place on the fast path.  ``snapshot()`` and
``current_graph()`` are cached per update-version and rebuild CSR
structures directly from the already-sorted arrays.

Coin disciplines
----------------

Two ways of realising the per-sample materialisation coins are supported:

* ``coins="stream"`` (the historical default) — coins come from one
  sequential RNG stream, exactly like Algorithm 1's sampler.  The realised
  samples then depend on the *order* of updates, so the maintained state
  can only be checked against :meth:`reference_coarsening` (a rebuild over
  the same realised samples).
* ``coins="addressable"`` — the coin for edge ``(u, v)`` in sample ``i``
  is a counter-based hash of ``(seed, i, u, v)``: a pure function of the
  edge *identity*, not of the update history.  A freshly built coarsener
  (or :func:`coarsen_addressable`) over the mutated graph draws exactly
  the same coins, so the incrementally maintained model is **bit-for-bit
  equal to a cold rebuild with the same seed** — the property the serving
  layer's epoch-versioned model cache and the stateful differential test
  suite are built on.

Bundle probabilities are tracked *exactly*: a touched coarse bundle has
``q = 1 - prod(1 - p)`` recomputed from its current member edges (in the
same canonical order and floating-point association as the static
contraction in :func:`repro.core.coarsen.coarsen`), never divided out.
Repeated insert/delete of the same edge therefore can never drift ``q``
through multiply/divide cancellation, and a bundle becoming empty is
discovered by exact counting, never by floating-point comparison.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..diffusion.live_edge import live_edge_csr_from_mask
from ..errors import CoarseningError
from ..graph.builder import combine_parallel_edges
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, span
from ..partition.partition import Partition
from ..rng import ensure_rng
from ..scc import DEFAULT_SCC_BACKEND, backend_spec, multi_scc_labels, scc_labels
from .coarsen import coarsen
from .result import CoarsenResult, CoarsenStats

__all__ = [
    "COIN_DISCIPLINES",
    "Delta",
    "DynamicCoarsener",
    "DynamicStats",
    "coarsen_addressable",
    "edge_coin_uniforms",
]

COIN_DISCIPLINES = ("stream", "addressable")

# SplitMix64 round constants (Steele et al.) — the standard 64-bit finaliser
# used to turn structured integer keys into well-mixed words.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)
#: 2^-53 — maps the top 53 bits of a mixed word onto [0, 1).
_INV_2_53 = np.float64(1.0 / 9007199254740992.0)

#: Visited-vertex budget for the cross-component reachability probe; past
#: this the probe gives up and the full SCC recomputation runs instead.
_REACH_CAP = 512


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser, vectorised over a ``uint64`` array (wraps)."""
    x = (x + _GOLDEN).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= _MIX_A
    x ^= x >> np.uint64(27)
    x *= _MIX_B
    x ^= x >> np.uint64(31)
    return x


def edge_coin_uniforms(
    tails: np.ndarray, heads: np.ndarray, sample_index: int, seed: int
) -> np.ndarray:
    """Counter-based uniforms in ``[0, 1)``, one per ``(tail, head)`` pair.

    The value for an edge depends only on ``(seed, sample_index, tail,
    head)`` — never on how many draws happened before — so cold and
    incremental constructions of the same live-edge sample agree exactly.
    """
    tails = np.asarray(tails).astype(np.uint64)
    heads = np.asarray(heads).astype(np.uint64)
    base = _mix64(
        np.array([np.uint64(seed & 0xFFFFFFFFFFFFFFFF)], dtype=np.uint64)
        + np.uint64(sample_index)
    )[0]
    word = _mix64(_mix64(tails + base) + heads)
    return (word >> np.uint64(11)).astype(np.float64) * _INV_2_53


@dataclass(frozen=True)
class Delta:
    """One edge mutation: ``op`` is ``"insert"`` (with ``p``) or ``"delete"``."""

    op: str
    u: int
    v: int
    p: "float | None" = None

    def __post_init__(self) -> None:
        if self.op not in ("insert", "delete"):
            raise CoarseningError(f"unknown delta op {self.op!r}")
        if self.op == "insert" and self.p is None:
            raise CoarseningError("insert deltas require a probability p")

    @classmethod
    def from_json(cls, body: dict) -> "Delta":
        """Build a delta from its JSON wire form (the serve endpoints)."""
        try:
            op = body["op"]
            u = int(body["u"])
            v = int(body["v"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CoarseningError(
                "delta objects need integer 'u'/'v' and an 'op'"
            ) from exc
        p = body.get("p")
        return cls(op=op, u=u, v=v, p=None if p is None else float(p))


@dataclass
class DynamicStats:
    """Counters showing how much work dynamic pruning avoided.

    Every mutation touches each of the ``r`` samples exactly once, as one
    of: a coin-flip skip, a structure-preserving pruned hit, or an SCC
    recomputation — so ``scc_skipped + scc_recomputations`` always equals
    ``r * (insertions + deletions)``.  ``scc_pruned`` is the subset of
    ``scc_skipped`` where the edge *did* materialise but the SCC partition
    was provably unchanged (see the module docstring).

    ``scc_recomputations`` counts *logical* recomputation demands, one per
    (delta, sample) event; the actual kernel work is deferred to the end
    of the batch, where each dirty sample is recomputed once — in a single
    batched :func:`repro.scc.multi_scc_labels` call when the configured
    backend supports it.
    """

    insertions: int = 0
    deletions: int = 0
    scc_recomputations: int = 0
    scc_skipped: int = 0
    scc_pruned: int = 0
    full_rebuilds: int = 0
    fast_updates: int = 0

    def as_dict(self) -> dict:
        return {
            "insertions": self.insertions,
            "deletions": self.deletions,
            "scc_recomputations": self.scc_recomputations,
            "scc_skipped": self.scc_skipped,
            "scc_pruned": self.scc_pruned,
            "full_rebuilds": self.full_rebuilds,
            "fast_updates": self.fast_updates,
        }


def coarsen_addressable(
    graph: InfluenceGraph,
    r: int = 16,
    seed: int = 0,
    scc_backend: str = DEFAULT_SCC_BACKEND,
) -> CoarsenResult:
    """Cold coarsening under the *addressable* coin discipline.

    Produces exactly the model a :class:`DynamicCoarsener` with
    ``coins="addressable"`` maintains for ``graph`` — bit-for-bit,
    including coarse edge probabilities — without building any mutable
    edge-set state.  This is the rebuild path the serving layer uses when
    an epoch-versioned model has been evicted, and the oracle the
    differential tests compare the incremental state against.
    """
    if graph.is_weighted:
        raise CoarseningError("addressable coarsening expects an unweighted input")
    if r < 0:
        raise CoarseningError("r must be non-negative")
    tails, heads, probs = graph.edge_arrays()
    partition = Partition.trivial(graph.n)
    with span("coarsen_addressable", r=r, n=graph.n, m=graph.m):
        if backend_spec(scc_backend).supports_batch and r:
            # Batch-capable backend: draw every sample's coins, then run
            # ONE multi-sample decomposition over all r masks.  The meet
            # fold over the label rows is the same sequence of canonical
            # meets as the per-sample loop, so the result is bit-for-bit
            # unchanged (the dynamic differential suite pins this).
            keep = np.empty((r, graph.m), dtype=bool)
            for i in range(r):
                keep[i] = edge_coin_uniforms(tails, heads, i, seed) < probs
            rows = multi_scc_labels(graph.indptr, graph.heads, keep)
            for i in range(r):
                partition = partition.meet(Partition(rows[i]))
        else:
            for i in range(r):
                keep = edge_coin_uniforms(tails, heads, i, seed) < probs
                indptr, kept_heads = live_edge_csr_from_mask(graph, keep)
                labels = scc_labels(indptr, kept_heads, backend=scc_backend)
                partition = partition.meet(Partition(labels))
        coarse, pi = coarsen(graph, partition)
    stats = CoarsenStats(
        r=r,
        input_vertices=graph.n,
        input_edges=graph.m,
        output_vertices=coarse.n,
        output_edges=coarse.m,
    )
    return CoarsenResult(coarse=coarse, pi=pi, partition=partition, stats=stats)


class DynamicCoarsener:
    """Incrementally maintained coarsening of a mutating influence graph.

    Parameters
    ----------
    graph:
        Initial influence graph (unweighted).
    r:
        Robustness parameter.
    rng:
        Seed or generator driving both the initial samples and the coin
        flips of subsequent insertions.  Under ``coins="addressable"``
        this must be an *integer seed* (the coins are a pure function of
        it, so a stateful generator makes no sense there).
    coins:
        ``"stream"`` (sequential RNG stream, the historical behaviour) or
        ``"addressable"`` (counter-based per-edge coins; see the module
        docstring).  Addressable coins make the maintained model equal a
        cold :func:`coarsen_addressable` of the mutated graph.
    """

    def __init__(self, graph: InfluenceGraph, r: int = 16, rng=None,
                 scc_backend: str = DEFAULT_SCC_BACKEND,
                 coins: str = "stream") -> None:
        if graph.is_weighted:
            raise CoarseningError("dynamic coarsening expects an unweighted input")
        if coins not in COIN_DISCIPLINES:
            raise CoarseningError(
                f"coins must be one of {COIN_DISCIPLINES}, not {coins!r}"
            )
        self.n = graph.n
        self.r = r
        self.coins = coins
        if coins == "addressable":
            if rng is None:
                rng = 0
            if not isinstance(rng, (int, np.integer)):
                raise CoarseningError(
                    "coins='addressable' needs an integer seed, not a "
                    "generator: the coins are a pure function of it"
                )
            self.seed = int(rng)
            self._rng = None
        else:
            self.seed = None
            self._rng = ensure_rng(rng)
        self._scc_backend = scc_backend
        self.stats = DynamicStats()

        tails, heads, probs = graph.edge_arrays()
        # Canonical CSR-ordered edge arrays; _sortkey packs (tail, head)
        # into one int64 so membership and splice points are one
        # np.searchsorted away.
        self._tails = np.ascontiguousarray(tails, dtype=np.int64).copy()
        self._heads = np.ascontiguousarray(heads, dtype=np.int64).copy()
        self._probs = np.ascontiguousarray(probs, dtype=np.float64).copy()
        self._sortkey = self._tails * np.int64(max(self.n, 1)) + self._heads
        self._indptr = graph.indptr.copy()
        # Sample keep-masks as one (r, m) boolean matrix aligned with the
        # edge arrays — a mutation splices every sample in one axis-1 copy.
        self._keep = np.empty((r, graph.m), dtype=bool)
        for i in range(r):
            if coins == "addressable":
                self._keep[i] = edge_coin_uniforms(tails, heads, i, self.seed) < probs
            else:
                self._keep[i] = self._rng.random(graph.m) < probs
        self._comps: "list[Partition]"
        if backend_spec(scc_backend).supports_batch and r:
            # One batched decomposition over all r masks instead of r
            # per-sample kernel calls; canonical per-row partitions are
            # identical either way.
            rows = multi_scc_labels(self._indptr, self._heads, self._keep)
            self._comps = [Partition(rows[i]) for i in range(r)]
        else:
            self._comps = [self._scc_partition(i) for i in range(r)]
        # Bumped on every applied batch; snapshot()/current_graph() caches
        # are keyed by it.
        self._version = 0
        self._graph_cache: "tuple[int, InfluenceGraph] | None" = None
        self._snapshot_cache: "tuple[int, CoarsenResult] | None" = None
        self._rebuild_from_components()

    # ------------------------------------------------------------------
    # Edge-array internals
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of edges in the current graph."""
        return int(self._tails.size)

    def _find(self, u: int, v: int) -> "tuple[int, bool]":
        """Canonical position of ``(u, v)`` and whether it is present."""
        key = u * max(self.n, 1) + v
        pos = int(np.searchsorted(self._sortkey, key))
        present = pos < self._sortkey.size and int(self._sortkey[pos]) == key
        return pos, present

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` is currently present."""
        return self._find(int(u), int(v))[1]

    def edge_list(self) -> "list[tuple[int, int]]":
        """All current edges as ``(tail, head)`` pairs in canonical order."""
        return list(zip(self._tails.tolist(), self._heads.tolist()))

    def _splice_insert(self, pos: int, u: int, v: int, p: float,
                       hits: np.ndarray) -> None:
        self._tails = np.insert(self._tails, pos, np.int64(u))
        self._heads = np.insert(self._heads, pos, np.int64(v))
        self._probs = np.insert(self._probs, pos, np.float64(p))
        self._sortkey = np.insert(
            self._sortkey, pos, np.int64(u) * np.int64(max(self.n, 1)) + np.int64(v)
        )
        self._ctails = np.insert(self._ctails, pos, self._pi[u])
        self._cheads = np.insert(self._cheads, pos, self._pi[v])
        self._keep = np.insert(self._keep, pos, hits, axis=1)
        self._indptr[u + 1:] += 1

    def _splice_delete(self, pos: int, u: int) -> None:
        self._tails = np.delete(self._tails, pos)
        self._heads = np.delete(self._heads, pos)
        self._probs = np.delete(self._probs, pos)
        self._sortkey = np.delete(self._sortkey, pos)
        self._ctails = np.delete(self._ctails, pos)
        self._cheads = np.delete(self._cheads, pos)
        self._keep = np.delete(self._keep, pos, axis=1)
        self._indptr[u + 1:] -= 1

    # ------------------------------------------------------------------
    # Sample internals
    # ------------------------------------------------------------------

    def _insert_coins(self, u: int, v: int, p: float) -> np.ndarray:
        """Boolean materialisation decisions for a new edge, one per sample."""
        if self.coins == "addressable":
            us = np.array([u], dtype=np.int64)
            vs = np.array([v], dtype=np.int64)
            coins = np.array(
                [edge_coin_uniforms(us, vs, i, self.seed)[0]
                 for i in range(self.r)],
                dtype=np.float64,
            )
            return coins < p
        return self._rng.random(self.r) < p

    def _scc_partition(self, i: int) -> Partition:
        """SCC partition of live-edge sample ``i`` (mask over canonical CSR)."""
        keep = self._keep[i]
        counts = np.bincount(self._tails[keep], minlength=self.n)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return Partition(
            scc_labels(indptr, self._heads[keep], backend=self._scc_backend)
        )

    def _sample_reaches(self, i: int, src: int, dst: int) -> "bool | None":
        """Does ``src`` reach ``dst`` in live sample ``i``?

        ``None`` means the probe visited more than ``_REACH_CAP`` vertices
        and gave up — the caller must fall back to a full recomputation.
        Live samples of influence graphs are sparse (expected out-degree
        ``sum(p)/n``), so forward closures are tiny in the common case.
        """
        keep = self._keep[i]
        indptr = self._indptr
        heads = self._heads
        seen = {src}
        frontier = [src]
        while frontier:
            next_frontier: "list[int]" = []
            for w in frontier:
                lo, hi = int(indptr[w]), int(indptr[w + 1])
                if hi == lo:
                    continue
                for h in heads[lo:hi][keep[lo:hi]].tolist():
                    if h == dst:
                        return True
                    if h not in seen:
                        seen.add(h)
                        next_frontier.append(h)
            if len(seen) > _REACH_CAP:
                return None
            frontier = next_frontier
        return False

    def _refresh_samples(self, dirty: "list[int]") -> bool:
        """Recompute the SCC partitions of the ``dirty`` samples against the
        current masks; True when any partition changed.

        Under a batch-capable backend (``"multi"``) all dirty samples go
        through **one** kernel call on the shared base CSR — this is where
        a delta-heavy epoch amortises its recomputations.  Canonical
        partitions are backend-independent, so the maintained state is the
        same either way.
        """
        changed = False
        if len(dirty) > 1 and backend_spec(self._scc_backend).supports_batch:
            rows = multi_scc_labels(self._indptr, self._heads,
                                    self._keep[dirty])
            fresh = [Partition(rows[j]) for j in range(len(dirty))]
        else:
            fresh = [self._scc_partition(i) for i in dirty]
        for i, new_comp in zip(dirty, fresh):
            if new_comp != self._comps[i]:
                self._comps[i] = new_comp
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Coarse-graph internals
    # ------------------------------------------------------------------

    def _rebuild_from_components(self) -> None:
        """Recompute ``P_r``, ``pi``, and the ``H`` bundle arrays from the
        current ``C_i`` — the same fold and contraction the cold paths run,
        so the result is bit-for-bit a cold rebuild."""
        partition = Partition.trivial(self.n)
        for comp in self._comps:
            partition = partition.meet(comp)
        self._partition = partition
        self._pi = partition.labels
        self._nb = partition.n_blocks
        self._weights = partition.block_sizes()
        self._ctails = self._pi[self._tails]
        self._cheads = self._pi[self._heads]
        cross = self._ctails != self._cheads
        ct, ch, cq = combine_parallel_edges(
            self._ctails[cross], self._cheads[cross], self._probs[cross]
        )
        self._cq_tails = np.ascontiguousarray(ct, dtype=np.int64)
        self._cq_heads = np.ascontiguousarray(ch, dtype=np.int64)
        self._cq_probs = np.ascontiguousarray(cq, dtype=np.float64)
        self._cq_sortkey = (
            self._cq_tails * np.int64(max(self._nb, 1)) + self._cq_heads
        )

    def _bundle_q(self, probs: np.ndarray) -> float:
        """``1 - prod(1 - p)`` over one bundle's members, canonical order.

        Mirrors :func:`repro.graph.builder.combine_parallel_edges` exactly:
        members arrive in canonical original-edge order (its stable lexsort
        preserves that order within a bundle), log-miss terms are
        accumulated sequentially (``np.add.at`` is unbuffered), and the
        result is clipped to ``(0, 1]`` — so the maintained ``q`` is
        bit-for-bit what a static contraction would produce.
        """
        with np.errstate(divide="ignore"):
            log_miss = np.log1p(-probs)
        total = np.zeros(1, dtype=np.float64)
        np.add.at(total, np.zeros(probs.size, dtype=np.intp), log_miss)
        q = -np.expm1(total[0])
        return float(np.clip(q, np.nextafter(0.0, 1.0), 1.0))

    def _patch_bundle(self, cu: int, cv: int) -> bool:
        """Recompute bundle ``(cu, cv)`` from its current member edges.

        Fast-path only (``pi`` unchanged).  Returns True when the coarse
        graph actually changed — a bundle appeared, vanished, or had its
        ``q`` change bitwise.
        """
        members = (self._ctails == cu) & (self._cheads == cv)
        probs = self._probs[members]
        key = cu * max(self._nb, 1) + cv
        pos = int(np.searchsorted(self._cq_sortkey, key))
        exists = (pos < self._cq_sortkey.size
                  and int(self._cq_sortkey[pos]) == key)
        if probs.size == 0:
            if not exists:
                return False
            self._cq_tails = np.delete(self._cq_tails, pos)
            self._cq_heads = np.delete(self._cq_heads, pos)
            self._cq_probs = np.delete(self._cq_probs, pos)
            self._cq_sortkey = np.delete(self._cq_sortkey, pos)
            return True
        q = self._bundle_q(probs)
        if exists:
            if float(self._cq_probs[pos]) == q:
                return False
            self._cq_probs[pos] = q
            return True
        self._cq_tails = np.insert(self._cq_tails, pos, np.int64(cu))
        self._cq_heads = np.insert(self._cq_heads, pos, np.int64(cv))
        self._cq_probs = np.insert(self._cq_probs, pos, np.float64(q))
        self._cq_sortkey = np.insert(self._cq_sortkey, pos, np.int64(key))
        return True

    # ------------------------------------------------------------------
    # Updates (Algorithm 7)
    # ------------------------------------------------------------------

    def insert_edge(self, u: int, v: int, p: float) -> dict:
        """Insert edge ``(u, v)`` with probability ``p``."""
        return self.apply_deltas([Delta("insert", u, v, p)])

    def delete_edge(self, u: int, v: int) -> dict:
        """Delete edge ``(u, v)``."""
        return self.apply_deltas([Delta("delete", u, v)])

    def _validate_deltas(self, deltas: Sequence[Delta]) -> None:
        """Check the whole batch against a simulated edge set first.

        Makes :meth:`apply_deltas` all-or-nothing at the *graph* level: a
        malformed delta anywhere in the batch raises before any state is
        touched, so the serving layer can map it to a 400 without ever
        publishing (or holding) a half-applied model.
        """
        overlay: "dict[tuple[int, int], bool]" = {}
        for d in deltas:
            u, v = int(d.u), int(d.v)
            if d.op == "insert":
                if u == v:
                    raise CoarseningError("self-loops are not allowed")
                if not (0 <= u < self.n and 0 <= v < self.n):
                    raise CoarseningError(
                        f"edge endpoints must lie in [0, {self.n})"
                    )
                if d.p is None or not 0.0 < d.p <= 1.0:
                    raise CoarseningError(
                        "influence probability must lie in (0, 1]"
                    )
                if overlay.get((u, v), self.has_edge(u, v)):
                    raise CoarseningError(f"edge ({u}, {v}) already present")
                overlay[(u, v)] = True
            else:
                if not overlay.get((u, v), self.has_edge(u, v)):
                    raise CoarseningError(f"edge ({u}, {v}) not present")
                overlay[(u, v)] = False

    def _update_sample_after_insert(self, i: int, u: int, v: int) -> bool:
        """Assess sample ``i`` after a materialised insert; True when its
        SCCs need recomputation (the caller defers it to the batch end)."""
        labels = self._comps[i].labels
        if labels[u] == labels[v]:
            # Intra-SCC edge: every new path x ~> u -> v ~> y already
            # existed via u ~> v inside the component.  No SCC change.
            self.stats.scc_skipped += 1
            self.stats.scc_pruned += 1
            return False
        reaches = self._sample_reaches(i, v, u)
        if reaches is False:
            # No live path v ~> u, so u -> v closes no cycle: the sample
            # gains reachability but its SCCs are exactly as before.
            self.stats.scc_skipped += 1
            self.stats.scc_pruned += 1
            return False
        self.stats.scc_recomputations += 1
        return True

    def _update_sample_after_delete(self, i: int, u: int, v: int) -> bool:
        """Assess sample ``i`` after a materialised delete; True when its
        SCCs need recomputation (the caller defers it to the batch end)."""
        labels = self._comps[i].labels
        if labels[u] != labels[v]:
            # The edge crossed two SCCs, so it lay on no cycle; removing
            # it cannot split (or otherwise change) any component.
            self.stats.scc_skipped += 1
            self.stats.scc_pruned += 1
            return False
        self.stats.scc_recomputations += 1
        return True

    def apply_deltas(self, deltas: "Sequence[Delta] | Iterable[Delta]") -> dict:
        """Apply a batch of edge mutations (Algorithm 7, batched).

        The batch is validated up front (all-or-nothing), pruning checks
        run per materialised delta (see the module docstring), and all the
        SCC recomputations the checks could not prune are deferred and run
        **once** against the final masks — one batched multi-sample kernel
        call when the backend supports it.  The partition/bundle state is
        likewise repaired once at the end: a single
        ``_rebuild_from_components`` if any sample's partition changed,
        else one exact recompute per touched coarse bundle.

        Returns a summary dict ``{"applied", "fast", "rebuilt",
        "coarse_changed"}`` — ``coarse_changed`` is False exactly when the
        maintained ``H``/``pi`` survived the batch bit-for-bit, which the
        serving layer uses to retain the published model object (and the
        sample pools bound to it) across the epoch.
        """
        deltas = list(deltas)
        if not deltas:
            return {"applied": 0, "fast": 0, "rebuilt": False,
                    "coarse_changed": False}
        self._validate_deltas(deltas)
        # Samples whose pruning checks failed: their SCCs are recomputed
        # ONCE, against the final masks, after the whole batch has been
        # spliced (one batched kernel call under a batch-capable backend).
        # Deferral is exact — pruned deltas provably leave a sample's
        # partition unchanged, so a never-dirty sample's labels stay the
        # true SCCs of its current mask throughout the loop, and a dirty
        # sample skips further checks (its labels are stale) and heads
        # straight to the batched recomputation.
        dirty: "dict[int, None]" = {}
        touched: "dict[tuple[int, int], None]" = {}
        for d in deltas:
            u, v = int(d.u), int(d.v)
            if d.op == "insert":
                p = float(d.p)  # type: ignore[arg-type]
                self.stats.insertions += 1
                hits = self._insert_coins(u, v, p)
                pos, _ = self._find(u, v)
                self._splice_insert(pos, u, v, p, hits)
                for i in range(self.r):
                    if not hits[i]:
                        self.stats.scc_skipped += 1
                    elif i in dirty:
                        self.stats.scc_recomputations += 1
                    elif self._update_sample_after_insert(i, u, v):
                        dirty[i] = None
            else:
                self.stats.deletions += 1
                pos, _ = self._find(u, v)
                kept = self._keep[:, pos].copy()
                self._splice_delete(pos, u)
                for i in range(self.r):
                    if not kept[i]:
                        self.stats.scc_skipped += 1
                    elif i in dirty:
                        self.stats.scc_recomputations += 1
                    elif self._update_sample_after_delete(i, u, v):
                        dirty[i] = None
            touched[(int(self._pi[u]), int(self._pi[v]))] = None
        changed = self._refresh_samples(list(dirty)) if dirty else False
        coarse_changed = False
        if changed:
            self.stats.full_rebuilds += 1
            self._rebuild_from_components()
            coarse_changed = True
        else:
            self.stats.fast_updates += len(deltas)
            for cu, cv in touched:
                if cu != cv and self._patch_bundle(cu, cv):
                    coarse_changed = True
        self._version += 1
        inc("dynamic.deltas", len(deltas))
        return {"applied": len(deltas), "fast": 0 if changed else len(deltas),
                "rebuilt": changed, "coarse_changed": coarse_changed}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def current_graph(self) -> InfluenceGraph:
        """The latest snapshot of the underlying influence graph ``G``.

        Built straight from the maintained CSR-ordered arrays (no sort)
        and cached per update-version, so repeated calls within one epoch
        share the same immutable object — and its content digest.
        """
        if self._graph_cache is not None and self._graph_cache[0] == self._version:
            return self._graph_cache[1]
        graph = InfluenceGraph(
            self._indptr.copy(), self._heads.copy(), self._probs.copy(),
            validate=False,  # library-maintained arrays, invariants upheld
        )
        self._graph_cache = (self._version, graph)
        return graph

    def snapshot(self) -> CoarsenResult:
        """The maintained coarsening as a :class:`CoarsenResult`.

        Cached per update-version; the coarse CSR is assembled from the
        maintained sorted bundle arrays without any Python-level
        iteration, so a snapshot costs O(coarse_m) array copies.
        """
        if (self._snapshot_cache is not None
                and self._snapshot_cache[0] == self._version):
            return self._snapshot_cache[1]
        counts = np.bincount(self._cq_tails, minlength=self._nb)
        indptr = np.zeros(self._nb + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        coarse = InfluenceGraph(
            indptr, self._cq_heads.copy(), self._cq_probs.copy(),
            weights=self._weights.copy(),
            validate=False,  # library-maintained arrays, invariants upheld
        )
        stats = CoarsenStats(
            r=self.r,
            input_vertices=self.n,
            input_edges=self.m,
            output_vertices=coarse.n,
            output_edges=coarse.m,
        )
        result = CoarsenResult(
            coarse=coarse, pi=self._pi.copy(), partition=self._partition,
            stats=stats,
        )
        self._snapshot_cache = (self._version, result)
        return result

    def reference_coarsening(self) -> CoarsenResult:
        """Coarsen the current graph from scratch *with the same samples*.

        Used by tests and the dynamic-updates benchmark to verify that the
        incremental state matches a full recomputation.  Under
        ``coins="addressable"`` the stronger oracle
        :func:`coarsen_addressable` (which re-derives the samples
        themselves) applies as well.
        """
        partition = Partition.trivial(self.n)
        for comp in self._comps:
            partition = partition.meet(comp)
        coarse, pi = coarsen(self.current_graph(), partition)
        return CoarsenResult(
            coarse=coarse,
            pi=pi,
            partition=partition,
            stats=CoarsenStats(r=self.r),
        )
