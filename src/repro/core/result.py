"""Result objects returned by the coarsening implementations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CoarseningError
from ..graph.influence_graph import InfluenceGraph
from ..partition.partition import Partition
from ..rng import ensure_rng

__all__ = ["CoarsenResult", "CoarsenStats"]


@dataclass
class CoarsenStats:
    """Timing/size observability for a coarsening run.

    ``stage_seconds`` is the per-stage wall-time breakdown accumulated by
    :class:`repro.obs.StageTimes` — canonical keys are ``sample``, ``scc``,
    ``meet`` and ``contract`` (see ``docs/observability.md``); the three
    first-stage keys sum to ≈ ``first_stage_seconds`` and ``contract`` to
    ≈ ``second_stage_seconds``, modulo loop overhead.
    """

    r: int = 0
    first_stage_seconds: float = 0.0
    second_stage_seconds: float = 0.0
    input_vertices: int = 0
    input_edges: int = 0
    output_vertices: int = 0
    output_edges: int = 0
    stage_seconds: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.first_stage_seconds + self.second_stage_seconds

    def stage_summary(self) -> str:
        """One-line ``stage time`` report (empty string when no breakdown)."""
        if not self.stage_seconds:
            return ""
        parts = [f"{name} {secs:.3f} s"
                 for name, secs in self.stage_seconds.items()]
        return "stages: " + " | ".join(parts)

    @property
    def vertex_reduction_ratio(self) -> float:
        """``|W| / |V|`` — lower is better."""
        if self.input_vertices == 0:
            return 1.0
        return self.output_vertices / self.input_vertices

    @property
    def edge_reduction_ratio(self) -> float:
        """``|F| / |E|`` — lower is better."""
        if self.input_edges == 0:
            return 1.0
        return self.output_edges / self.input_edges


@dataclass
class CoarsenResult:
    """A coarsened influence graph together with the correspondence mapping.

    Attributes
    ----------
    coarse:
        The vertex-weighted influence graph ``H = (W, F, q, w)``.
    pi:
        The correspondence mapping ``pi : V -> W`` as an ``int64`` array —
        ``pi[v]`` is the coarse vertex holding original vertex ``v``.
    partition:
        The coarsened vertex partition (blocks indexed by coarse vertex id).
    stats:
        Run statistics (timings, sizes).
    """

    coarse: InfluenceGraph
    pi: np.ndarray
    partition: Partition
    stats: CoarsenStats

    def map_seeds(self, seeds: np.ndarray) -> np.ndarray:
        """Translate a seed set ``S ⊆ V`` to ``pi(S) ⊆ W`` (deduplicated)."""
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size and (seeds.min() < 0 or seeds.max() >= self.pi.size):
            raise CoarseningError("seed vertex outside the original graph")
        return np.unique(self.pi[seeds])

    def pull_back(self, coarse_seeds: np.ndarray, rng=None) -> np.ndarray:
        """Translate coarse seeds ``T ⊆ W`` back to ``S ⊆ V`` with ``pi(S) = T``.

        Each coarse vertex is replaced by a uniformly random member of its
        block (Algorithm 4, line 2).
        """
        rng = ensure_rng(rng)
        coarse_seeds = np.asarray(coarse_seeds, dtype=np.int64)
        blocks = self.partition.blocks()
        out = np.empty(coarse_seeds.size, dtype=np.int64)
        for i, c in enumerate(coarse_seeds):
            members = blocks[int(c)]
            out[i] = int(members[rng.integers(members.size)])
        return out
