"""Algorithm 1 — the speed-oriented, linear-space implementation.

Runs in O(r (n + m)) time with O(n + m) resident space: the first stage
samples the ``r`` live-edge graphs *sequentially* (one resident at a time)
and folds each sample's SCC partition into the running meet; the second stage
builds ``H`` with a single grouped pass over the edges.
"""

from __future__ import annotations

import time

from ..graph.influence_graph import InfluenceGraph
from ..obs import STAGE_CONTRACT, StageTimes, inc, span
from ..scc import DEFAULT_SCC_BACKEND
from .coarsen import coarsen
from .result import CoarsenResult, CoarsenStats
from .robust_scc import robust_scc_partition

__all__ = ["coarsen_influence_graph"]


def coarsen_influence_graph(
    graph: InfluenceGraph,
    r: int = 16,
    rng=None,
    scc_backend: str = DEFAULT_SCC_BACKEND,
    validate: bool = False,
) -> CoarsenResult:
    """Coarsen ``graph`` by its r-robust SCC partition (Algorithm 1).

    Parameters
    ----------
    graph:
        Input influence graph (in memory).
    r:
        Robustness parameter; the paper's default sweet spot is 16
        (Section 7.5).  Larger ``r`` = finer partition = larger, more
        accurate coarse graph (Theorems 4.14/4.15).
    rng:
        Seed or generator; fixes the sampled live-edge graphs.
    scc_backend:
        In-memory SCC implementation (see :mod:`repro.scc`).
    validate:
        Re-verify the strong-connectivity precondition before contracting
        (always true by construction; useful in tests).

    Returns
    -------
    CoarsenResult
        ``H``, the mapping ``pi``, the partition, and run statistics.
    """
    stages = StageTimes()
    with span("coarsen_linear", r=r, n=graph.n, m=graph.m,
              backend=scc_backend):
        t0 = time.perf_counter()
        partition = robust_scc_partition(
            graph, r, rng=rng, scc_backend=scc_backend, stages=stages
        )
        t1 = time.perf_counter()
        with stages.stage(STAGE_CONTRACT):
            coarse, pi = coarsen(graph, partition, validate=validate)
        t2 = time.perf_counter()
    inc("coarsen.runs")
    inc("coarsen.samples", r)
    stats = CoarsenStats(
        r=r,
        first_stage_seconds=t1 - t0,
        second_stage_seconds=t2 - t1,
        input_vertices=graph.n,
        input_edges=graph.m,
        output_vertices=coarse.n,
        output_edges=coarse.m,
        stage_seconds=stages.as_dict(),
    )
    return CoarsenResult(coarse=coarse, pi=pi, partition=partition, stats=stats)
