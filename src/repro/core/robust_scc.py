"""r-robust strongly connected components (Definition 4.9, Theorem 4.11).

A vertex set is an *r-robust SCC* with regard to ``r`` live-edge samples
``G_1..G_r`` when it is strongly connected in every ``G_i`` and maximal.  By
Theorem 4.11 the family of all r-robust SCCs is the meet of the per-sample
SCC partitions, so it can be built incrementally — one sampled graph resident
at a time (first stage of Algorithm 1):

    P_0 = {V};   P_i = P_{i-1} ∧ SCC(G_i)

which is exactly what :func:`robust_scc_partition` does.
"""

from __future__ import annotations

import numpy as np

from ..diffusion.live_edge import sample_live_edge_csr
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..obs import STAGE_MEET, STAGE_SAMPLE, STAGE_SCC, StageTimes, span
from ..partition.partition import Partition
from ..rng import ensure_rng
from ..scc import DEFAULT_SCC_BACKEND, scc_labels

__all__ = ["robust_scc_partition", "robust_scc_refinement_sequence"]


def robust_scc_partition(
    graph: InfluenceGraph,
    r: int,
    rng=None,
    scc_backend: str = DEFAULT_SCC_BACKEND,
    keep_samples: bool = False,
    stages: "StageTimes | None" = None,
    refine: "bool | None" = None,
) -> "Partition | tuple[Partition, list[tuple[np.ndarray, np.ndarray]]]":
    """The partition of all r-robust SCCs w.r.t. ``r`` fresh live-edge samples.

    Parameters
    ----------
    graph:
        Input influence graph.
    r:
        Number of live-edge samples; larger ``r`` gives finer partitions
        (more conservative coarsening).  ``r = 0`` returns the trivial
        one-block partition ``{V}`` per the paper's convention.
    rng:
        Seed or generator (fixing it fixes the sampled graphs).
    scc_backend:
        SCC implementation to use per sample (see :mod:`repro.scc`).
    keep_samples:
        Also return the sampled ``(indptr, heads)`` CSRs — needed by the
        dynamic-update module and by invariant tests.  Costs O(r * m) memory,
        so leave off in production runs.
    stages:
        Optional :class:`~repro.obs.StageTimes` accumulating the
        ``sample``/``scc``/``meet`` wall-time breakdown (one is created
        internally when omitted, so tracer spans are emitted either way).
    refine:
        Make the fold *refinement-aware*: each round passes the running
        partition to the SCC backend so it can skip work that provably
        cannot refine the meet any further (Theorem 4.11's incremental
        structure — blocks only ever split, so singleton-block vertices are
        settled forever).  ``None`` (the default) enables this exactly for
        the backends that support a block restriction (``fwbw``); ``True``
        forces it (an :class:`AlgorithmError` for other backends); ``False``
        recomputes full per-sample SCCs.  The result is identical either
        way — the restriction is exact, not a heuristic; tests pin this.
    """
    if r < 0:
        raise AlgorithmError("r must be non-negative")
    if refine is None:
        refine = scc_backend == "fwbw"
    elif refine and scc_backend != "fwbw":
        raise AlgorithmError(
            f"refine=True requires a block-restrictable backend (fwbw), "
            f"not {scc_backend!r}"
        )
    rng = ensure_rng(rng)
    if stages is None:
        stages = StageTimes()
    partition = Partition.trivial(graph.n)
    samples: list[tuple[np.ndarray, np.ndarray]] = []
    with span("robust_scc_partition", r=r, n=graph.n, m=graph.m,
              backend=scc_backend, refine=refine):
        for i in range(r):
            with stages.stage(STAGE_SAMPLE, round=i):
                indptr, heads = sample_live_edge_csr(graph, rng)
            # The trivial first-round partition has no singleton blocks, so
            # the restriction could not prune anything — skip its setup.
            blocks = partition.labels if refine and i > 0 else None
            with stages.stage(STAGE_SCC, round=i):
                labels = scc_labels(indptr, heads, backend=scc_backend,
                                    block_labels=blocks)
            with stages.stage(STAGE_MEET, round=i):
                partition = partition.meet(Partition(labels, canonical=False))
            if keep_samples:
                samples.append((indptr, heads))
            if partition.n_blocks == graph.n:
                # Already the finest partition; further meets cannot refine
                # it.  Samples must still be drawn when the caller keeps them.
                if not keep_samples:
                    break
    if keep_samples:
        while len(samples) < r:
            samples.append(sample_live_edge_csr(graph, rng))
        return partition, samples
    return partition


def robust_scc_refinement_sequence(
    graph: InfluenceGraph, r: int, rng=None,
    scc_backend: str = DEFAULT_SCC_BACKEND,
) -> list[Partition]:
    """The chain ``P_1, P_2, ..., P_r`` over one shared sample sequence.

    Successive partitions use nested sample sets, so the monotonicity
    theorems (4.14/4.15) hold *deterministically* along the chain — this is
    what the r-sweep figures (4–6, 10) iterate over without resampling.
    """
    rng = ensure_rng(rng)
    partition = Partition.trivial(graph.n)
    chain: list[Partition] = []
    for _ in range(r):
        indptr, heads = sample_live_edge_csr(graph, rng)
        labels = scc_labels(indptr, heads, backend=scc_backend)
        partition = partition.meet(Partition(labels, canonical=False))
        chain.append(partition)
    return chain
