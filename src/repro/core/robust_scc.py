"""r-robust strongly connected components (Definition 4.9, Theorem 4.11).

A vertex set is an *r-robust SCC* with regard to ``r`` live-edge samples
``G_1..G_r`` when it is strongly connected in every ``G_i`` and maximal.  By
Theorem 4.11 the family of all r-robust SCCs is the meet of the per-sample
SCC partitions, so it can be built incrementally — one sampled graph resident
at a time (first stage of Algorithm 1):

    P_0 = {V};   P_i = P_{i-1} ∧ SCC(G_i)

which is exactly what :func:`robust_scc_partition` does.
"""

from __future__ import annotations

import numpy as np

from ..diffusion.live_edge import (
    live_edge_csr_from_mask,
    sample_live_edge_csr,
    sample_live_edge_mask,
)
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..obs import STAGE_MEET, STAGE_SAMPLE, STAGE_SCC, StageTimes, inc, span
from ..partition.partition import Partition
from ..rng import ensure_rng
from ..scc import (
    DEFAULT_SCC_BACKEND,
    backend_spec,
    multi_chunk_cap,
    multi_scc_labels,
    scc_labels,
)

__all__ = ["robust_scc_partition", "robust_scc_refinement_sequence"]


def robust_scc_partition(
    graph: InfluenceGraph,
    r: int,
    rng=None,
    scc_backend: str = DEFAULT_SCC_BACKEND,
    keep_samples: bool = False,
    stages: "StageTimes | None" = None,
    refine: "bool | None" = None,
) -> "Partition | tuple[Partition, list[tuple[np.ndarray, np.ndarray]]]":
    """The partition of all r-robust SCCs w.r.t. ``r`` fresh live-edge samples.

    Parameters
    ----------
    graph:
        Input influence graph.
    r:
        Number of live-edge samples; larger ``r`` gives finer partitions
        (more conservative coarsening).  ``r = 0`` returns the trivial
        one-block partition ``{V}`` per the paper's convention.
    rng:
        Seed or generator (fixing it fixes the sampled graphs).
    scc_backend:
        SCC implementation to use per sample (see :mod:`repro.scc`).
    keep_samples:
        Also return the sampled ``(indptr, heads)`` CSRs — needed by the
        dynamic-update module and by invariant tests.  Costs O(r * m) memory,
        so leave off in production runs.
    stages:
        Optional :class:`~repro.obs.StageTimes` accumulating the
        ``sample``/``scc``/``meet`` wall-time breakdown (one is created
        internally when omitted, so tracer spans are emitted either way).
    refine:
        Make the fold *refinement-aware*: each round passes the running
        partition to the SCC backend so it can skip work that provably
        cannot refine the meet any further (Theorem 4.11's incremental
        structure — blocks only ever split, so singleton-block vertices are
        settled forever).  ``None`` (the default) enables this exactly for
        the backends that support a block restriction (``fwbw`` and
        ``multi``); ``True`` forces it (an :class:`AlgorithmError` for
        other backends); ``False`` recomputes full per-sample SCCs.  The
        result is identical either way — the restriction is exact, not a
        heuristic; tests pin this.  Under ``scc_backend="multi"`` the fold
        runs in chunks of :func:`repro.scc.multi_chunk_cap` rounds (wider
        on smaller graphs, where batching amortises best) in both modes:
        refining chunks see the meet of earlier ones, and the full fold
        takes the same finest-partition early exit as the per-sample loop
        at chunk boundaries.
    """
    if r < 0:
        raise AlgorithmError("r must be non-negative")
    restrictable = backend_spec(scc_backend).supports_block_labels
    if refine is None:
        refine = restrictable
    elif refine and not restrictable:
        raise AlgorithmError(
            f"refine=True requires a block-restrictable backend "
            f"(fwbw, multi), not {scc_backend!r}"
        )
    rng = ensure_rng(rng)
    if stages is None:
        stages = StageTimes()
    partition = Partition.trivial(graph.n)
    if scc_backend == "multi":
        return _robust_partition_batched(
            graph, r, rng, keep_samples, stages, refine, partition
        )
    samples: list[tuple[np.ndarray, np.ndarray]] = []
    with span("robust_scc_partition", r=r, n=graph.n, m=graph.m,
              backend=scc_backend, refine=refine):
        for i in range(r):
            with stages.stage(STAGE_SAMPLE, round=i):
                indptr, heads = sample_live_edge_csr(graph, rng)
            # The trivial first-round partition has no singleton blocks, so
            # the restriction could not prune anything — skip its setup.
            blocks = partition.labels if refine and i > 0 else None
            with stages.stage(STAGE_SCC, round=i):
                labels = scc_labels(indptr, heads, backend=scc_backend,
                                    block_labels=blocks)
            with stages.stage(STAGE_MEET, round=i):
                partition = partition.meet(Partition(labels, canonical=False))
            if keep_samples:
                samples.append((indptr, heads))
            if partition.n_blocks == graph.n:
                # Already the finest partition; further meets cannot refine
                # it.  Samples must still be drawn when the caller keeps them.
                if not keep_samples:
                    break
    if keep_samples:
        while len(samples) < r:
            samples.append(sample_live_edge_csr(graph, rng))
        return partition, samples
    return partition


def _robust_partition_batched(
    graph: InfluenceGraph,
    r: int,
    rng,
    keep_samples: bool,
    stages: StageTimes,
    refine: bool,
    partition: Partition,
) -> "Partition | tuple[Partition, list[tuple[np.ndarray, np.ndarray]]]":
    """The ``scc_backend="multi"`` fold: one batched kernel pass (or a few
    refinement chunks) over all ``r`` keep-masks.

    Draws exactly the same masks in exactly the same RNG order as the
    per-sample loop, and folds the per-round label rows through the same
    sequence of meets — so the result (and everything derived from it:
    ``pi``, the coarse graph ``H``, its digest) is bit-for-bit identical
    to the per-sample path.  The differential suite pins this.
    """
    masks = np.empty((r, graph.m), dtype=bool)
    drawn = 0

    def draw_until(stop: int) -> None:
        # Masks are drawn in fold order, one rng draw per round — the same
        # stream the per-sample loop consumes, so chunked early exit cannot
        # perturb the sampled graphs.
        nonlocal drawn
        while drawn < stop:
            with stages.stage(STAGE_SAMPLE, round=drawn):
                masks[drawn] = sample_live_edge_mask(graph, rng)
            inc("sample.live_edge_graphs")
            inc("sample.edges_kept", int(np.count_nonzero(masks[drawn])))
            drawn += 1

    with span("robust_scc_partition", r=r, n=graph.n, m=graph.m,
              backend="multi", refine=refine):
        # Both modes fold in chunks: refine mode to refresh the block
        # restriction, full mode so the finest-partition early exit (the
        # same one the per-sample fold takes) fires between kernel calls.
        # Width scales inversely with graph size — see multi_chunk_cap.
        chunk = multi_chunk_cap(graph.m)
        for start in range(0, r, chunk):
            if partition.n_blocks == graph.n and not keep_samples:
                break
            stop = min(start + chunk, r)
            draw_until(stop)
            # As in the per-sample fold, the trivial partition has no
            # singleton blocks, so the first chunk skips restriction setup.
            blocks = (partition.labels
                      if refine and partition.n_blocks > 1 else None)
            sub = masks[start:stop]
            with stages.stage(STAGE_SCC, round=start):
                rows = multi_scc_labels(graph.indptr, graph.heads, sub,
                                        block_labels=blocks)
            for j in range(rows.shape[0]):
                with stages.stage(STAGE_MEET, round=start + j):
                    partition = partition.meet(
                        Partition(rows[j], canonical=False)
                    )
    if keep_samples:
        draw_until(r)
        samples = [live_edge_csr_from_mask(graph, masks[i]) for i in range(r)]
        return partition, samples
    return partition


def robust_scc_refinement_sequence(
    graph: InfluenceGraph, r: int, rng=None,
    scc_backend: str = DEFAULT_SCC_BACKEND,
) -> list[Partition]:
    """The chain ``P_1, P_2, ..., P_r`` over one shared sample sequence.

    Successive partitions use nested sample sets, so the monotonicity
    theorems (4.14/4.15) hold *deterministically* along the chain — this is
    what the r-sweep figures (4–6, 10) iterate over without resampling.
    """
    rng = ensure_rng(rng)
    partition = Partition.trivial(graph.n)
    chain: list[Partition] = []
    for _ in range(r):
        indptr, heads = sample_live_edge_csr(graph, rng)
        labels = scc_labels(indptr, heads, backend=scc_backend)
        partition = partition.meet(Partition(labels, canonical=False))
        chain.append(partition)
    return chain
