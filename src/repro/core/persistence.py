"""Saving and loading coarsening results.

Coarsening is a preprocessing investment: the paper's workflow computes
``H`` and ``pi`` once and amortises them over many influence queries
(Section 6).  This module persists a :class:`CoarsenResult` as a single
``.npz`` archive — CSR arrays, vertex weights, the correspondence mapping
and the run statistics — so later sessions (or other processes) can load it
without recomputing.

Format: numpy's compressed archive with a format-version field; refuses to
load archives written by a newer layout.  Version history:

* **v1** — CSR arrays, ``pi``, and the scalar :class:`CoarsenStats`
  fields.
* **v2** — adds ``stage_seconds`` (the per-stage wall-time breakdown) and
  ``extras`` (run provenance: workers/executor/rounds for parallel runs,
  ``f_prime_edges`` for sublinear runs, ...) to the JSON meta blob, so a
  round trip is lossless for every stats field.  v1 archives still load —
  the two dicts simply come back empty.

Paths are normalised to carry the ``.npz`` suffix *before* hitting numpy:
``np.savez_compressed`` silently appends it, so without normalisation
``save_coarsening(p)`` followed by ``load_coarsening(p)`` would look for a
file that was never written and die with a confusing ``FileNotFoundError``.
"""

from __future__ import annotations

import json
import os
import zipfile

import numpy as np

from ..errors import GraphFormatError
from ..graph.influence_graph import InfluenceGraph
from ..partition.partition import Partition
from .result import CoarsenResult, CoarsenStats

__all__ = ["save_coarsening", "load_coarsening", "peek_coarsening_meta"]

_FORMAT_VERSION = 2


def _resolve_archive_path(path: "str | os.PathLike[str]") -> str:
    """The path numpy will actually read/write (``.npz`` suffix enforced)."""
    resolved = os.fspath(path)
    if not resolved.endswith(".npz"):
        resolved += ".npz"
    return resolved


def _json_scalar(obj):
    """Coerce numpy scalars/arrays hiding in stats dicts into JSON types."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"{type(obj).__name__} is not JSON-serialisable")


def save_coarsening(result: CoarsenResult, path: "str | os.PathLike[str]") -> None:
    """Write ``result`` to ``path`` (a ``.npz`` archive).

    A missing ``.npz`` suffix is appended — the archive always lands at the
    name :func:`load_coarsening` will resolve for the same ``path``.
    """
    resolved = _resolve_archive_path(path)
    stats = result.stats
    meta = {
        "version": _FORMAT_VERSION,
        "r": stats.r,
        "first_stage_seconds": stats.first_stage_seconds,
        "second_stage_seconds": stats.second_stage_seconds,
        "input_vertices": stats.input_vertices,
        "input_edges": stats.input_edges,
        "output_vertices": stats.output_vertices,
        "output_edges": stats.output_edges,
        "stage_seconds": stats.stage_seconds,
        "extras": stats.extras,
    }
    try:
        blob = json.dumps(meta, default=_json_scalar).encode("utf-8")
    except TypeError as exc:
        raise GraphFormatError(
            f"{resolved}: stats contain non-serialisable values ({exc})"
        ) from exc
    np.savez_compressed(
        resolved,
        meta=np.frombuffer(blob, dtype=np.uint8),
        indptr=result.coarse.indptr,
        heads=result.coarse.heads,
        probs=result.coarse.probs,
        weights=result.coarse.weights,
        pi=result.pi,
    )


def _open_archive(resolved: str):
    """``np.load`` with missing/corrupt files mapped to GraphFormatError."""
    try:
        return np.load(resolved)
    except FileNotFoundError as exc:
        raise GraphFormatError(
            f"{resolved}: no such coarsening archive"
        ) from exc
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        # Truncated downloads, foreign formats, and plain garbage all land
        # here; callers get one exception type for "this is not usable".
        raise GraphFormatError(
            f"{resolved}: not a repro coarsening archive ({exc})"
        ) from exc


def peek_coarsening_meta(path: "str | os.PathLike[str]") -> dict:
    """Read only the JSON meta blob of an archive (no CSR arrays).

    The warm-start hook for the ``repro.serve`` model cache: deciding
    whether an archive matches a query key needs the provenance recorded in
    ``extras`` (``r``, the graph digest, the backend) but not the graph
    itself, and the meta blob is a few hundred bytes against potentially
    gigabytes of arrays.  Raises :class:`GraphFormatError` for missing or
    foreign files, like :func:`load_coarsening`.
    """
    resolved = _resolve_archive_path(path)
    with _open_archive(resolved) as archive:
        try:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        except (KeyError, ValueError) as exc:
            raise GraphFormatError(
                f"{resolved}: not a repro coarsening archive"
            ) from exc
    if not isinstance(meta, dict):
        raise GraphFormatError(f"{resolved}: malformed archive meta")
    return meta


def load_coarsening(path: "str | os.PathLike[str]") -> CoarsenResult:
    """Load a :class:`CoarsenResult` previously written by
    :func:`save_coarsening`.

    Accepts the same ``path`` value that was passed to
    :func:`save_coarsening` — with or without the ``.npz`` suffix — and
    reports the *resolved* name when the archive is missing or malformed.
    """
    resolved = _resolve_archive_path(path)
    with _open_archive(resolved) as archive:
        try:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        except (KeyError, ValueError) as exc:
            raise GraphFormatError(
                f"{resolved}: not a repro coarsening archive"
            ) from exc
        if meta.get("version", 0) > _FORMAT_VERSION:
            raise GraphFormatError(
                f"{resolved}: written by a newer format "
                f"(version {meta['version']} > {_FORMAT_VERSION})"
            )
        coarse = InfluenceGraph(
            archive["indptr"], archive["heads"], archive["probs"],
            weights=archive["weights"],
        )
        pi = archive["pi"].astype(np.int64)
    stats = CoarsenStats(
        r=int(meta["r"]),
        first_stage_seconds=float(meta["first_stage_seconds"]),
        second_stage_seconds=float(meta["second_stage_seconds"]),
        input_vertices=int(meta["input_vertices"]),
        input_edges=int(meta["input_edges"]),
        output_vertices=int(meta["output_vertices"]),
        output_edges=int(meta["output_edges"]),
        # v1 archives predate these fields; they load as empty dicts.
        stage_seconds=dict(meta.get("stage_seconds") or {}),
        extras=dict(meta.get("extras") or {}),
    )
    return CoarsenResult(
        coarse=coarse, pi=pi, partition=Partition(pi), stats=stats
    )
