"""Saving and loading coarsening results.

Coarsening is a preprocessing investment: the paper's workflow computes
``H`` and ``pi`` once and amortises them over many influence queries
(Section 6).  This module persists a :class:`CoarsenResult` as a single
``.npz`` archive — CSR arrays, vertex weights, the correspondence mapping
and the run statistics — so later sessions (or other processes) can load it
without recomputing.

Format: numpy's compressed archive with a format-version field; refuses to
load archives written by a newer layout.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..errors import GraphFormatError
from ..graph.influence_graph import InfluenceGraph
from ..partition.partition import Partition
from .result import CoarsenResult, CoarsenStats

__all__ = ["save_coarsening", "load_coarsening"]

_FORMAT_VERSION = 1


def save_coarsening(result: CoarsenResult, path: "str | os.PathLike[str]") -> None:
    """Write ``result`` to ``path`` (a ``.npz`` archive)."""
    stats = result.stats
    meta = {
        "version": _FORMAT_VERSION,
        "r": stats.r,
        "first_stage_seconds": stats.first_stage_seconds,
        "second_stage_seconds": stats.second_stage_seconds,
        "input_vertices": stats.input_vertices,
        "input_edges": stats.input_edges,
        "output_vertices": stats.output_vertices,
        "output_edges": stats.output_edges,
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        indptr=result.coarse.indptr,
        heads=result.coarse.heads,
        probs=result.coarse.probs,
        weights=result.coarse.weights,
        pi=result.pi,
    )


def load_coarsening(path: "str | os.PathLike[str]") -> CoarsenResult:
    """Load a :class:`CoarsenResult` previously written by
    :func:`save_coarsening`."""
    with np.load(path) as archive:
        try:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        except (KeyError, ValueError) as exc:
            raise GraphFormatError(f"{path}: not a repro coarsening archive") from exc
        if meta.get("version", 0) > _FORMAT_VERSION:
            raise GraphFormatError(
                f"{path}: written by a newer format "
                f"(version {meta['version']} > {_FORMAT_VERSION})"
            )
        coarse = InfluenceGraph(
            archive["indptr"], archive["heads"], archive["probs"],
            weights=archive["weights"],
        )
        pi = archive["pi"].astype(np.int64)
    stats = CoarsenStats(
        r=int(meta["r"]),
        first_stage_seconds=float(meta["first_stage_seconds"]),
        second_stage_seconds=float(meta["second_stage_seconds"]),
        input_vertices=int(meta["input_vertices"]),
        input_edges=int(meta["input_edges"]),
        output_vertices=int(meta["output_vertices"]),
        output_edges=int(meta["output_edges"]),
    )
    return CoarsenResult(
        coarse=coarse, pi=pi, partition=Partition(pi), stats=stats
    )
