"""Choosing the robustness parameter r.

The paper fixes r = 16 as the sweet spot between size reduction and
estimation accuracy (Section 7.5).  For a new graph, :func:`r_sweep`
reproduces the analysis behind that choice cheaply: it builds the whole
refinement chain ``P_1 ⊆ P_2 ⊆ ... ⊆ P_rmax`` from *one* shared sample
sequence (so the sweep is deterministically monotone, Theorem 4.14) and
reports each candidate's coarse-graph size.  Accuracy proxies can then be
computed only for the knees of the curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..scc import DEFAULT_SCC_BACKEND
from .coarsen import coarsen
from .robust_scc import robust_scc_refinement_sequence

__all__ = ["RSweepPoint", "r_sweep"]


@dataclass
class RSweepPoint:
    """One candidate r with its coarse-graph size."""

    r: int
    coarse_vertices: int
    coarse_edges: int
    vertex_ratio: float
    edge_ratio: float


def r_sweep(
    graph: InfluenceGraph,
    r_values: Sequence[int] = (1, 2, 4, 8, 16, 32),
    rng=None,
    scc_backend: str = DEFAULT_SCC_BACKEND,
) -> list[RSweepPoint]:
    """Size of the coarsened graph at each candidate ``r``.

    All candidates share one live-edge sample chain, so the returned ratios
    are non-decreasing in ``r`` by construction — a single pass costs
    ``O(max(r_values))`` samples, not ``O(sum)``.
    """
    if not r_values:
        raise AlgorithmError("r_values must be non-empty")
    if any(r < 1 for r in r_values):
        raise AlgorithmError("r candidates must be >= 1")
    r_values = sorted(set(int(r) for r in r_values))
    chain = robust_scc_refinement_sequence(
        graph, max(r_values), rng=rng, scc_backend=scc_backend
    )
    points = []
    for r in r_values:
        coarse, _ = coarsen(graph, chain[r - 1])
        points.append(RSweepPoint(
            r=r,
            coarse_vertices=coarse.n,
            coarse_edges=coarse.m,
            vertex_ratio=coarse.n / graph.n if graph.n else 1.0,
            edge_ratio=coarse.m / graph.m if graph.m else 1.0,
        ))
    return points
