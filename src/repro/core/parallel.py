"""Algorithm 6 — parallel coarsening.

The first stage is embarrassingly parallel: worker ``t`` builds the partition
of all ``r_t``-robust SCCs from its own live-edge samples, with
``sum r_t = r`` balanced so ``|r_t1 - r_t2| <= 1``.  The meet of the ``T``
worker partitions equals the r-robust SCC partition (meet is associative and
commutative), after which the second stage proceeds as in Algorithm 1.

Executors
---------
``"serial"``  — run workers in-process (baseline / debugging);
``"thread"``  — shared-memory parallelism (the paper's OpenMP variant);
``"process"`` — distributed-memory parallelism (the paper's MPI variant);
              the graph is shipped to each worker process, mirroring the
              master-to-slave graph broadcast in Appendix C.1.
"""

from __future__ import annotations

import concurrent.futures
import time
from functools import reduce

import numpy as np

from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..obs import STAGE_CONTRACT, STAGE_MEET, StageTimes, inc, span
from ..partition.partition import Partition
from ..rng import spawn_rngs
from ..scc import DEFAULT_SCC_BACKEND
from .coarsen import coarsen
from .result import CoarsenResult, CoarsenStats
from .robust_scc import robust_scc_partition

__all__ = ["coarsen_influence_graph_parallel", "split_rounds"]

_EXECUTORS = ("serial", "thread", "process")


def split_rounds(r: int, workers: int) -> list[int]:
    """Balanced split ``r_t = floor((r + t - 1) / T)`` (Algorithm 6, line 2)."""
    if workers <= 0:
        raise AlgorithmError("worker count must be positive")
    counts = [(r + t) // workers for t in range(workers)]
    assert sum(counts) == r
    return counts


def _worker(graph: InfluenceGraph, r_t: int, seed: int, scc_backend: str) -> np.ndarray:
    partition = robust_scc_partition(graph, r_t, rng=seed, scc_backend=scc_backend)
    return partition.labels


def coarsen_influence_graph_parallel(
    graph: InfluenceGraph,
    r: int = 16,
    workers: int = 4,
    rng=None,
    executor: str = "thread",
    scc_backend: str = DEFAULT_SCC_BACKEND,
) -> CoarsenResult:
    """Coarsen ``graph`` using ``workers`` parallel partition builders.

    Produces a graph from the same distribution as Algorithm 1 with the same
    total sample count ``r`` (the per-worker RNG streams are derived from
    ``rng``, so a fixed seed gives a reproducible result for a fixed worker
    count).
    """
    if executor not in _EXECUTORS:
        raise AlgorithmError(f"executor must be one of {_EXECUTORS}")
    stages = StageTimes()
    with span("coarsen_parallel", r=r, workers=workers, executor=executor,
              n=graph.n, m=graph.m):
        t0 = time.perf_counter()
        rounds = split_rounds(r, workers)
        child_rngs = spawn_rngs(rng, workers)
        seeds = [int(c.integers(0, 2**62)) for c in child_rngs]

        with span("parallel_partition_build", workers=workers):
            if executor == "serial":
                label_arrays = [
                    _worker(graph, r_t, seed, scc_backend)
                    for r_t, seed in zip(rounds, seeds)
                ]
            else:
                pool_cls = (
                    concurrent.futures.ThreadPoolExecutor
                    if executor == "thread"
                    else concurrent.futures.ProcessPoolExecutor
                )
                with pool_cls(max_workers=workers) as pool:
                    futures = [
                        pool.submit(_worker, graph, r_t, seed, scc_backend)
                        for r_t, seed in zip(rounds, seeds)
                    ]
                    label_arrays = [f.result() for f in futures]

        with stages.stage(STAGE_MEET, workers=workers):
            partitions = [Partition(labels) for labels in label_arrays]
            partition = reduce(lambda a, b: a.meet(b), partitions)
        t1 = time.perf_counter()

        with stages.stage(STAGE_CONTRACT):
            coarse, pi = coarsen(graph, partition)
        t2 = time.perf_counter()
    inc("coarsen.runs")
    inc("coarsen.samples", r)
    stats = CoarsenStats(
        r=r,
        first_stage_seconds=t1 - t0,
        second_stage_seconds=t2 - t1,
        input_vertices=graph.n,
        input_edges=graph.m,
        output_vertices=coarse.n,
        output_edges=coarse.m,
        stage_seconds=stages.as_dict(),
        extras={"workers": workers, "executor": executor, "rounds": rounds},
    )
    return CoarsenResult(coarse=coarse, pi=pi, partition=partition, stats=stats)
