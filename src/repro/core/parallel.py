"""Algorithm 6 — parallel coarsening.

The first stage is embarrassingly parallel: worker ``t`` builds the partition
of all ``r_t``-robust SCCs from its own live-edge samples, with
``sum r_t = r`` balanced so ``|r_t1 - r_t2| <= 1``.  The meet of the ``T``
worker partitions equals the r-robust SCC partition (meet is associative and
commutative), after which the second stage proceeds as in Algorithm 1.

Executors
---------
``"serial"``  — run workers in-process (baseline / debugging);
``"thread"``  — shared-memory parallelism (the paper's OpenMP variant);
``"process"`` — distributed-memory parallelism (the paper's MPI variant).

All three executors run the *same* worker function over a
:class:`GraphHandle`.  For ``serial``/``thread`` the handle resolves to the
in-process graph object (zero cost); for ``process`` the CSR arrays are
published **once** to a :mod:`multiprocessing.shared_memory` segment
(:mod:`repro.graph.shm`) and only a tiny picklable spec crosses the process
boundary — the pool initializer attaches read-only views before the first
task, mirroring the master-to-worker broadcast of Appendix C.1 without
per-task pickling.  The ``coarsen.parallel.broadcast_bytes`` counter records
the exactly-once payload.

Worker partitions are folded with a pairwise **tree reduction**
(:func:`repro.partition.meet_all`): meets are associative/commutative per
Theorem 4.11, so the tree is exact, halves the sequential meet depth, and —
under the thread executor — runs each level's independent pair-meets on the
still-open pool.
"""

from __future__ import annotations

import concurrent.futures
import time

import numpy as np

from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..graph.shm import SharedGraph, SharedGraphSpec, attach_shared_graph
from ..obs import (
    STAGE_BROADCAST,
    STAGE_CONTRACT,
    STAGE_MEET,
    StageTimes,
    inc,
    span,
)
from ..partition.partition import Partition, meet_all
from ..rng import spawn_rngs
from ..scc import DEFAULT_SCC_BACKEND
from .coarsen import coarsen
from .result import CoarsenResult, CoarsenStats
from .robust_scc import robust_scc_partition

__all__ = ["GraphHandle", "coarsen_influence_graph_parallel", "split_rounds"]

_EXECUTORS = ("serial", "thread", "process")


def split_rounds(r: int, workers: int) -> list[int]:
    """Balanced split ``r_t = floor((r + t - 1) / T)`` (Algorithm 6, line 2).

    The effective worker count is clamped to ``min(workers, r)`` so no
    worker is ever handed zero samples — a zero-sample worker would still
    draw a seed and occupy a pool slot for nothing.  ``r = 0`` keeps the
    paper's trivial-partition convention: one worker, zero samples, which
    folds to ``{V}``.  The returned list has one entry per *effective*
    worker.
    """
    if workers <= 0:
        raise AlgorithmError("worker count must be positive")
    if r == 0:
        return [0]
    effective = min(workers, r)
    counts = [(r + t) // effective for t in range(effective)]
    assert sum(counts) == r
    return counts


class GraphHandle:
    """Executor-agnostic reference to the broadcast input graph.

    The three executors share one worker code path by passing a handle
    instead of a graph: ``serial``/``thread`` handles hold the in-process
    object and resolve for free; ``process`` handles hold only a
    :class:`~repro.graph.shm.SharedGraphSpec` and resolve by attaching
    read-only shared-memory views, cached once per worker process.  Only
    spec-backed handles are ever pickled, so submitting a task costs a few
    dozen bytes regardless of graph size.
    """

    __slots__ = ("_graph", "_spec")

    def __init__(
        self,
        graph: "InfluenceGraph | None" = None,
        spec: "SharedGraphSpec | None" = None,
    ) -> None:
        if (graph is None) == (spec is None):
            raise AlgorithmError("GraphHandle wraps exactly one of graph/spec")
        self._graph = graph
        self._spec = spec

    def resolve(self) -> InfluenceGraph:
        """The graph this handle refers to, materialised in this process."""
        if self._graph is not None:
            return self._graph
        assert self._spec is not None
        return attach_shared_graph(self._spec)

    def __reduce__(self):
        if self._spec is None:
            raise AlgorithmError(
                "refusing to pickle an in-process GraphHandle; broadcast the "
                "graph through repro.graph.shm for cross-process use"
            )
        return (GraphHandle, (None, self._spec))


def _init_worker(handle: GraphHandle) -> None:
    """Pool initializer: attach the broadcast graph before the first task."""
    handle.resolve()


def _worker(
    handle: GraphHandle, index: int, r_t: int, seed: int, scc_backend: str
) -> np.ndarray:
    graph = handle.resolve()
    with span("parallel_worker", worker=index, r_t=r_t):
        partition = robust_scc_partition(graph, r_t, rng=seed,
                                         scc_backend=scc_backend)
    return partition.labels


def coarsen_influence_graph_parallel(
    graph: InfluenceGraph,
    r: int = 16,
    workers: int = 4,
    rng=None,
    executor: str = "thread",
    scc_backend: str = DEFAULT_SCC_BACKEND,
) -> CoarsenResult:
    """Coarsen ``graph`` using up to ``workers`` parallel partition builders.

    Produces a graph from the same distribution as Algorithm 1 with the same
    total sample count ``r``.  For a fixed ``(r, workers, rng)`` the result
    is byte-identical across all three executors: the per-worker RNG streams
    are derived from ``rng`` before any pool is created, and the meet tree
    is exact (Theorem 4.11).  ``workers`` is clamped to ``min(workers, r)``
    — see :func:`split_rounds`; ``stats.extras`` records both the requested
    and the effective count.
    """
    if executor not in _EXECUTORS:
        raise AlgorithmError(f"executor must be one of {_EXECUTORS}")
    stages = StageTimes()
    rounds = split_rounds(r, workers)
    n_workers = len(rounds)
    with span("coarsen_parallel", r=r, workers=n_workers, executor=executor,
              n=graph.n, m=graph.m):
        t0 = time.perf_counter()
        child_rngs = spawn_rngs(rng, n_workers)
        seeds = [int(c.integers(0, 2**62)) for c in child_rngs]
        tasks = list(zip(range(n_workers), rounds, seeds))

        extras: dict = {
            "workers": n_workers,
            "requested_workers": workers,
            "executor": executor,
            "rounds": rounds,
        }

        shared: "SharedGraph | None" = None
        try:
            if executor == "process":
                with stages.stage(STAGE_BROADCAST, n=graph.n, m=graph.m):
                    shared = SharedGraph.publish(graph)
                handle = GraphHandle(spec=shared.spec)
                # Counted exactly once per pool: the whole graph crosses
                # the process boundary via this segment and nothing else.
                inc("coarsen.parallel.broadcast_bytes", shared.spec.nbytes)
                extras["broadcast_bytes"] = shared.spec.nbytes
            else:
                handle = GraphHandle(graph=graph)

            extras["meet_tree_depth"] = (n_workers - 1).bit_length()
            if executor == "serial":
                with span("parallel_partition_build", workers=n_workers):
                    _init_worker(handle)
                    label_arrays = [
                        _worker(handle, i, r_t, seed, scc_backend)
                        for i, r_t, seed in tasks
                    ]
                with stages.stage(STAGE_MEET, workers=n_workers):
                    partition = meet_all(
                        [Partition(labels, canonical=True)
                         for labels in label_arrays]
                    )
            else:
                pool_cls = (
                    concurrent.futures.ThreadPoolExecutor
                    if executor == "thread"
                    else concurrent.futures.ProcessPoolExecutor
                )
                pool_kwargs: dict = {"max_workers": n_workers}
                if executor == "process":
                    pool_kwargs.update(initializer=_init_worker,
                                       initargs=(handle,))
                with pool_cls(**pool_kwargs) as pool:
                    with span("parallel_partition_build", workers=n_workers):
                        futures = [
                            pool.submit(_worker, handle, i, r_t, seed,
                                        scc_backend)
                            for i, r_t, seed in tasks
                        ]
                        label_arrays = [f.result() for f in futures]
                    # Thread workers share our address space, so the meet
                    # tree's per-level pair-meets reuse the open pool.  A
                    # process pool would ship every intermediate label array
                    # there and back — for T partitions of n labels that is
                    # more traffic than the meets cost, so those fold here.
                    meet_map = pool.map if executor == "thread" else None
                    with stages.stage(STAGE_MEET, workers=n_workers):
                        partition = meet_all(
                            [Partition(labels, canonical=True)
                             for labels in label_arrays],
                            map_fn=meet_map,
                        )
        finally:
            if shared is not None:
                shared.unlink()
        t1 = time.perf_counter()

        with stages.stage(STAGE_CONTRACT):
            coarse, pi = coarsen(graph, partition)
        t2 = time.perf_counter()
    inc("coarsen.runs")
    inc("coarsen.samples", r)
    stats = CoarsenStats(
        r=r,
        first_stage_seconds=t1 - t0,
        second_stage_seconds=t2 - t1,
        input_vertices=graph.n,
        input_edges=graph.m,
        output_vertices=coarse.n,
        output_edges=coarse.m,
        stage_seconds=stages.as_dict(),
        extras=extras,
    )
    return CoarsenResult(coarse=coarse, pi=pi, partition=partition, stats=stats)
