"""Algorithm 2 — the scalability-oriented, sublinear-space implementation.

The input influence graph lives on disk as a :class:`TripletStore`; resident
memory is O(|V| + |F'|) where ``F'`` is the set of coarse edges incident to a
non-singleton component.  In real networks 99.9% of r-robust SCCs are
singletons, so ``|F'| << |F|`` and memory is roughly 10% of Algorithm 1
(Section 7.2).

First stage: each live-edge sample is *streamed to its own disk store*
(never resident), a semi-external SCC algorithm labels it with O(V) state,
and the label partition is folded into the running meet.

Second stage: the key identity is that an edge between two singleton
components keeps its original probability (``q = p``), so such edges can be
written straight to the output disk without ever entering the aggregation
hash table; only the F' bundles are accumulated in memory.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..errors import CoarseningError
from ..graph.influence_graph import InfluenceGraph
from ..obs import (
    STAGE_CONTRACT,
    STAGE_MEET,
    STAGE_SAMPLE,
    STAGE_SCC,
    StageTimes,
    inc,
    span,
)
from ..partition.partition import Partition
from ..rng import ensure_rng
from ..scc import backend_spec, scc_labels
from ..scc.semi_external import semi_external_scc_labels
from ..storage.triplet_store import DEFAULT_CHUNK_EDGES, PairStore, TripletStore
from .result import CoarsenResult, CoarsenStats

__all__ = ["coarsen_influence_graph_sublinear", "SublinearResult"]


@dataclass
class SublinearResult:
    """Disk-resident output of Algorithm 2.

    The coarsened edges sit in ``store`` (a :class:`TripletStore`); only the
    O(W) metadata (weights, mapping) is in memory.  :meth:`load` materialises
    a :class:`CoarsenResult` for callers that can afford it.
    """

    store: TripletStore
    weights: np.ndarray
    pi: np.ndarray
    partition: Partition
    stats: CoarsenStats

    def load(self) -> CoarsenResult:
        """Materialise the coarsened graph in memory."""
        tails, heads, probs = self.store.read_all()
        coarse = InfluenceGraph.from_edges(
            self.store.n, tails, heads, probs, weights=self.weights
        )
        return CoarsenResult(
            coarse=coarse, pi=self.pi, partition=self.partition, stats=self.stats
        )


def coarsen_influence_graph_sublinear(
    source: TripletStore,
    out_path: "str | os.PathLike[str]",
    r: int = 16,
    rng=None,
    work_dir: "str | os.PathLike[str] | None" = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    keep_sample_stores: bool = False,
    scc_backend: str = "semi-external",
) -> SublinearResult:
    """Coarsen a disk-resident influence graph (Algorithm 2).

    Parameters
    ----------
    source:
        The input graph as an on-disk triplet store.
    out_path:
        Path for the output coarsened triplet store.
    r:
        Robustness parameter (default 16).
    work_dir:
        Directory for the intermediate live-edge pair stores (defaults to the
        directory of ``out_path``).  Each sample store is deleted as soon as
        its SCCs are folded in, so at most one is on disk at a time.
    chunk_edges:
        Streaming chunk size; bounds resident memory per pass.
    keep_sample_stores:
        Retain the sampled pair stores (debugging/tests).
    scc_backend:
        ``"semi-external"`` (the default) keeps the Algorithm 2 memory
        contract: O(V) resident state per SCC round, everything else
        streamed.  Any in-memory backend name (see
        :data:`repro.scc.SCC_BACKENDS`) is accepted as a fallback for
        samples that do fit — the pair store is materialised, CSR-sorted and
        labelled in memory (O(V + sampled edges) resident for that round),
        which is much faster when the memory budget allows it.
    """
    if r < 0:
        raise CoarseningError("r must be non-negative")
    # One validation point for every dispatch surface: a misspelling gets
    # the registry's full menu (streaming backends included) up front.
    backend_spec(scc_backend)
    rng = ensure_rng(rng)
    out_path = os.fspath(out_path)
    if work_dir is None:
        work_dir = os.path.dirname(out_path) or "."
    n = source.n
    stages = StageTimes()
    with span("coarsen_sublinear", r=r, n=n, m=source.m):
        t0 = time.perf_counter()

        # ---- First stage: P_r by streaming sampling + semi-external SCC ----
        partition = Partition.trivial(n)
        stream_passes = 0
        for i in range(r):
            sample_path = os.path.join(work_dir, f".live_edge_{i}.pairs")
            with stages.stage(STAGE_SAMPLE, round=i):
                sample = PairStore.create(sample_path, n)
                for tails, heads, probs in source.iter_chunks(chunk_edges):
                    keep = rng.random(probs.size) < probs
                    if keep.any():
                        sample.append(tails[keep], heads[keep])
            with stages.stage(STAGE_SCC, round=i):
                if scc_backend == "semi-external":
                    labels, scc_stats = semi_external_scc_labels(
                        sample, chunk_edges=chunk_edges, return_stats=True
                    )
                    stream_passes += scc_stats.stream_passes
                else:
                    labels = _in_memory_scc(sample, scc_backend)
            with stages.stage(STAGE_MEET, round=i):
                partition = partition.meet(Partition(labels, canonical=False))
            if not keep_sample_stores:
                sample.delete()
        t1 = time.perf_counter()

        # ---- Second stage: build W, w, pi in memory; stream to disk ----
        with stages.stage(STAGE_CONTRACT):
            pi = partition.labels
            n_coarse = partition.n_blocks
            weights = np.bincount(pi, minlength=n_coarse).astype(np.int64)
            out, f_prime = _contract_streaming(
                source, out_path, pi, n_coarse, weights, chunk_edges
            )
        t2 = time.perf_counter()

    inc("coarsen.runs")
    inc("coarsen.samples", r)
    stats = CoarsenStats(
        r=r,
        first_stage_seconds=t1 - t0,
        second_stage_seconds=t2 - t1,
        input_vertices=n,
        input_edges=source.m,
        output_vertices=n_coarse,
        output_edges=out.m,
        stage_seconds=stages.as_dict(),
        extras={
            "f_prime_edges": f_prime,
            "scc_stream_passes": stream_passes,
            "bytes_read": source.bytes_read,
            "bytes_written": out.bytes_written,
        },
    )
    return SublinearResult(
        store=out, weights=weights, pi=pi.copy(), partition=partition, stats=stats
    )


def _in_memory_scc(sample: PairStore, backend: str) -> np.ndarray:
    """In-memory fallback for one sampled graph: materialise the pair store,
    CSR-sort it, and dispatch to the requested array backend."""
    tails, heads = sample.read_all()
    order = np.argsort(tails, kind="stable")
    tails, heads = tails[order], heads[order]
    indptr = np.zeros(sample.n + 1, dtype=np.int64)
    np.cumsum(np.bincount(tails, minlength=sample.n), out=indptr[1:])
    return scc_labels(indptr, heads, backend=backend)


def _contract_streaming(
    source: TripletStore,
    out_path: str,
    pi: np.ndarray,
    n_coarse: int,
    weights: np.ndarray,
    chunk_edges: int,
) -> tuple[TripletStore, int]:
    """Stream the second stage of Algorithm 2; returns ``(out, |F'|)``."""
    singleton = weights == 1
    out = TripletStore.create(out_path, n_coarse)
    # Aggregation table only for F' = coarse edges touching a non-singleton.
    agg: dict[int, float] = {}
    for tails, heads, probs in source.iter_chunks(chunk_edges):
        cu, cv = pi[tails], pi[heads]
        cross = cu != cv
        cu, cv, p = cu[cross], cv[cross], probs[cross]
        direct = singleton[cu] & singleton[cv]
        if direct.any():
            # q == p for singleton-singleton bundles (each is a single edge).
            out.append(cu[direct], cv[direct], p[direct])
        rest = ~direct
        if rest.any():
            keys = cu[rest] * n_coarse + cv[rest]
            with np.errstate(divide="ignore"):
                log_miss = np.log1p(-p[rest])
            uniq, inverse = np.unique(keys, return_inverse=True)
            sums = np.zeros(uniq.size, dtype=np.float64)
            np.add.at(sums, inverse, log_miss)
            for key, s in zip(uniq.tolist(), sums.tolist()):
                agg[key] = agg.get(key, 0.0) + s
    if agg:
        # Sorted key order makes the on-disk edge order canonical instead of
        # inheriting the (deterministic but chunking-dependent) dict
        # insertion order.
        keys = np.fromiter(sorted(agg.keys()), dtype=np.int64, count=len(agg))
        sums = np.fromiter((agg[k] for k in keys.tolist()),
                           dtype=np.float64, count=len(agg))
        q = -np.expm1(sums)
        q = np.clip(q, np.nextafter(0.0, 1.0), 1.0)
        out.append(keys // n_coarse, keys % n_coarse, q)
    return out, len(agg)
