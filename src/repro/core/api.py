"""The unified coarsening entry point (and the deprecated 1.0 spellings).

Through 1.0 the library grew three parallel entry points — Algorithm 1
(:mod:`.linear_space`), Algorithm 2 (:mod:`.sublinear_space`) and
Algorithm 6 (:mod:`.parallel`) — whose names encoded the implementation
rather than the intent.  :func:`coarsen_influence_graph` now fronts all
three behind two orthogonal knobs:

* ``space`` — ``"linear"`` (in memory, the default) or ``"sublinear"``
  (disk streaming; the input is a :class:`~repro.storage.TripletStore` and
  the output lands at ``out_path``);
* ``executor`` — ``"serial"`` (the default), ``"thread"`` or ``"process"``
  for the linear-space path; passing ``workers`` (or a non-serial
  executor) selects Algorithm 6, whose output is byte-identical to
  Algorithm 1 for a fixed ``(r, workers, rng)``.

The 1.0 names ``coarsen_influence_graph_parallel`` and
``coarsen_influence_graph_sublinear`` remain importable as thin
:class:`DeprecationWarning` shims that delegate to the same
implementations (so results are byte-identical); they disappear in 2.0
(``docs/API.md``, "Stability and migration").
"""

from __future__ import annotations

import os

from .._compat import warn_deprecated
from ..errors import CoarseningError
from ..graph.influence_graph import InfluenceGraph
from ..scc import DEFAULT_SCC_BACKEND
from ..storage.triplet_store import DEFAULT_CHUNK_EDGES, TripletStore
from .linear_space import coarsen_influence_graph as _coarsen_linear
from .parallel import _EXECUTORS
from .parallel import coarsen_influence_graph_parallel as _coarsen_parallel
from .result import CoarsenResult
from .sublinear_space import SublinearResult
from .sublinear_space import (
    coarsen_influence_graph_sublinear as _coarsen_sublinear,
)

__all__ = [
    "coarsen_influence_graph",
    "coarsen_influence_graph_parallel",
    "coarsen_influence_graph_sublinear",
]

_SPACES = ("linear", "sublinear")


def coarsen_influence_graph(
    graph: "InfluenceGraph | TripletStore",
    r: int = 16,
    *,
    rng=None,
    executor: str = "serial",
    workers: "int | None" = None,
    space: str = "linear",
    scc_backend: "str | None" = None,
    validate: bool = False,
    out_path: "str | os.PathLike[str] | None" = None,
    work_dir: "str | os.PathLike[str] | None" = None,
    chunk_edges: "int | None" = None,
    keep_sample_stores: bool = False,
) -> "CoarsenResult | SublinearResult":
    """Coarsen an influence graph by its r-robust SCC partition.

    One entry point for Algorithms 1, 2 and 6; the implementation is picked
    by ``space`` and ``executor``, and every combination draws from the same
    random stream discipline so equal parameters give equal output.

    Parameters
    ----------
    graph:
        The input influence graph: an :class:`InfluenceGraph` for
        ``space="linear"``, a disk-resident
        :class:`~repro.storage.TripletStore` for ``space="sublinear"``.
    r:
        Robustness parameter; the paper's sweet spot is 16 (Section 7.5).
    rng:
        Seed or generator; fixes the sampled live-edge graphs.
    executor:
        ``"serial"`` (Algorithm 1), or ``"thread"`` / ``"process"``
        (Algorithm 6 on a thread pool / zero-copy shared-memory process
        pool).  Linear space only.
    workers:
        Parallel worker count.  Passing it selects Algorithm 6 even under
        ``executor="serial"`` (the debugging path that runs the worker
        function in-process); clamped to ``min(workers, r)``.  Defaults to
        4 when a non-serial executor is chosen.
    space:
        ``"linear"`` — everything in memory, O(n + m) resident;
        ``"sublinear"`` — Algorithm 2, O(V + F') resident, streaming from
        ``graph`` (a store) to ``out_path``.
    scc_backend:
        SCC implementation (see :mod:`repro.scc`); defaults to the fast
        in-memory backend for linear space and ``"semi-external"`` for
        sublinear space.
    validate:
        Re-verify the strong-connectivity precondition before contracting
        (serial linear path only).
    out_path, work_dir, chunk_edges, keep_sample_stores:
        Sublinear-space knobs, as documented on Algorithm 2
        (:mod:`.sublinear_space`).  Rejected under ``space="linear"``.

    Returns
    -------
    CoarsenResult | SublinearResult
        A :class:`CoarsenResult` for ``space="linear"``; a (disk-backed)
        :class:`SublinearResult` for ``space="sublinear"`` — call its
        ``.load()`` to materialise a :class:`CoarsenResult`.
    """
    if space not in _SPACES:
        raise CoarseningError(f"space must be one of {_SPACES}")
    if executor not in _EXECUTORS:
        raise CoarseningError(f"executor must be one of {_EXECUTORS}")

    if space == "sublinear":
        if out_path is None:
            raise CoarseningError(
                "space='sublinear' streams the coarse graph to disk; "
                "pass out_path="
            )
        if executor != "serial" or workers is not None:
            raise CoarseningError(
                "space='sublinear' supports executor='serial' only "
                "(Algorithm 2 streams one sample at a time)"
            )
        if validate:
            raise CoarseningError(
                "validate= is not supported for space='sublinear'"
            )
        return _coarsen_sublinear(
            graph,
            out_path,
            r=r,
            rng=rng,
            work_dir=work_dir,
            chunk_edges=(DEFAULT_CHUNK_EDGES if chunk_edges is None
                         else chunk_edges),
            keep_sample_stores=keep_sample_stores,
            scc_backend=("semi-external" if scc_backend is None
                         else scc_backend),
        )

    for name, value in (("out_path", out_path), ("work_dir", work_dir),
                        ("chunk_edges", chunk_edges)):
        if value is not None:
            raise CoarseningError(
                f"{name}= applies to space='sublinear' only"
            )
    if keep_sample_stores:
        raise CoarseningError(
            "keep_sample_stores= applies to space='sublinear' only"
        )
    backend = DEFAULT_SCC_BACKEND if scc_backend is None else scc_backend

    if executor == "serial" and workers is None:
        return _coarsen_linear(graph, r=r, rng=rng, scc_backend=backend,
                               validate=validate)
    if validate:
        raise CoarseningError(
            "validate= is supported on the serial linear path only"
        )
    return _coarsen_parallel(
        graph,
        r=r,
        workers=4 if workers is None else workers,
        rng=rng,
        executor=executor,
        scc_backend=backend,
    )


def coarsen_influence_graph_parallel(
    graph: InfluenceGraph,
    r: int = 16,
    workers: int = 4,
    rng=None,
    executor: str = "thread",
    scc_backend: str = DEFAULT_SCC_BACKEND,
) -> CoarsenResult:
    """Deprecated 1.0 spelling of the parallel path (Algorithm 6).

    Delegates to the implementation behind
    ``coarsen_influence_graph(..., executor=..., workers=...)`` unchanged,
    so results are byte-identical; removed in 2.0.
    """
    warn_deprecated(
        "coarsen_influence_graph_parallel()",
        "coarsen_influence_graph(..., executor=..., workers=...)",
    )
    return _coarsen_parallel(graph, r=r, workers=workers, rng=rng,
                             executor=executor, scc_backend=scc_backend)


def coarsen_influence_graph_sublinear(
    source: TripletStore,
    out_path: "str | os.PathLike[str]",
    r: int = 16,
    rng=None,
    work_dir: "str | os.PathLike[str] | None" = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    keep_sample_stores: bool = False,
    scc_backend: str = "semi-external",
) -> SublinearResult:
    """Deprecated 1.0 spelling of the sublinear path (Algorithm 2).

    Delegates to the implementation behind
    ``coarsen_influence_graph(store, space="sublinear", out_path=...)``
    unchanged, so results are byte-identical; removed in 2.0.
    """
    warn_deprecated(
        "coarsen_influence_graph_sublinear()",
        "coarsen_influence_graph(..., space='sublinear', out_path=...)",
    )
    return _coarsen_sublinear(
        source, out_path, r=r, rng=rng, work_dir=work_dir,
        chunk_edges=chunk_edges, keep_sample_stores=keep_sample_stores,
        scc_backend=scc_backend,
    )
