"""The influence-analysis acceleration frameworks (Section 6).

Both frameworks are *generic*: they accept any estimation / maximization
algorithm ``A`` and run it on the coarsened graph ``H`` instead of ``G``,
then translate the answer back through the correspondence mapping ``pi``.

* Algorithm 3 (:func:`estimate_on_coarse`): ``Inf_G(S)`` is approximated by
  running ``A`` on ``H`` with seed set ``pi(S)``.  Theorem 6.1 bounds the
  relative error by ``[-eps, (1 + eps) / prod Rel(G[C_j]) - 1]``.
* Algorithm 4 (:func:`maximize_on_coarse`): a size-``k`` solution ``T`` on
  ``H`` is pulled back to ``S`` with ``pi(S) = T`` by picking a uniformly
  random member of each block.  Theorem 6.2: an alpha-approximation on ``H``
  is an ``alpha * prod Rel(G[C_j])``-approximation on ``G``.

Algorithms plug in via two tiny protocols:

* estimator: ``estimate(graph, seeds) -> float``
* maximizer: ``select(graph, k) -> MaximizationResult``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, span, timed
from ..rng import ensure_rng
from .result import CoarsenResult

__all__ = [
    "InfluenceEstimator",
    "InfluenceMaximizer",
    "MaximizationResult",
    "estimate_on_coarse",
    "maximize_on_coarse",
]


class InfluenceEstimator(Protocol):
    """Anything that can estimate ``Inf_G(S)`` on a (weighted) graph."""

    def estimate(self, graph: InfluenceGraph, seeds: np.ndarray) -> float:
        """Return an estimate of ``Inf_graph(seeds)``."""
        ...


@dataclass
class MaximizationResult:
    """Output of an influence-maximization algorithm."""

    seeds: np.ndarray
    estimated_influence: float
    extras: dict | None = None


class InfluenceMaximizer(Protocol):
    """Anything that can pick a size-``k`` seed set on a (weighted) graph."""

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Return a size-``k`` seed selection for ``graph``."""
        ...


def estimate_on_coarse(
    result: CoarsenResult,
    seeds: np.ndarray,
    estimator: InfluenceEstimator,
) -> float:
    """Algorithm 3: estimate ``Inf_G(S)`` by estimating ``Inf_H(pi(S))``.

    The returned value over-estimates ``Inf_G(S)`` by at most the
    reliability factor of Theorem 6.1 (and never under-estimates beyond the
    estimator's own error).
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        raise AlgorithmError("seed set must be non-empty")
    with span("estimate_on_coarse", seeds=int(seeds.size),
              coarse_n=result.coarse.n):
        with timed("framework.estimate_seconds"):
            coarse_seeds = result.map_seeds(seeds)
            value = estimator.estimate(result.coarse, coarse_seeds)
    inc("framework.estimates")
    return value


def maximize_on_coarse(
    result: CoarsenResult,
    k: int,
    maximizer: InfluenceMaximizer,
    rng=None,
) -> MaximizationResult:
    """Algorithm 4: solve influence maximization on ``H`` and pull back.

    Each coarse seed in the solution ``T`` is replaced by a uniformly random
    original vertex of its block, yielding ``S`` with ``pi(S) = T``.
    """
    if k <= 0:
        raise AlgorithmError("k must be positive")
    rng = ensure_rng(rng)
    with span("maximize_on_coarse", k=k, coarse_n=result.coarse.n):
        with timed("framework.maximize_seconds"):
            coarse_result = maximizer.select(result.coarse, k)
            seeds = result.pull_back(coarse_result.seeds, rng=rng)
    inc("framework.maximizations")
    return MaximizationResult(
        seeds=seeds,
        estimated_influence=coarse_result.estimated_influence,
        extras={"coarse_seeds": coarse_result.seeds, **(coarse_result.extras or {})},
    )
