"""The paper's primary contribution: influence-graph coarsening.

* :func:`coarsen_influence_graph` — the unified entry point: Algorithm 1
  (``space="linear"``, the default), Algorithm 2 (``space="sublinear"``)
  and Algorithm 6 (``executor=`` / ``workers=``);
* :class:`DynamicCoarsener` — Algorithm 7;
* :func:`estimate_on_coarse` / :func:`maximize_on_coarse` — Algorithms 3/4.

``coarsen_influence_graph_parallel`` / ``coarsen_influence_graph_sublinear``
are deprecated 1.0 spellings (removed in 2.0) that delegate to the same
implementations.
"""

from .api import (
    coarsen_influence_graph,
    coarsen_influence_graph_parallel,
    coarsen_influence_graph_sublinear,
)
from .coarsen import check_partition_strongly_connected, coarsen
from .dynamic import Delta, DynamicCoarsener, DynamicStats, coarsen_addressable
from .frameworks import (
    InfluenceEstimator,
    InfluenceMaximizer,
    MaximizationResult,
    estimate_on_coarse,
    maximize_on_coarse,
)
from .persistence import load_coarsening, peek_coarsening_meta, save_coarsening
from .parallel import GraphHandle, split_rounds
from .result import CoarsenResult, CoarsenStats
from .robust_scc import robust_scc_partition, robust_scc_refinement_sequence
from .tuning import RSweepPoint, r_sweep
from .sublinear_space import SublinearResult

__all__ = [
    "r_sweep",
    "RSweepPoint",
    "save_coarsening",
    "load_coarsening",
    "peek_coarsening_meta",
    "coarsen",
    "check_partition_strongly_connected",
    "robust_scc_partition",
    "robust_scc_refinement_sequence",
    "coarsen_influence_graph",
    "coarsen_influence_graph_sublinear",
    "coarsen_influence_graph_parallel",
    "split_rounds",
    "GraphHandle",
    "SublinearResult",
    "CoarsenResult",
    "CoarsenStats",
    "Delta",
    "DynamicCoarsener",
    "DynamicStats",
    "coarsen_addressable",
    "estimate_on_coarse",
    "maximize_on_coarse",
    "InfluenceEstimator",
    "InfluenceMaximizer",
    "MaximizationResult",
]
