"""The paper's primary contribution: influence-graph coarsening.

* :func:`coarsen_influence_graph` — Algorithm 1 (linear space, in memory);
* :func:`coarsen_influence_graph_sublinear` — Algorithm 2 (disk streaming);
* :func:`coarsen_influence_graph_parallel` — Algorithm 6;
* :class:`DynamicCoarsener` — Algorithm 7;
* :func:`estimate_on_coarse` / :func:`maximize_on_coarse` — Algorithms 3/4.
"""

from .coarsen import check_partition_strongly_connected, coarsen
from .dynamic import DynamicCoarsener, DynamicStats
from .frameworks import (
    InfluenceEstimator,
    InfluenceMaximizer,
    MaximizationResult,
    estimate_on_coarse,
    maximize_on_coarse,
)
from .linear_space import coarsen_influence_graph
from .persistence import load_coarsening, save_coarsening
from .parallel import GraphHandle, coarsen_influence_graph_parallel, split_rounds
from .result import CoarsenResult, CoarsenStats
from .robust_scc import robust_scc_partition, robust_scc_refinement_sequence
from .tuning import RSweepPoint, r_sweep
from .sublinear_space import SublinearResult, coarsen_influence_graph_sublinear

__all__ = [
    "r_sweep",
    "RSweepPoint",
    "save_coarsening",
    "load_coarsening",
    "coarsen",
    "check_partition_strongly_connected",
    "robust_scc_partition",
    "robust_scc_refinement_sequence",
    "coarsen_influence_graph",
    "coarsen_influence_graph_sublinear",
    "coarsen_influence_graph_parallel",
    "split_rounds",
    "GraphHandle",
    "SublinearResult",
    "CoarsenResult",
    "CoarsenStats",
    "DynamicCoarsener",
    "DynamicStats",
    "estimate_on_coarse",
    "maximize_on_coarse",
    "InfluenceEstimator",
    "InfluenceMaximizer",
    "MaximizationResult",
]
