"""repro — a reproduction of "Coarsening Massive Influence Networks for
Scalable Diffusion Analysis" (Ohsaka, Sonobe, Fujita, Kawarabayashi,
SIGMOD 2017).

The package coarsens influence graphs under the Independent Cascade model
by contracting r-robust strongly connected components, then accelerates
influence estimation and influence maximization by running existing
algorithms on the compact coarsened graph.

Quickstart::

    from repro import load_dataset, coarsen_influence_graph
    from repro import estimate_on_coarse, make_estimator

    graph = load_dataset("soc-slashdot", setting="exp", seed=0)
    result = coarsen_influence_graph(graph, r=16, rng=0)
    print(result.stats.edge_reduction_ratio)
    est = make_estimator("mc", n_samples=10_000, rng=1)
    inf = estimate_on_coarse(result, [42], est)

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-versus-measured record of every table and figure.
"""

from .algorithms import (
    CELFMaximizer,
    DegreeHeuristic,
    DSSAMaximizer,
    GreedyMaximizer,
    IMMMaximizer,
    MonteCarloEstimator,
    RISMaximizer,
    SSAMaximizer,
)
from .analysis import (
    estimate_reliability,
    exact_reliability,
    max_scc_rate_samples,
    mean_absolute_relative_error,
    reliability_product,
    spearman_rank_correlation,
)
from .core import (
    CoarsenResult,
    CoarsenStats,
    Delta,
    DynamicCoarsener,
    coarsen,
    coarsen_addressable,
    coarsen_influence_graph,
    coarsen_influence_graph_parallel,
    coarsen_influence_graph_sublinear,
    estimate_on_coarse,
    maximize_on_coarse,
    robust_scc_partition,
)
from .datasets import apply_setting, list_datasets, load_dataset
from .diffusion import estimate_influence, simulate_ic
from .estimators import (
    EstimateResult,
    available_estimators,
    estimate_with_report,
    make_estimator,
)
from .errors import (
    AlgorithmError,
    BudgetExceededError,
    CoarseningError,
    GraphFormatError,
    PartitionError,
    ReproError,
)
from .graph import GraphBuilder, InfluenceGraph, read_edge_list, write_edge_list
from .partition import Partition
from .serve import DynamicModel, InfluenceService, QueryResult, ServiceConfig
from .storage import PairStore, TripletStore

__version__ = "1.0.0"

__all__ = [
    # graph substrate
    "InfluenceGraph",
    "GraphBuilder",
    "read_edge_list",
    "write_edge_list",
    "Partition",
    "TripletStore",
    "PairStore",
    # coarsening core
    "coarsen",
    "robust_scc_partition",
    "coarsen_influence_graph",
    "coarsen_influence_graph_sublinear",
    "coarsen_influence_graph_parallel",
    "DynamicCoarsener",
    "Delta",
    "coarsen_addressable",
    "CoarsenResult",
    "CoarsenStats",
    # frameworks
    "estimate_on_coarse",
    "maximize_on_coarse",
    # estimator registry
    "available_estimators",
    "make_estimator",
    "estimate_with_report",
    "EstimateResult",
    # serving
    "InfluenceService",
    "ServiceConfig",
    "QueryResult",
    "DynamicModel",
    # diffusion + algorithms
    "simulate_ic",
    "estimate_influence",
    "MonteCarloEstimator",
    "DegreeHeuristic",
    "GreedyMaximizer",
    "CELFMaximizer",
    "RISMaximizer",
    "IMMMaximizer",
    "SSAMaximizer",
    "DSSAMaximizer",
    # analysis
    "exact_reliability",
    "estimate_reliability",
    "reliability_product",
    "max_scc_rate_samples",
    "mean_absolute_relative_error",
    "spearman_rank_correlation",
    # datasets
    "load_dataset",
    "list_datasets",
    "apply_setting",
    # errors
    "ReproError",
    "GraphFormatError",
    "PartitionError",
    "CoarseningError",
    "BudgetExceededError",
    "AlgorithmError",
]
