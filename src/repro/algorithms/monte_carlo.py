"""The naive Monte-Carlo influence estimator (Section 3.2).

Wraps :func:`repro.diffusion.simulator.estimate_influence` in the estimator
protocol used by the frameworks, with per-instance accounting so benchmarks
can report examined-edge counts (the quantity the paper's speed-up ratio
tracks).
"""

from __future__ import annotations

import numpy as np

from ..diffusion.simulator import SimulationStats, estimate_influence
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng

__all__ = ["MonteCarloEstimator"]


class MonteCarloEstimator:
    """Estimates ``Inf_G(S)`` by averaging repeated IC simulations.

    Parameters
    ----------
    n_simulations:
        Simulations per estimate.  The paper uses 100,000 for ground truth;
        tens of thousands suffice in practice [10, 22].
    rng:
        Seed or generator (shared across estimates on this instance).
    """

    def __init__(self, n_simulations: int = 10_000, rng=None) -> None:
        if n_simulations <= 0:
            raise AlgorithmError("n_simulations must be positive")
        self.n_simulations = n_simulations
        self._rng = ensure_rng(rng)
        self.stats = SimulationStats()

    def estimate(self, graph: InfluenceGraph, seeds: np.ndarray) -> float:
        """The mean activated weight over ``n_simulations`` runs."""
        return estimate_influence(
            graph, seeds, self.n_simulations, rng=self._rng, stats=self.stats
        )
