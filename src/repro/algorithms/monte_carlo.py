"""The naive Monte-Carlo influence estimator (Section 3.2).

Wraps :func:`repro.diffusion.simulator.estimate_influence` in the estimator
protocol used by the frameworks, with per-instance accounting so benchmarks
can report examined-edge counts (the quantity the paper's speed-up ratio
tracks).
"""

from __future__ import annotations

import numpy as np

from .._compat import MISSING, deprecated_alias, warn_deprecated
from ..diffusion.simulator import SimulationStats, estimate_influence
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng

__all__ = ["MonteCarloEstimator"]


class MonteCarloEstimator:
    """Estimates ``Inf_G(S)`` by averaging repeated IC simulations.

    Parameters
    ----------
    n_samples:
        Simulations per estimate (default 10,000).  The paper uses 100,000
        for ground truth; tens of thousands suffice in practice [10, 22].
        The 1.0 spelling ``n_simulations=`` is deprecated.
    rng:
        Seed or generator (shared across estimates on this instance).

    Direct construction is deprecated since 1.2: obtain instances through
    ``repro.estimators.make_estimator("mc", ...)`` (removed in 2.0).
    """

    def __init__(self, n_samples=MISSING, *, rng=None,
                 n_simulations=MISSING) -> None:
        warn_deprecated("MonteCarloEstimator(...)",
                        'repro.estimators.make_estimator("mc", ...)')
        n_samples = deprecated_alias(
            "MonteCarloEstimator", "n_samples", n_samples,
            "n_simulations", n_simulations, default=10_000,
        )
        self._init(n_samples, rng=rng)

    @classmethod
    def _make(cls, n_samples: int = 10_000, *, rng=None
              ) -> "MonteCarloEstimator":
        """The registry's construction path (no deprecation warning)."""
        est = cls.__new__(cls)
        est._init(n_samples, rng=rng)
        return est

    def _init(self, n_samples: int, *, rng) -> None:
        if n_samples <= 0:
            raise AlgorithmError("n_samples must be positive")
        self.n_samples = n_samples
        self._rng = ensure_rng(rng)
        self.stats = SimulationStats()

    @property
    def n_simulations(self) -> int:
        """Deprecated 1.0 alias of :attr:`n_samples` (removed in 2.0)."""
        warn_deprecated("MonteCarloEstimator.n_simulations",
                        "MonteCarloEstimator.n_samples")
        return self.n_samples

    def estimate(self, graph: InfluenceGraph, seeds: np.ndarray) -> float:
        """The mean activated weight over ``n_samples`` runs."""
        return estimate_influence(
            graph, seeds, self.n_samples, rng=self._rng, stats=self.stats
        )
