"""Degree heuristic baseline for influence maximization.

Selects the ``k`` vertices with the highest *expected live out-degree*
``sum_e p_e`` (weighted by target vertex weight on coarse graphs).  No
quality guarantee — it exists as the classic cheap baseline the IM
literature compares against [10, 22].
"""

from __future__ import annotations

import numpy as np

from ..core.frameworks import MaximizationResult
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph

__all__ = ["DegreeHeuristic"]


class DegreeHeuristic:
    """Top-``k`` vertices by expected influenced weight of direct neighbours."""

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        weights = graph.weights.astype(np.float64)
        expected = np.zeros(graph.n, dtype=np.float64)
        tails = graph.tails()
        np.add.at(expected, tails, graph.probs * weights[graph.heads])
        expected += weights  # a seed always activates itself
        seeds = np.argsort(expected, kind="stable")[::-1][:k].astype(np.int64)
        return MaximizationResult(
            seeds=seeds,
            estimated_influence=float(expected[seeds].sum()),
            extras={"method": "degree"},
        )
