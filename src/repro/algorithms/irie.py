"""IRIE — Influence Ranking / Influence Estimation (Jung, Heo, Chen [20]).

The linear-system heuristic the paper's related work cites: each vertex's
rank approximates its marginal influence via the fixed point of

    r(u) = 1 + alpha * sum_{(u,v) in E} p(u,v) * r(v)

(a damped Katz-style recursion on the influence DAG).  For seed selection,
IRIE alternates ranking with *influence discounting*: once a seed is
chosen, each vertex's rank is damped by the probability it is already
covered by the current seed set (estimated with one cheap forward pass).

No approximation guarantee — it trades quality for speed and is the
strongest of the heuristic baselines on many networks.  On vertex-weighted
(coarsened) graphs the constant term becomes the vertex weight, so the
framework applies unchanged.
"""

from __future__ import annotations

import numpy as np

from ..core.frameworks import MaximizationResult
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph

__all__ = ["IRIEMaximizer"]


class IRIEMaximizer:
    """IRIE with damping ``alpha`` (the paper's default 0.7) and a fixed
    iteration budget."""

    def __init__(self, alpha: float = 0.7, iterations: int = 20) -> None:
        if not 0.0 < alpha <= 1.0:
            raise AlgorithmError("alpha must lie in (0, 1]")
        if iterations <= 0:
            raise AlgorithmError("iterations must be positive")
        self.alpha = alpha
        self.iterations = iterations

    def _rank(self, graph: InfluenceGraph, covered: np.ndarray) -> np.ndarray:
        """Fixed-point iteration of the IRIE linear system.

        ``covered[v]`` is the probability v is already activated by the
        current seeds; its rank contribution is discounted accordingly.
        """
        tails, heads, probs = graph.edge_arrays()
        base = graph.weights.astype(np.float64) * (1.0 - covered)
        rank = base.copy()
        for _ in range(self.iterations):
            spread = np.zeros(graph.n)
            np.add.at(spread, tails, probs * rank[heads])
            new_rank = base + self.alpha * (1.0 - covered) * spread
            if np.allclose(new_rank, rank, rtol=1e-9, atol=1e-12):
                rank = new_rank
                break
            rank = new_rank
        return rank

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        tails, heads, probs = graph.edge_arrays()
        covered = np.zeros(graph.n)
        seeds = np.empty(k, dtype=np.int64)
        total = 0.0
        chosen = np.zeros(graph.n, dtype=bool)
        for i in range(k):
            rank = self._rank(graph, covered)
            rank[chosen] = -np.inf
            v = int(np.argmax(rank))
            seeds[i] = v
            chosen[v] = True
            total += float(rank[v])
            # Influence discount: one forward relaxation from the new seed.
            covered[v] = 1.0
            reach = np.zeros(graph.n)
            reach[v] = 1.0
            for _ in range(2):  # two-hop discount, as in the IRIE paper
                nxt = np.zeros(graph.n)
                np.add.at(nxt, heads, probs * reach[tails])
                reach = np.minimum(nxt, 1.0)
                covered = np.minimum(covered + (1.0 - covered) * reach, 1.0)
        return MaximizationResult(
            seeds=seeds,
            estimated_influence=total,
            extras={"method": "irie", "alpha": self.alpha},
        )
