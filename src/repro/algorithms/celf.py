"""CELF — lazy greedy influence maximization (Leskovec et al. [28]).

Exploits submodularity: a vertex's marginal gain can only shrink as the seed
set grows, so stale gains in a max-heap are upper bounds.  Pop the top entry;
if its gain was computed for the current seed set it is exact and wins,
otherwise re-evaluate and push back.  Produces the same solution as plain
greedy with far fewer oracle calls on heavy-tailed graphs.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.frameworks import InfluenceEstimator, MaximizationResult
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph

__all__ = ["CELFMaximizer"]


class CELFMaximizer:
    """Lazy greedy with an influence oracle.

    Note: with a stochastic (Monte-Carlo) oracle the submodularity of the
    *estimated* gains holds only in expectation, so CELF with few simulations
    can diverge slightly from exhaustive greedy; this matches how CELF is
    used in the literature.
    """

    def __init__(self, estimator: InfluenceEstimator) -> None:
        self._estimator = estimator

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        evaluations = 0

        def influence(seed_list: list[int]) -> float:
            nonlocal evaluations
            evaluations += 1
            return self._estimator.estimate(
                graph, np.asarray(seed_list, dtype=np.int64)
            )

        # Initial pass: singleton influences.  Heap entries are
        # (-gain, vertex, round_when_computed).
        heap: list[tuple[float, int, int]] = []
        for v in range(graph.n):
            heap.append((-influence([v]), v, 0))
        heapq.heapify(heap)

        seeds: list[int] = []
        current = 0.0
        for round_no in range(1, k + 1):
            while True:
                neg_gain, v, computed_at = heapq.heappop(heap)
                if computed_at == round_no:
                    seeds.append(v)
                    current += -neg_gain
                    break
                gain = influence(seeds + [v]) - current
                heapq.heappush(heap, (-gain, v, round_no))
        return MaximizationResult(
            seeds=np.asarray(seeds, dtype=np.int64),
            estimated_influence=current,
            extras={"evaluations": evaluations},
        )
