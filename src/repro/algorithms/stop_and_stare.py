"""SSA and D-SSA — Stop-and-Stare influence maximization (Nguyen et al. [36]).

These are the paper's headline baselines (Tables 5 and 11).  Both follow the
same skeleton:

1. draw a doubling collection ``R_t`` of RR sets and solve max coverage
   greedily, yielding a candidate ``S_t`` with an (optimistic) estimate
   ``I_t``;
2. **stare**: check ``S_t``'s influence on an *independent* validation
   collection ``R_t^c``; if the unbiased validation estimate confirms the
   greedy estimate to within the error budget, stop and return ``S_t``;
3. otherwise double and repeat, capped at ``N_max`` total RR sets.

SSA uses fixed error splits ``eps_1 = eps_2 = eps_3`` and throws the
validation collection away each round; D-SSA computes the error split
*dynamically* from the observed estimates and recycles the validation
collection into the next round's sketch pool — the source of its ~2x sample
savings, which our implementation reproduces.

The error-composition constants follow the published D-SSA stopping rule
with the vertex count generalised to total vertex weight ``W``, so the
algorithms run unchanged on coarsened (vertex-weighted) graphs — exactly the
usage in the paper's framework experiments.

Guarantee: ``(1 - 1/e - eps)``-approximation with probability ``1 - delta``
(under the published analysis; this reproduction validates quality
empirically against exhaustive greedy).
"""

from __future__ import annotations

import math

import numpy as np

from .._compat import MISSING, deprecated_alias, warn_deprecated
from ..core.frameworks import MaximizationResult
from ..diffusion.rr_sets import CoverageInstance, RRSampler
from ..errors import AlgorithmError, BudgetExceededError
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng
from .ris import log_binomial

__all__ = ["SSAMaximizer", "DSSAMaximizer"]


class _StopAndStareBase:
    """Shared machinery for SSA and D-SSA."""

    def __init__(
        self,
        eps: float = 0.1,
        *,
        delta: float = 0.01,
        rng=None,
        max_samples=MISSING,
        memory_budget_sets: int | None = None,
        memory_budget_elements: int | None = None,
        model: str = "ic",
        max_sets=MISSING,
    ) -> None:
        if not 0.0 < eps < 1.0 - 2.0 / math.e:
            raise AlgorithmError("eps must lie in (0, 1 - 2/e)")
        if not 0.0 < delta < 1.0:
            raise AlgorithmError("delta must lie in (0, 1)")
        self.eps = eps
        self.delta = delta
        self._rng = ensure_rng(rng)
        self.max_samples = deprecated_alias(
            type(self).__name__, "max_samples", max_samples,
            "max_sets", max_sets, default=1_000_000,
        )
        self.memory_budget_sets = memory_budget_sets
        self.memory_budget_elements = memory_budget_elements
        self.model = model
        self.examined_edges = 0
        self._elements_stored = 0

    @property
    def max_sets(self) -> int:
        """Deprecated 1.0 alias of :attr:`max_samples` (removed in 2.0)."""
        name = type(self).__name__
        warn_deprecated(f"{name}.max_sets", f"{name}.max_samples")
        return self.max_samples

    def _n_max(self, n: int, w_total: float, k: int) -> int:
        """Worst-case RR-set budget (the algorithms stop far earlier)."""
        e = math.e
        bound = (
            8.0
            * (1.0 - 1.0 / e)
            / (2.0 + 2.0 * self.eps / 3.0)
            * (math.log(6.0 / self.delta) + log_binomial(n, k))
            * w_total
            / (self.eps ** 2 * k)
        )
        return min(int(math.ceil(bound)), self.max_samples)

    def _initial_budget(self) -> int:
        """``Lambda``: the smallest statistically meaningful collection."""
        eps, delta = self.eps, self.delta
        return max(
            32,
            int(
                math.ceil(
                    (2.0 + 2.0 * eps / 3.0) * math.log(3.0 / delta) / (eps ** 2)
                )
            ),
        )

    def _check_budget(self, total_sets: int) -> None:
        if (
            self.memory_budget_sets is not None
            and total_sets > self.memory_budget_sets
        ):
            raise BudgetExceededError(
                f"RR-set pool of {total_sets} exceeds the configured budget "
                f"of {self.memory_budget_sets} sets"
            )

    def _sample_charged(self, sampler: RRSampler, count: int) -> list:
        """Draw RR sets, charging their storage against the element budget.

        The element budget models real RR-sketch memory (sum of set sizes);
        on high-influence graphs a few enormous sets blow it long before the
        set *count* is large — the paper's OOM mode for D-SSA on billion-edge
        EXP inputs.
        """
        batch = sampler.sample_batch(count)
        self._elements_stored += sum(s.size for s in batch)
        if (
            self.memory_budget_elements is not None
            and self._elements_stored > self.memory_budget_elements
        ):
            raise BudgetExceededError(
                f"RR-set pool of {self._elements_stored} stored vertices "
                f"exceeds the budget of {self.memory_budget_elements}"
            )
        return batch


class SSAMaximizer(_StopAndStareBase):
    """SSA: fixed error split, validation collection discarded per round."""

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        sampler = RRSampler(graph, rng=self._rng, model=self.model)
        self._elements_stored = 0
        w_total = sampler.total_weight
        eps1 = eps2 = eps3 = self.eps / 4.0
        n_max = self._n_max(graph.n, w_total, k)
        # Coverage threshold so the validation estimate is (1 +- eps2)-exact.
        lambda1 = (
            1.0
            + (1.0 + eps2) * (2.0 + 2.0 * eps2 / 3.0)
            * math.log(3.0 / self.delta) / (eps2 ** 2)
        )

        size = self._initial_budget()
        rounds = 0
        while True:
            rounds += 1
            self._check_budget(2 * size)
            rr_sets = self._sample_charged(sampler, size)
            coverage = CoverageInstance(rr_sets, graph.n)
            seeds, covered = coverage.greedy(k)
            i_greedy = w_total * covered / size
            # Stare: independent validation of equal size.
            validation = CoverageInstance(
                self._sample_charged(sampler, size), graph.n
            )
            covered_c = validation.coverage_of(seeds)
            i_check = w_total * covered_c / size
            enough_coverage = covered_c >= lambda1
            confirmed = i_check >= i_greedy / (1.0 + eps1)
            if (enough_coverage and confirmed) or 2 * size >= n_max:
                self.examined_edges += sampler.examined_edges
                return MaximizationResult(
                    seeds=seeds,
                    estimated_influence=i_check,
                    extras={
                        "rr_sets": 2 * size,
                        "rounds": rounds,
                        "stopped_at_cap": 2 * size >= n_max,
                    },
                )
            # SSA throws both collections away before doubling.
            self._elements_stored = 0
            size *= 2


class DSSAMaximizer(_StopAndStareBase):
    """D-SSA: dynamic error split, validation collection recycled.

    The stopping rule evaluates the composed error

    ``eps_t = (e1 + e2 + e1*e2)(1 - 1/e - eps) + (1 - 1/e)*e3``

    with ``e1`` measured from the greedy/validation gap and ``e2``, ``e3``
    derived from the validation collection size, stopping once
    ``eps_t <= eps``.
    """

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        sampler = RRSampler(graph, rng=self._rng, model=self.model)
        self._elements_stored = 0
        w_total = sampler.total_weight
        eps = self.eps
        e_const = 1.0 - 1.0 / math.e
        n_max = self._n_max(graph.n, w_total, k)

        pool: list[np.ndarray] = self._sample_charged(
            sampler, self._initial_budget()
        )
        rounds = 0
        while True:
            rounds += 1
            size = len(pool)
            coverage = CoverageInstance(pool, graph.n)
            seeds, covered = coverage.greedy(k)
            i_greedy = w_total * covered / size
            # Stare on a fresh collection of equal size.
            validation_sets = self._sample_charged(sampler, size)
            validation = CoverageInstance(validation_sets, graph.n)
            covered_c = validation.coverage_of(seeds)
            i_check = w_total * max(covered_c, 1) / size

            e1 = i_greedy / i_check - 1.0
            e2 = eps * math.sqrt(w_total * (1.0 + eps) / (2.0 ** (rounds - 1) * i_check))
            e3 = eps * math.sqrt(
                w_total * (1.0 + eps) * (e_const - eps)
                / ((1.0 + eps / 3.0) * 2.0 ** (rounds - 1) * i_check)
            )
            eps_t = (e1 + e2 + e1 * e2) * (e_const - eps) + e_const * e3

            total = 2 * size
            if (e1 <= eps and eps_t <= eps) or total >= n_max:
                self.examined_edges += sampler.examined_edges
                return MaximizationResult(
                    seeds=seeds,
                    estimated_influence=i_check,
                    extras={
                        "rr_sets": total,
                        "rounds": rounds,
                        "stopped_at_cap": total >= n_max,
                    },
                )
            # Dynamic reuse: the validation sets join the pool (the D-SSA
            # trick that halves total samples versus SSA).
            self._check_budget(total)
            pool.extend(validation_sets)
