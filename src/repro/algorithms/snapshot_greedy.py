"""Snapshot greedy — pruned-Monte-Carlo influence maximization (PMC [37] /
StaticGreedy family).

The simulation-based accelerations the paper's related work cites avoid
re-simulating for every candidate: sample ``R`` live-edge graphs *once*,
precompute per-snapshot reachability structure, and run greedy where the
marginal gain of a vertex is its average newly-reached weight across
snapshots.  With SCC contraction inside each snapshot (the pruning of PMC),
gain evaluation is linear in the snapshot DAG size.

This implementation contracts each snapshot to its SCC DAG, memoises
per-vertex reachable sets on the DAG, and keeps exact decremental gains —
the same exact-greedy answer as Monte-Carlo greedy with ``R`` common random
numbers, at a fraction of the cost.
"""

from __future__ import annotations

import numpy as np

from ..core.frameworks import MaximizationResult
from ..diffusion.live_edge import sample_live_edge_csr
from ..diffusion.reachability import reachable_mask
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..partition.partition import Partition
from ..rng import ensure_rng
from ..scc import scc_labels

__all__ = ["SnapshotGreedyMaximizer"]


class _Snapshot:
    """One live-edge sample contracted to its SCC DAG."""

    def __init__(self, graph: InfluenceGraph, rng) -> None:
        indptr, heads = sample_live_edge_csr(graph, rng)
        labels = scc_labels(indptr, heads)
        partition = Partition(labels, canonical=False)
        self.comp = partition.labels
        n_comp = partition.n_blocks
        # component weights
        self.weights = np.zeros(n_comp, dtype=np.float64)
        np.add.at(self.weights, self.comp, graph.weights.astype(np.float64))
        # DAG adjacency between components
        tails = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(indptr))
        cu, cv = self.comp[tails], self.comp[heads]
        cross = cu != cv
        pairs = np.unique(np.stack([cu[cross], cv[cross]], axis=1), axis=0) \
            if cross.any() else np.empty((0, 2), dtype=np.int64)
        self.dag_indptr = np.zeros(n_comp + 1, dtype=np.int64)
        np.add.at(self.dag_indptr, pairs[:, 0] + 1, 1)
        np.cumsum(self.dag_indptr, out=self.dag_indptr)
        order = np.argsort(pairs[:, 0], kind="stable")
        self.dag_heads = pairs[order, 1]
        self.reached = np.zeros(n_comp, dtype=bool)
        # Gains depend only on the vertex's component, so they are memoised
        # per component and invalidated when the reached set grows — the
        # memoisation that makes PMC-style greedy tractable (vertices merged
        # into a snapshot's giant SCC all share one cache entry).
        self._gain_cache: dict[int, float] = {}

    def marginal_weight(self, vertex: int) -> float:
        """Weight newly reached by seeding ``vertex`` (no mutation)."""
        comp = int(self.comp[vertex])
        cached = self._gain_cache.get(comp)
        if cached is not None:
            return cached
        mask = reachable_mask(
            self.dag_indptr, self.dag_heads,
            np.asarray([comp], dtype=np.int64),
        )
        new = mask & ~self.reached
        gain = float(self.weights[new].sum())
        self._gain_cache[comp] = gain
        return gain

    def commit(self, vertex: int) -> float:
        """Seed ``vertex``: mark its reachable set, return the new weight."""
        comp = int(self.comp[vertex])
        mask = reachable_mask(
            self.dag_indptr, self.dag_heads,
            np.asarray([comp], dtype=np.int64),
        )
        new = mask & ~self.reached
        gained = float(self.weights[new].sum())
        self.reached |= mask
        self._gain_cache.clear()
        return gained


class SnapshotGreedyMaximizer:
    """Greedy over ``n_snapshots`` pre-sampled live-edge graphs.

    CELF-style lazy evaluation keeps the number of marginal evaluations
    near-linear; gains are exact for the sampled snapshot set, so quality
    matches Monte-Carlo greedy with the same sample budget.
    """

    def __init__(self, n_snapshots: int = 100, rng=None) -> None:
        if n_snapshots <= 0:
            raise AlgorithmError("n_snapshots must be positive")
        self.n_snapshots = n_snapshots
        self._rng = ensure_rng(rng)

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        import heapq

        snapshots = [_Snapshot(graph, self._rng)
                     for _ in range(self.n_snapshots)]

        def marginal(v: int) -> float:
            return sum(s.marginal_weight(v) for s in snapshots)

        heap: list[tuple[float, int, int]] = [
            (-marginal(v), v, 0) for v in range(graph.n)
        ]
        heapq.heapify(heap)
        seeds = np.empty(k, dtype=np.int64)
        total = 0.0
        evaluations = graph.n
        for round_no in range(1, k + 1):
            while True:
                neg_gain, v, computed_at = heapq.heappop(heap)
                if computed_at == round_no:
                    seeds[round_no - 1] = v
                    total += sum(s.commit(v) for s in snapshots)
                    break
                evaluations += 1
                heapq.heappush(heap, (-marginal(v), v, round_no))
        return MaximizationResult(
            seeds=seeds,
            estimated_influence=total / self.n_snapshots,
            extras={
                "snapshots": self.n_snapshots,
                "evaluations": evaluations,
            },
        )
