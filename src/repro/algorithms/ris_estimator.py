"""Sketch-based influence estimation (the RR-set estimator).

The estimation framework (Algorithm 3) accepts *any* estimator; besides the
naive simulation method the natural plug-in is the reverse-sketch estimator
of Borgs et al. [6] / Cohen et al. [12]:

    Inf(S) = W * Pr[S intersects a random RR set]

estimated by the hit rate over a pre-drawn collection.  The collection is
built once per graph and amortised over arbitrarily many seed-set queries —
the batched-audit scenario of the paper's introduction.
"""

from __future__ import annotations

import numpy as np

from ..diffusion.rr_sets import CoverageInstance, RRSampler
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng

__all__ = ["RISEstimator"]


class RISEstimator:
    """Estimates influence from a cached RR-set collection.

    Parameters
    ----------
    n_sets:
        Sketch size; the additive error of one query is
        ``O(W / sqrt(n_sets))`` with high probability.
    rng:
        Seed or generator for sketch sampling.

    Notes
    -----
    The sketch is (re)built lazily per graph object and reused across
    queries on the same graph, so a batch of q queries costs one sketch
    construction plus q coverage lookups.
    """

    def __init__(self, n_sets: int = 20_000, rng=None, model: str = "ic") -> None:
        if n_sets <= 0:
            raise AlgorithmError("n_sets must be positive")
        self.n_sets = n_sets
        self._rng = ensure_rng(rng)
        self.model = model
        self._graph: InfluenceGraph | None = None
        self._coverage: CoverageInstance | None = None
        self._total_weight = 0.0
        self.examined_edges = 0

    def _ensure_sketch(self, graph: InfluenceGraph) -> None:
        if self._graph is graph:
            return
        sampler = RRSampler(graph, rng=self._rng, model=self.model)
        rr_sets = sampler.sample_batch(self.n_sets)
        self._coverage = CoverageInstance(rr_sets, graph.n)
        self._total_weight = sampler.total_weight
        self._graph = graph
        self.examined_edges += sampler.examined_edges

    def estimate(self, graph: InfluenceGraph, seeds: np.ndarray) -> float:
        """``W * (RR sets hit by seeds) / n_sets``."""
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size == 0:
            raise AlgorithmError("seed set must be non-empty")
        self._ensure_sketch(graph)
        assert self._coverage is not None
        hits = self._coverage.coverage_of(seeds)
        return self._total_weight * hits / self.n_sets
