"""Sketch-based influence estimation (the RR-set estimator).

The estimation framework (Algorithm 3) accepts *any* estimator; besides the
naive simulation method the natural plug-in is the reverse-sketch estimator
of Borgs et al. [6] / Cohen et al. [12]:

    Inf(S) = W * Pr[S intersects a random RR set]

estimated by the hit rate over a pre-drawn collection.  The collection is
built once per graph and amortised over arbitrarily many seed-set queries —
the batched-audit scenario of the paper's introduction.

:meth:`RISEstimator.from_coverage` binds an estimator to a collection built
*elsewhere* (the pool-reuse path): the ``repro.serve`` query engine grows
one shared pool per cached model and scores every concurrent query on it,
so q queries cost one sketch construction regardless of who asks.
"""

from __future__ import annotations

import numpy as np

from .._compat import MISSING, deprecated_alias, warn_deprecated
from ..diffusion.rr_sets import CoverageInstance, RRSampler
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng

__all__ = ["RISEstimator"]


class RISEstimator:
    """Estimates influence from a cached RR-set collection.

    Parameters
    ----------
    n_samples:
        Sketch size (default 20,000); the additive error of one query is
        ``O(W / sqrt(n_samples))`` with high probability.  The 1.0
        spelling ``n_sets=`` is deprecated.
    rng:
        Seed or generator for sketch sampling.

    Direct construction is deprecated since 1.2: obtain instances through
    ``repro.estimators.make_estimator("ris", ...)`` (removed in 2.0).

    Notes
    -----
    The sketch is (re)built lazily per graph object and reused across
    queries on the same graph, so a batch of q queries costs one sketch
    construction plus q coverage lookups.
    """

    def __init__(self, n_samples=MISSING, *, rng=None, model: str = "ic",
                 n_sets=MISSING) -> None:
        warn_deprecated("RISEstimator(...)",
                        'repro.estimators.make_estimator("ris", ...)')
        n_samples = deprecated_alias(
            "RISEstimator", "n_samples", n_samples, "n_sets", n_sets,
            default=20_000,
        )
        self._init(n_samples, rng=rng, model=model)

    @classmethod
    def _make(cls, n_samples: int = 20_000, *, rng=None,
              model: str = "ic") -> "RISEstimator":
        """The registry's construction path (no deprecation warning)."""
        est = cls.__new__(cls)
        est._init(n_samples, rng=rng, model=model)
        return est

    def _init(self, n_samples: int, *, rng, model: str) -> None:
        if n_samples <= 0:
            raise AlgorithmError("n_samples must be positive")
        self.n_samples = n_samples
        self._rng = ensure_rng(rng)
        self.model = model
        self._graph: InfluenceGraph | None = None
        self._coverage: CoverageInstance | None = None
        self._total_weight = 0.0
        self.examined_edges = 0

    @property
    def n_sets(self) -> int:
        """Deprecated 1.0 alias of :attr:`n_samples` (removed in 2.0)."""
        warn_deprecated("RISEstimator.n_sets", "RISEstimator.n_samples")
        return self.n_samples

    @classmethod
    def from_coverage(
        cls,
        graph: InfluenceGraph,
        coverage: CoverageInstance,
        total_weight: float,
        *,
        n_samples: "int | None" = None,
    ) -> "RISEstimator":
        """An estimator bound to a pre-built coverage instance.

        The pool-reuse path: no sampling happens on this instance — it
        scores seed sets against the first ``n_samples`` sets of
        ``coverage`` (all of them when ``None``).  ``total_weight`` must be
        the vertex-weight total the collection was drawn against.
        """
        if coverage.n_sets == 0:
            raise AlgorithmError("coverage instance holds no RR sets")
        limit = coverage.n_sets if n_samples is None else n_samples
        if not 0 < limit <= coverage.n_sets:
            raise AlgorithmError(
                f"n_samples must lie in [1, {coverage.n_sets}]"
            )
        est = cls._make(limit)
        est._graph = graph
        est._coverage = coverage
        est._total_weight = float(total_weight)
        return est

    def _ensure_sketch(self, graph: InfluenceGraph) -> None:
        if self._graph is graph:
            return
        sampler = RRSampler(graph, rng=self._rng, model=self.model)
        rr_sets = sampler.sample_batch(self.n_samples)
        self._coverage = CoverageInstance(rr_sets, graph.n)
        self._total_weight = sampler.total_weight
        self._graph = graph
        self.examined_edges += sampler.examined_edges

    def estimate(self, graph: InfluenceGraph, seeds: np.ndarray) -> float:
        """``W * (RR sets hit by seeds) / n_samples``."""
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size == 0:
            raise AlgorithmError("seed set must be non-empty")
        self._ensure_sketch(graph)
        assert self._coverage is not None
        hits = self._coverage.coverage_of(seeds, first=self.n_samples)
        return self._total_weight * hits / self.n_samples
