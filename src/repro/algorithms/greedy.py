"""The KKT greedy algorithm with a Monte-Carlo influence oracle (Section 3.3).

At every step, add the vertex with the maximum marginal influence gain.  By
Nemhauser–Wolsey–Fisher (Theorem 3.1) and the submodularity of the influence
function (Theorem 3.2), this is a ``(1 - 1/e)``-approximation — but it costs
``k * n`` influence evaluations, so it is only usable on small graphs.  Use
:class:`repro.algorithms.celf.CELFMaximizer` for the lazy variant and the
sketch algorithms for anything large.
"""

from __future__ import annotations

import numpy as np

from ..core.frameworks import InfluenceEstimator, MaximizationResult
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph

__all__ = ["GreedyMaximizer"]


class GreedyMaximizer:
    """Exhaustive greedy influence maximization.

    Parameters
    ----------
    estimator:
        Influence oracle (typically :class:`MonteCarloEstimator`).  Each
        greedy step calls it once per candidate vertex.
    """

    def __init__(self, estimator: InfluenceEstimator) -> None:
        self._estimator = estimator

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        seeds: list[int] = []
        current = 0.0
        evaluations = 0
        for _ in range(k):
            best_v, best_val = -1, -np.inf
            for v in range(graph.n):
                if v in seeds:
                    continue
                val = self._estimator.estimate(
                    graph, np.asarray(seeds + [v], dtype=np.int64)
                )
                evaluations += 1
                if val > best_val:
                    best_v, best_val = v, val
            seeds.append(best_v)
            current = best_val
        return MaximizationResult(
            seeds=np.asarray(seeds, dtype=np.int64),
            estimated_influence=current,
            extras={"evaluations": evaluations},
        )
