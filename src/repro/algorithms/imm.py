"""IMM — Influence Maximization via Martingales (Tang, Shi, Xiao 2015 [43]).

Two phases:

1. **Sampling.**  Estimate a lower bound ``LB`` on ``OPT_k`` by iterative
   halving: for ``x = n/2, n/4, ...`` draw enough RR sets to distinguish
   whether ``OPT >= x`` (Lemma 6 of the IMM paper), stopping at the first
   ``x`` the greedy cover certifies; then set the final sketch budget
   ``theta = lambda* / LB``.
2. **Node selection.**  Greedy maximum coverage over ``theta`` RR sets.

With probability ``1 - 1/n^l`` the result is a ``(1 - 1/e - eps)``
approximation.  On vertex-weighted (coarsened) graphs the influence scale is
the total weight ``W``; the bounds below use ``n`` (number of vertices) for
the union bounds over seed sets, and ``W`` wherever ``OPT``'s scale enters,
which is the natural generalisation used by weighted-RIS implementations.
"""

from __future__ import annotations

import math

import numpy as np

from .._compat import MISSING, deprecated_alias, warn_deprecated
from ..core.frameworks import MaximizationResult
from ..diffusion.rr_sets import CoverageInstance, RRSampler
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, span
from ..rng import ensure_rng
from .ris import log_binomial

__all__ = ["IMMMaximizer"]


class IMMMaximizer:
    """IMM with parameters ``eps`` (accuracy) and ``l`` (confidence exponent).

    ``max_samples`` (the 1.0 spelling ``max_sets=`` is deprecated) caps the
    sketch budget so adversarial parameterisations cannot exhaust memory;
    hitting the cap raises unless ``allow_cap`` is set, in which case the
    run degrades to fixed-budget RIS semantics.
    """

    def __init__(
        self,
        eps: float = 0.1,
        *,
        l: float = 1.0,
        rng=None,
        max_samples=MISSING,
        allow_cap: bool = True,
        model: str = "ic",
        max_sets=MISSING,
    ) -> None:
        if not 0.0 < eps < 1.0:
            raise AlgorithmError("eps must lie in (0, 1)")
        self.eps = eps
        self.l = l
        self._rng = ensure_rng(rng)
        self.max_samples = deprecated_alias(
            "IMMMaximizer", "max_samples", max_samples, "max_sets", max_sets,
            default=2_000_000,
        )
        self.allow_cap = allow_cap
        self.model = model
        self.examined_edges = 0

    @property
    def max_sets(self) -> int:
        """Deprecated 1.0 alias of :attr:`max_samples` (removed in 2.0)."""
        warn_deprecated("IMMMaximizer.max_sets", "IMMMaximizer.max_samples")
        return self.max_samples

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        n = graph.n
        w_total = float(graph.weights.sum())
        eps = self.eps
        # Boost confidence to cover the union bound over halving rounds.
        l = self.l + math.log(2.0) / math.log(max(n, 2))
        log_nk = log_binomial(n, k)
        ln_n = math.log(max(n, 2))

        sampler = RRSampler(graph, rng=self._rng, model=self.model)
        rr_sets: list[np.ndarray] = []

        def ensure_sets(count: int) -> bool:
            count = min(count, self.max_samples)
            while len(rr_sets) < count:
                rr_sets.append(sampler.sample())
            return count >= self.max_samples

        # ---- Phase 1: lower-bound OPT by iterative halving ----
        eps_prime = math.sqrt(2.0) * eps
        lb = w_total / n  # trivial lower bound: any single vertex's weight
        capped = False
        max_rounds = max(1, int(math.ceil(math.log2(n))) - 1)
        with span("imm_sampling", k=k, n=n):
            for i in range(1, max_rounds + 1):
                x = w_total / (2.0 ** i)
                lambda_prime = (
                    (2.0 + 2.0 * eps_prime / 3.0)
                    * (log_nk + l * ln_n + math.log(max(math.log2(n), 1.0)))
                    * w_total
                    / (eps_prime ** 2)
                )
                theta_i = int(math.ceil(lambda_prime / x))
                capped = ensure_sets(theta_i) or capped
                coverage = CoverageInstance(
                    rr_sets[: min(theta_i, len(rr_sets))], n
                )
                _, covered = coverage.greedy(k)
                estimate = w_total * covered / coverage.n_sets
                if estimate >= (1.0 + eps_prime) * x:
                    lb = estimate / (1.0 + eps_prime)
                    break

            # ---- Phase 2: final sketch budget from LB ----
            alpha = math.sqrt(l * ln_n + math.log(2.0))
            beta = math.sqrt(
                (1.0 - 1.0 / math.e) * (log_nk + l * ln_n + math.log(2.0))
            )
            lambda_star = (
                2.0 * w_total * ((1.0 - 1.0 / math.e) * alpha + beta) ** 2
                / (eps ** 2)
            )
            theta = int(math.ceil(lambda_star / lb))
            capped = ensure_sets(theta) or capped
        if capped and not self.allow_cap:
            raise AlgorithmError(
                f"IMM sketch budget exceeded max_samples={self.max_samples}"
            )
        used = min(theta, len(rr_sets))
        with span("imm_selection", k=k, rr_sets=used):
            coverage = CoverageInstance(rr_sets[:used], n)
            seeds, covered = coverage.greedy(k)
        self.examined_edges += sampler.examined_edges
        inc("imm.rr_sets", used)
        inc("imm.examined_edges", sampler.examined_edges)
        return MaximizationResult(
            seeds=seeds,
            estimated_influence=w_total * covered / used,
            extras={"rr_sets": used, "lower_bound": lb, "capped": capped},
        )
