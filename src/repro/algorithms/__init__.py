"""Influence estimation and maximization algorithms.

Estimators implement ``estimate(graph, seeds) -> float``; maximizers
implement ``select(graph, k) -> MaximizationResult``.  Both run unchanged on
plain and vertex-weighted (coarsened) graphs, which is what lets the
Section 6 frameworks wrap them generically.
"""

from .celf import CELFMaximizer
from .degree import DegreeHeuristic
from .greedy import GreedyMaximizer
from .imm import IMMMaximizer
from .irie import IRIEMaximizer
from .monte_carlo import MonteCarloEstimator
from .ris import RISMaximizer, log_binomial
from .ris_estimator import RISEstimator
from .snapshot_greedy import SnapshotGreedyMaximizer
from .stop_and_stare import DSSAMaximizer, SSAMaximizer
from .tim import TIMPlusMaximizer

__all__ = [
    "MonteCarloEstimator",
    "DegreeHeuristic",
    "GreedyMaximizer",
    "CELFMaximizer",
    "RISMaximizer",
    "RISEstimator",
    "IMMMaximizer",
    "IRIEMaximizer",
    "TIMPlusMaximizer",
    "SnapshotGreedyMaximizer",
    "SSAMaximizer",
    "DSSAMaximizer",
    "log_binomial",
]
