"""TIM+ — Two-phase Influence Maximization (Tang, Xiao, Shi 2014 [44]).

The predecessor of IMM and one of the sketch-based algorithms the paper's
frameworks accelerate.  Two phases:

1. **KPT estimation**: estimate a lower bound ``KPT`` on the expected
   spread of the optimal size-k seed set by measuring the *width* (in-edge
   count) of random RR sets — Algorithm 2 of the TIM paper: for growing
   sample counts, if the average width statistic crosses a threshold, the
   current scale is the estimate.  TIM+ then refines the bound with a
   greedy solution on a small sketch (the "+" refinement).
2. **Node selection**: draw ``theta = lambda / KPT`` RR sets and run greedy
   maximum coverage, like every RIS descendant.

Produces a ``(1 - 1/e - eps)``-approximation with probability
``1 - n^-l``.  Compared to IMM its sketch bound is looser, so it samples
more — visible in the examined-edge counters when both run side by side.
"""

from __future__ import annotations

import math

import numpy as np

from .._compat import MISSING, deprecated_alias, warn_deprecated
from ..core.frameworks import MaximizationResult
from ..diffusion.rr_sets import CoverageInstance, RRSampler
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..rng import ensure_rng
from .ris import log_binomial

__all__ = ["TIMPlusMaximizer"]


class TIMPlusMaximizer:
    """TIM+ with accuracy ``eps`` and confidence exponent ``l``.

    ``max_samples`` (the 1.0 spelling ``max_sets=`` is deprecated) bounds
    the sketch (degrading to fixed-budget behaviour when hit, reported in
    ``extras``).
    """

    def __init__(
        self,
        eps: float = 0.1,
        *,
        l: float = 1.0,
        rng=None,
        max_samples=MISSING,
        model: str = "ic",
        max_sets=MISSING,
    ) -> None:
        if not 0.0 < eps < 1.0:
            raise AlgorithmError("eps must lie in (0, 1)")
        self.eps = eps
        self.l = l
        self._rng = ensure_rng(rng)
        self.max_samples = deprecated_alias(
            "TIMPlusMaximizer", "max_samples", max_samples,
            "max_sets", max_sets, default=2_000_000,
        )
        self.model = model
        self.examined_edges = 0

    @property
    def max_sets(self) -> int:
        """Deprecated 1.0 alias of :attr:`max_samples` (removed in 2.0)."""
        warn_deprecated("TIMPlusMaximizer.max_sets",
                        "TIMPlusMaximizer.max_samples")
        return self.max_samples

    def _kpt_estimation(self, graph: InfluenceGraph, k: int,
                        sampler: RRSampler, rr_sets: list) -> float:
        """Phase 1: the TIM KPT* lower bound via RR-set widths.

        The width ``w(R)`` of an RR set is the number of in-edges of its
        vertices; ``E[1 - (1 - w(R)/m)^k]`` relates to ``OPT_k / n``.
        """
        n, m = graph.n, graph.m
        w_total = float(graph.weights.sum())
        if m == 0:
            return w_total / n
        in_degree = graph.in_degree().astype(np.float64)
        log2_n = max(1, int(math.ceil(math.log2(n))))
        for i in range(1, log2_n):
            c_i = int(
                math.ceil((6.0 * self.l * math.log(max(n, 2))
                           + 6.0 * math.log(math.log2(max(n, 2)) + 1.0))
                          * (2.0 ** i))
            )
            c_i = min(c_i, self.max_samples)
            while len(rr_sets) < c_i:
                rr_sets.append(sampler.sample())
            total = 0.0
            for rr in rr_sets[:c_i]:
                width = float(in_degree[rr].sum())
                kappa = 1.0 - (1.0 - width / m) ** k
                total += kappa
            if total / c_i > 1.0 / (2.0 ** i):
                return w_total * total / (2.0 * c_i)
        return w_total / n

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        n = graph.n
        w_total = float(graph.weights.sum())
        eps = self.eps
        l = self.l + math.log(2.0) / math.log(max(n, 2))
        sampler = RRSampler(graph, rng=self._rng, model=self.model)
        rr_sets: list[np.ndarray] = []

        kpt = max(self._kpt_estimation(graph, k, sampler, rr_sets),
                  w_total / n)

        # "+" refinement: greedy on a small sketch gives a second bound.
        eps_prime = 5.0 * (l * (eps ** 2) / (k + l)) ** (1.0 / 3.0)
        theta_prime = int(math.ceil(
            (2.0 + eps_prime) * l * w_total * math.log(max(n, 2))
            / (eps_prime ** 2 * kpt)
        ))
        theta_prime = min(max(theta_prime, 1), self.max_samples)
        while len(rr_sets) < theta_prime:
            rr_sets.append(sampler.sample())
        coverage = CoverageInstance(rr_sets[:theta_prime], n)
        _, covered = coverage.greedy(k)
        refined = (
            w_total * covered / theta_prime / (1.0 + eps_prime)
        )
        kpt = max(kpt, refined)

        # Phase 2: the final sketch.
        lambda_ = (
            (8.0 + 2.0 * eps) * w_total
            * (l * math.log(max(n, 2)) + log_binomial(n, k) + math.log(2.0))
            / (eps ** 2)
        )
        theta = int(math.ceil(lambda_ / kpt))
        capped = theta > self.max_samples
        theta = min(max(theta, 1), self.max_samples)
        while len(rr_sets) < theta:
            rr_sets.append(sampler.sample())
        coverage = CoverageInstance(rr_sets[:theta], n)
        seeds, covered = coverage.greedy(k)
        self.examined_edges += sampler.examined_edges
        return MaximizationResult(
            seeds=seeds,
            estimated_influence=w_total * covered / theta,
            extras={"rr_sets": theta, "kpt": kpt, "capped": capped},
        )
