"""Reverse Influence Sampling (RIS) with a fixed sketch budget.

The plain Borgs-et-al. recipe (Section 3.3): draw a collection of RR sets,
solve maximum coverage greedily, and estimate the solution's influence as
``total_weight * covered_fraction``.  The theta-free fixed-budget variant
here is the building block the adaptive algorithms (IMM, SSA, D-SSA) wrap
with their stopping rules, and doubles as a fast practical maximizer.
"""

from __future__ import annotations

import math

from ..core.frameworks import MaximizationResult
from ..diffusion.rr_sets import CoverageInstance, RRSampler
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, span
from ..rng import ensure_rng

__all__ = ["RISMaximizer", "log_binomial"]


def log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` via lgamma — used by every sketch-size bound."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


class RISMaximizer:
    """Greedy maximum coverage over a fixed number of RR sets.

    Parameters
    ----------
    n_sets:
        Sketch budget.  No adaptive guarantee; accuracy grows with the
        budget as in the Borgs et al. analysis.
    rng:
        Seed or generator for sketch sampling.
    """

    def __init__(self, n_sets: int = 10_000, rng=None, model: str = "ic") -> None:
        if n_sets <= 0:
            raise AlgorithmError("n_sets must be positive")
        self.n_sets = n_sets
        self._rng = ensure_rng(rng)
        self.model = model
        self.examined_edges = 0

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        sampler = RRSampler(graph, rng=self._rng, model=self.model)
        with span("ris_sampling", n_sets=self.n_sets, n=graph.n):
            rr_sets = sampler.sample_batch(self.n_sets)
        with span("ris_selection", k=k, n_sets=self.n_sets):
            coverage = CoverageInstance(rr_sets, graph.n)
            seeds, covered = coverage.greedy(k)
        self.examined_edges += sampler.examined_edges
        inc("ris.rr_sets", self.n_sets)
        inc("ris.examined_edges", sampler.examined_edges)
        estimate = sampler.total_weight * covered / self.n_sets
        return MaximizationResult(
            seeds=seeds,
            estimated_influence=estimate,
            extras={"rr_sets": self.n_sets, "covered": covered},
        )
