"""Reverse Influence Sampling (RIS) with a fixed sketch budget.

The plain Borgs-et-al. recipe (Section 3.3): draw a collection of RR sets,
solve maximum coverage greedily, and estimate the solution's influence as
``total_weight * covered_fraction``.  The theta-free fixed-budget variant
here is the building block the adaptive algorithms (IMM, SSA, D-SSA) wrap
with their stopping rules, and doubles as a fast practical maximizer.
"""

from __future__ import annotations

import math

from .._compat import MISSING, deprecated_alias, warn_deprecated
from ..core.frameworks import MaximizationResult
from ..diffusion.rr_sets import CoverageInstance, RRSampler
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..obs import inc, span
from ..rng import ensure_rng

__all__ = ["RISMaximizer", "log_binomial"]


def log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` via lgamma — used by every sketch-size bound."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


class RISMaximizer:
    """Greedy maximum coverage over a fixed number of RR sets.

    Parameters
    ----------
    n_samples:
        Sketch budget (number of RR sets, default 10,000).  No adaptive
        guarantee; accuracy grows with the budget as in the Borgs et al.
        analysis.  The 1.0 spelling ``n_sets=`` is deprecated.
    rng:
        Seed or generator for sketch sampling.
    """

    def __init__(self, n_samples=MISSING, *, rng=None, model: str = "ic",
                 n_sets=MISSING) -> None:
        n_samples = deprecated_alias(
            "RISMaximizer", "n_samples", n_samples, "n_sets", n_sets,
            default=10_000,
        )
        if n_samples <= 0:
            raise AlgorithmError("n_samples must be positive")
        self.n_samples = n_samples
        self._rng = ensure_rng(rng)
        self.model = model
        self.examined_edges = 0

    @property
    def n_sets(self) -> int:
        """Deprecated 1.0 alias of :attr:`n_samples` (removed in 2.0)."""
        warn_deprecated("RISMaximizer.n_sets", "RISMaximizer.n_samples")
        return self.n_samples

    def select(self, graph: InfluenceGraph, k: int) -> MaximizationResult:
        """Select a size-``k`` seed set; returns a :class:`MaximizationResult`."""
        if not 0 < k <= graph.n:
            raise AlgorithmError("k must lie in [1, n]")
        sampler = RRSampler(graph, rng=self._rng, model=self.model)
        with span("ris_sampling", n_sets=self.n_samples, n=graph.n):
            rr_sets = sampler.sample_batch(self.n_samples)
        with span("ris_selection", k=k, n_sets=self.n_samples):
            coverage = CoverageInstance(rr_sets, graph.n)
            seeds, covered = coverage.greedy(k)
        self.examined_edges += sampler.examined_edges
        inc("ris.rr_sets", self.n_samples)
        inc("ris.examined_edges", sampler.examined_edges)
        estimate = sampler.total_weight * covered / self.n_samples
        return MaximizationResult(
            seeds=seeds,
            estimated_influence=estimate,
            extras={"rr_sets": self.n_samples, "covered": covered},
        )
