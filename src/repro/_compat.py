"""Deprecation machinery for the 1.x -> 2.0 API transition.

The public surface was consolidated in 1.1 (see ``docs/API.md``, "Stability
and migration"): one coarsening entry point, uniform estimator/maximizer
constructor spellings (``n_samples`` / ``max_samples`` / ``rng`` / ``model``).
The old spellings keep working until 2.0 through the helpers here, which
emit :class:`DeprecationWarning` and delegate to the new code paths — the
shims add no behaviour of their own, so old and new calls are
byte-identical.

CI runs the internal suite with ``-W error::DeprecationWarning``; any
in-repo caller of a deprecated spelling fails the build.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = ["MISSING", "deprecated_alias", "warn_deprecated"]

_REMOVE_IN = "2.0"


class _Missing:
    """Sentinel distinguishing "argument not passed" from any real value."""

    _instance: "_Missing | None" = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "..."

    def __bool__(self) -> bool:
        return False


#: Default for keyword parameters that participate in a rename; lets
#: :func:`deprecated_alias` detect a simultaneous old+new spelling.
MISSING = _Missing()


def warn_deprecated(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the standard rename warning (``old`` -> ``new``).

    ``stacklevel`` defaults to 3 so the warning points at the *caller* of
    the shim (shim -> helper -> warn), not at this module.
    """
    warnings.warn(
        f"{old} is deprecated and will be removed in {_REMOVE_IN}; "
        f"use {new} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def deprecated_alias(
    owner: str,
    new_name: str,
    new_value: Any,
    old_name: str,
    old_value: Any,
    default: Any,
) -> Any:
    """Resolve a renamed keyword argument.

    Exactly one of ``new_value`` / ``old_value`` may be a real value (the
    other being :data:`MISSING`); passing both raises ``TypeError``, passing
    the old spelling warns and delegates, passing neither yields
    ``default``.
    """
    if old_value is MISSING:
        return default if new_value is MISSING else new_value
    if new_value is not MISSING:
        raise TypeError(
            f"{owner}: pass either {new_name}= or the deprecated "
            f"{old_name}=, not both"
        )
    warn_deprecated(f"{owner}({old_name}=...)", f"{owner}({new_name}=...)",
                    stacklevel=4)
    return old_value
