"""The reprolint rule set (RL001–RL006).

Each rule encodes one invariant the library's determinism and performance
story depends on (see ``docs/static-analysis.md`` for the catalogue and
DESIGN.md for the promises being enforced):

* RL001 — oracle dependencies (networkx/scipy/pandas) stay out of library
  code; they are cross-validation oracles for the test suite only.
* RL002 — all randomness flows through :mod:`repro.rng`: no ad-hoc
  generator construction, no global seeding, and raw ``rng`` parameters are
  normalised with ``ensure_rng``/``spawn_rngs`` before anything is drawn.
* RL003 — no iteration order leaks from hash containers into ordered
  results (set iteration, dict views fed to list builders, ``id``/``hash``
  sort keys).
* RL004 — array allocations in the SCC kernels and the coarsening core
  always pin an explicit ``dtype=`` (the int32/int64 discipline of the
  FW-BW kernel), and any SCC module selecting ``np.int32`` derives its
  overflow bound from ``np.iinfo(np.int32)`` (the size gate the batched
  union kernel depends on).
* RL005 — durations come from monotonic clocks (``perf_counter`` or obs
  spans), never ``time.time()``.
* RL006 — no bare ``except:`` and no silently swallowed ``except
  Exception: pass``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext, Violation

__all__ = ["Rule", "RULES", "default_rules", "rule_ids"]


class Rule:
    """Base class: subclasses set the id/title/rationale and ``check``."""

    rule_id = "RL000"
    title = ""
    rationale = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def hit(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return ctx.violation(node, self.rule_id, message)


def _walk_no_nested_defs(nodes: "list[ast.AST]") -> Iterator[ast.AST]:
    """Walk nodes depth-first, yielding nested defs but not their bodies."""
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ForbiddenOracleImports(Rule):
    rule_id = "RL001"
    title = "forbidden oracle import"
    rationale = (
        "networkx/scipy/pandas are test-suite cross-validation oracles; "
        "library code paths must not depend on them (DESIGN.md)."
    )

    FORBIDDEN = ("networkx", "scipy", "pandas")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in self.FORBIDDEN:
                        yield self.hit(
                            ctx, node,
                            f"library code must not import oracle "
                            f"dependency '{top}' (tests-only)",
                        )
            elif isinstance(node, ast.ImportFrom):
                top = (node.module or "").split(".")[0]
                if node.level == 0 and top in self.FORBIDDEN:
                    yield self.hit(
                        ctx, node,
                        f"library code must not import oracle dependency "
                        f"'{top}' (tests-only)",
                    )


#: Generator methods that consume randomness.  Drawing via any of these on a
#: raw ``rng`` *parameter* means the int/None forms were never normalised.
DRAW_METHODS = frozenset({
    "random", "integers", "choice", "shuffle", "permutation", "permuted",
    "uniform", "normal", "standard_normal", "lognormal", "binomial",
    "poisson", "exponential", "geometric", "gamma", "beta", "dirichlet",
    "multinomial", "multivariate_normal", "bytes",
})

#: ``np.random.X`` attributes that are type/plumbing references, not draws.
_NP_RANDOM_TYPES = frozenset({
    "Generator", "BitGenerator", "SeedSequence", "PCG64", "Philox",
})


class RngDiscipline(Rule):
    rule_id = "RL002"
    title = "rng discipline"
    rationale = (
        "every stochastic entry point threads randomness through repro.rng "
        "(ensure_rng/spawn_rngs); ad-hoc generators and global seeding "
        "break run-to-run reproducibility."
    )

    def applies(self, ctx: FileContext) -> bool:
        # repro/rng.py is the one place allowed to build generators.
        return ctx.package_rel != "rng.py"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.hit(
                            ctx, node,
                            "stdlib 'random' is unseeded global state; use "
                            "repro.rng.ensure_rng instead",
                        )
                    elif alias.name.startswith("numpy.random"):
                        yield self.hit(
                            ctx, node,
                            "import numpy.random generators via "
                            "repro.rng, not directly",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                if module == "random" or module.startswith("random."):
                    yield self.hit(
                        ctx, node,
                        "stdlib 'random' is unseeded global state; use "
                        "repro.rng.ensure_rng instead",
                    )
                elif module.startswith("numpy.random"):
                    names = {alias.name for alias in node.names}
                    if not names <= _NP_RANDOM_TYPES:
                        yield self.hit(
                            ctx, node,
                            "import numpy.random generators via repro.rng, "
                            "not directly",
                        )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is None:
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if dotted.startswith(prefix):
                        leaf = dotted[len(prefix):]
                        if "." not in leaf and leaf not in _NP_RANDOM_TYPES:
                            yield self.hit(
                                ctx, node,
                                f"'{dotted}' bypasses repro.rng; construct "
                                f"generators with ensure_rng/spawn_rngs",
                            )
                        break
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_raw_rng(ctx, node)

    def _check_raw_rng(
        self, ctx: FileContext, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Violation]:
        """Flag draws on a raw ``rng`` parameter before normalisation."""
        arg_names = {
            a.arg
            for a in (
                *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs
            )
        }
        if "rng" not in arg_names:
            return
        normalised = False
        draws: list[ast.Call] = []
        # Nested defs are excluded: ast.walk reaches them via the module
        # walk and each is checked against its own parameter list.
        for node in _walk_no_nested_defs(list(func.body)):
            if isinstance(node, ast.Call):
                callee = node.func
                name = (
                    callee.id if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute)
                    else None
                )
                if name in ("ensure_rng", "spawn_rngs"):
                    normalised = True
                elif (
                    isinstance(callee, ast.Attribute)
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id == "rng"
                    and callee.attr in DRAW_METHODS
                ):
                    draws.append(node)
        if not normalised:
            for call in draws:
                assert isinstance(call.func, ast.Attribute)
                yield self.hit(
                    ctx, call,
                    f"function '{func.name}' draws 'rng.{call.func.attr}()' "
                    f"from its raw 'rng' parameter; normalise with "
                    f"ensure_rng(rng) (or spawn_rngs) first",
                )


#: Callables whose output order mirrors input iteration order.
_ORDERED_BUILDERS = frozenset({"list", "tuple", "enumerate"})
_NP_ORDERED_BUILDERS = frozenset({"fromiter", "array", "asarray"})
#: Only ``.keys()`` is treated as a hazard: ``.values()``/``.items()``
#: iteration is insertion-ordered and pervasively used for deterministic
#: display/aggregation, while ``.keys()`` feeding an ordered result is the
#: tell-tale of code that actually wanted a canonical (sorted) key order.
_DICT_VIEWS = frozenset({"keys"})


class NondeterministicIteration(Rule):
    rule_id = "RL003"
    title = "nondeterministic iteration order"
    rationale = (
        "set iteration order is an implementation detail (and hash- "
        "randomised for strings); feeding it into ordered results makes "
        "output depend on the interpreter, not the seed.  Wrap in "
        "sorted(...) to fix."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._scope(ctx, ctx.tree, set())

    # -- helpers -----------------------------------------------------------

    def _is_set_expr(self, node: ast.AST, set_names: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) and node.id in set_names:
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _is_dict_view(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
            and not node.args
            and not node.keywords
        )

    def _hazard(self, node: ast.AST, set_names: set[str]) -> str | None:
        if self._is_set_expr(node, set_names):
            return "a set"
        if self._is_dict_view(node):
            return f"a dict .{node.func.attr}() view"  # type: ignore[attr-defined]
        return None

    def _scope(
        self, ctx: FileContext, scope: ast.AST, outer_sets: set[str]
    ) -> Iterator[Violation]:
        """Check one function (or module) body with local set-name tracking."""
        set_names = set(outer_sets)
        body = scope.body if hasattr(scope, "body") else []
        # First pass: which local names are definitely sets?  A name loses
        # the mark if it is ever re-bound to something non-set.
        for node in self._walk_scope(body):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if self._is_set_expr(node.value, set_names - {target.id}):
                            set_names.add(target.id)
                        else:
                            set_names.discard(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    if self._is_set_expr(node.value, set_names):
                        set_names.add(node.target.id)
                    else:
                        set_names.discard(node.target.id)
        # Second pass: iteration sites.
        for node in self._walk_scope(body):
            yield from self._check_node(ctx, node, set_names)
        # Recurse into nested scopes with the current knowledge.
        for node in self._walk_scope(body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scope(ctx, node, set_names)

    def _walk_scope(self, body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into nested function defs."""
        return _walk_no_nested_defs(list(body))

    def _check_node(
        self, ctx: FileContext, node: ast.AST, set_names: set[str]
    ) -> Iterator[Violation]:
        if isinstance(node, ast.For):
            what = self._hazard(node.iter, set_names)
            if what is not None:
                yield self.hit(
                    ctx, node,
                    f"iterating {what} in a for loop leaks hash order into "
                    f"execution order; iterate sorted(...) instead",
                )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for gen in node.generators:
                what = self._hazard(gen.iter, set_names)
                if what is not None:
                    yield self.hit(
                        ctx, node,
                        f"building an ordered sequence from {what} depends "
                        f"on hash order; iterate sorted(...) instead",
                    )
        elif isinstance(node, ast.Call):
            yield from self._check_call(ctx, node, set_names)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, set_names: set[str]
    ) -> Iterator[Violation]:
        func = node.func
        builder: str | None = None
        if isinstance(func, ast.Name) and func.id in _ORDERED_BUILDERS:
            builder = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
            and func.attr in _NP_ORDERED_BUILDERS
        ):
            builder = f"np.{func.attr}"
        if builder is not None and node.args:
            what = self._hazard(node.args[0], set_names)
            if what is not None:
                yield self.hit(
                    ctx, node,
                    f"{builder}(...) over {what} bakes hash order into an "
                    f"ordered result; wrap the iterable in sorted(...)",
                )
        # id()/hash()-keyed sorts: deterministic within a process at best.
        is_sort = (isinstance(func, ast.Name) and func.id == "sorted") or (
            isinstance(func, ast.Attribute) and func.attr == "sort"
        )
        if is_sort:
            for kw in node.keywords:
                if (
                    kw.arg == "key"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in ("id", "hash")
                ):
                    yield self.hit(
                        ctx, node,
                        f"sorting with key={kw.value.id} orders by memory "
                        f"address/hash, which varies between runs",
                    )


class DtypeDiscipline(Rule):
    rule_id = "RL004"
    title = "implicit array dtype"
    rationale = (
        "the SCC kernels and the coarsening core rely on exact int32/int64 "
        "layouts (docs/performance.md); allocations must pin dtype= "
        "explicitly so a refactor cannot silently widen or float-ify them."
    )

    SCOPES = ("scc/", "core/")
    #: The int32-gate sub-check applies to the SCC kernels only: that is
    #: where narrow indices buy bandwidth and where an ungated int32 can
    #: silently overflow on a large (or batched-union) domain.
    GATE_SCOPES = ("scc/",)
    ALLOCATORS = frozenset({"empty", "zeros", "ones", "full", "arange"})

    def applies(self, ctx: FileContext) -> bool:
        return ctx.package_rel.startswith(self.SCOPES)

    @staticmethod
    def _is_np_int32(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "int32"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        int32_uses: "list[ast.AST]" = []
        gated = False
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                if self._is_np_int32(node):
                    int32_uses.append(node)
                continue
            func = node.func
            if not (
                isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
            ):
                continue
            if func.attr == "iinfo" and any(
                self._is_np_int32(arg) for arg in node.args
            ):
                gated = True
            if func.attr in self.ALLOCATORS and not any(
                kw.arg == "dtype" for kw in node.keywords
            ):
                yield self.hit(
                    ctx, node,
                    f"np.{func.attr}(...) without an explicit dtype= in a "
                    f"kernel module; pin the dtype",
                )
        # int32 indices are a *size-gated* optimisation: any kernel module
        # that selects np.int32 must also derive its overflow bound from
        # np.iinfo(np.int32) (the fwbw/multi discipline) — a hard-coded or
        # missing bound silently corrupts labels past 2**31 elements.
        if ctx.package_rel.startswith(self.GATE_SCOPES) and not gated:
            # iinfo(np.int32) arguments are themselves np.int32 attribute
            # nodes, but ``gated`` is False here, so none of these uses
            # came from the gate expression.
            for use in int32_uses[:1]:
                yield self.hit(
                    ctx, use,
                    "np.int32 selected without an np.iinfo(np.int32) size "
                    "gate in this module; derive the overflow bound before "
                    "narrowing indices",
                )


class WallClockHygiene(Rule):
    rule_id = "RL005"
    title = "wall clock used for durations"
    rationale = (
        "time.time() jumps with NTP/DST adjustments; measure durations "
        "with time.perf_counter() or a repro.obs span "
        "(docs/observability.md)."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _dotted(node.func) == "time.time":
                yield self.hit(
                    ctx, node,
                    "time.time() is not monotonic; use time.perf_counter() "
                    "or an obs span for durations",
                )
            elif (
                isinstance(node, ast.ImportFrom)
                and node.level == 0
                and node.module == "time"
                and any(alias.name == "time" for alias in node.names)
            ):
                yield self.hit(
                    ctx, node,
                    "importing time.time invites wall-clock timing; import "
                    "perf_counter instead",
                )


class ExceptionSwallowing(Rule):
    rule_id = "RL006"
    title = "exception swallowing"
    rationale = (
        "bare except catches KeyboardInterrupt/SystemExit, and 'except "
        "Exception: pass' hides real failures from the caller and the obs "
        "layer; catch the narrowest type and handle or re-raise."
    )

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.hit(
                    ctx, node,
                    "bare 'except:' also catches KeyboardInterrupt/"
                    "SystemExit; name the exception type",
                )
                continue
            names = []
            types = (
                node.type.elts if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for t in types:
                if isinstance(t, ast.Name):
                    names.append(t.id)
            if any(n in self._BROAD for n in names) and all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is Ellipsis
                )
                for stmt in node.body
            ):
                yield self.hit(
                    ctx, node,
                    "'except Exception: pass' swallows failures silently; "
                    "handle, log, or re-raise",
                )


RULES: tuple[Rule, ...] = (
    ForbiddenOracleImports(),
    RngDiscipline(),
    NondeterministicIteration(),
    DtypeDiscipline(),
    WallClockHygiene(),
    ExceptionSwallowing(),
)


def default_rules() -> tuple[Rule, ...]:
    """The full registered rule set, in id order."""
    return RULES


def rule_ids() -> list[str]:
    return [rule.rule_id for rule in RULES]
