"""``python -m repro.lint`` / ``repro lint`` entry point.

Exit codes follow the usual linter convention: 0 clean, 1 violations
found, 2 usage error.

``--strict`` enables the project-scope concurrency pass (RL101–RL104,
:mod:`repro.lint.concurrency`); ``--profile bench`` relaxes the rule set
for ``benchmarks/`` and ``scripts/`` trees (oracle imports are the point
of a benchmark baseline, so RL001 is off; determinism rules stay on);
``--report-unused-suppressions`` adds RL007 findings for waiver comments
that no longer silence anything.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .concurrency import PROJECT_RULES
from .engine import UNUSED_SUPPRESSION_RULE, lint_paths
from .reporting import REPORTERS
from .rules import RULES
from .rules import rule_ids as file_rule_ids

__all__ = ["build_parser", "main", "run", "PROFILES"]

#: Path-scoped rule profiles: profile name -> per-file rule ids dropped.
#: "bench" is for benchmark/script trees, where importing the oracle
#: (networkx et al.) is the point — everything else still applies.
PROFILES: "dict[str, frozenset[str]]" = {
    "default": frozenset(),
    "bench": frozenset({"RL001"}),
}


def _default_target() -> Path:
    """Lint the installed ``repro`` package when no path is given."""
    return Path(__file__).resolve().parent.parent


def all_rule_ids() -> "list[str]":
    """Every selectable rule id: per-file, project, and RL007."""
    return (file_rule_ids()
            + [rule.rule_id for rule in PROJECT_RULES]
            + [UNUSED_SUPPRESSION_RULE])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="reprolint: AST-based invariant checks for the repro "
                    "library (see docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default %(default)s)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also run the project-scope concurrency rules (RL101-RL104)",
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="default",
        help="path-scoped rule profile; 'bench' allows oracle imports "
             "(benchmarks/ and scripts/ trees)",
    )
    parser.add_argument(
        "--report-unused-suppressions", action="store_true",
        help="flag stale '# reprolint: disable=' comments as RL007",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _parse_rule_set(text: str, parser: argparse.ArgumentParser) -> set[str]:
    wanted = {part.strip().upper() for part in text.split(",") if part.strip()}
    known = set(all_rule_ids())
    unknown = wanted - known
    if unknown:
        parser.error(
            f"unknown rule id(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(all_rule_ids())}"
        )
    return wanted


def run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.list_rules:
        catalogue = list(RULES) + list(PROJECT_RULES)
        for rule in catalogue:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"       {rule.rationale}")
        print(f"{UNUSED_SUPPRESSION_RULE}  stale suppression comment "
              "(via --report-unused-suppressions)")
        print("       a waiver whose rule no longer fires hides nothing "
              "and should be removed")
        return 0
    rules = [r for r in RULES if r.rule_id not in PROFILES[args.profile]]
    project = list(PROJECT_RULES) if args.strict else []
    if args.select:
        keep = _parse_rule_set(args.select, parser)
        rules = [r for r in rules if r.rule_id in keep]
        project = [r for r in project if r.rule_id in keep]
    if args.ignore:
        drop = _parse_rule_set(args.ignore, parser)
        rules = [r for r in rules if r.rule_id not in drop]
        project = [r for r in project if r.rule_id not in drop]
    paths = [Path(p) for p in args.paths] or [_default_target()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(map(str, missing))}")
    violations = lint_paths(
        paths,
        rules=rules,
        project_rules=project or None,
        report_unused=args.report_unused_suppressions,
    )
    print(REPORTERS[args.format](violations))
    return 1 if violations else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args, parser)


if __name__ == "__main__":
    sys.exit(main())
