"""``python -m repro.lint`` / ``repro lint`` entry point.

Exit codes follow the usual linter convention: 0 clean, 1 violations
found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import lint_paths
from .reporting import REPORTERS
from .rules import RULES, rule_ids

__all__ = ["build_parser", "main", "run"]


def _default_target() -> Path:
    """Lint the installed ``repro`` package when no path is given."""
    return Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="reprolint: AST-based invariant checks for the repro "
                    "library (see docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default %(default)s)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _parse_rule_set(text: str, parser: argparse.ArgumentParser) -> set[str]:
    wanted = {part.strip().upper() for part in text.split(",") if part.strip()}
    known = set(rule_ids())
    unknown = wanted - known
    if unknown:
        parser.error(
            f"unknown rule id(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(rule_ids())}"
        )
    return wanted


def run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"       {rule.rationale}")
        return 0
    rules = list(RULES)
    if args.select:
        keep = _parse_rule_set(args.select, parser)
        rules = [r for r in rules if r.rule_id in keep]
    if args.ignore:
        drop = _parse_rule_set(args.ignore, parser)
        rules = [r for r in rules if r.rule_id not in drop]
    paths = [Path(p) for p in args.paths] or [_default_target()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(map(str, missing))}")
    violations = lint_paths(paths, rules=rules)
    print(REPORTERS[args.format](violations))
    return 1 if violations else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args, parser)


if __name__ == "__main__":
    sys.exit(main())
