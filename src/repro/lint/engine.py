"""Core of the ``reprolint`` static-analysis pass.

The engine is deliberately tiny: it parses each file once with the stdlib
:mod:`ast` module, hands the tree to every registered rule, and filters the
reported violations through inline suppression comments.  Rules are pure
functions of the parse tree plus a little file context (most importantly the
path *relative to the repro package*, so path-scoped rules like RL004 can
tell ``scc/fwbw.py`` apart from ``datasets/generators.py``).

Suppression grammar (comments, parsed with :mod:`tokenize` so strings that
merely *contain* the text do not count)::

    x = risky()               # reprolint: disable=RL003 - justification
    y = risky()               # reprolint: disable=RL003,RL005
    # reprolint: disable-file=RL001 - whole-file waiver

``disable`` applies to every line spanned by the violating statement;
``disable-file`` applies to the whole file.  ``all`` is accepted in place of
a rule list.  Every suppression should carry a justification after the rule
ids — the grammar stops at the first token that is not a rule id or comma.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Violation",
    "FileContext",
    "Suppressions",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "package_relative",
]

#: Rule id used for files the engine cannot parse at all.
PARSE_ERROR_RULE = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z][A-Za-z0-9]*(?:\s*,\s*[A-Za-z][A-Za-z0-9]*)*)"
)


@dataclass(frozen=True)
class Violation:
    """One rule hit: ``path:line:col: RLxxx message``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: Last line of the offending statement; a suppression comment anywhere
    #: in ``line..end_line`` silences the violation (multi-line calls).
    end_line: int = 0

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Inline suppression state for one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_level: set[str] = field(default_factory=set)

    def silences(self, violation: Violation) -> bool:
        if {"ALL", violation.rule_id} & self.file_level:
            return True
        last = max(violation.end_line, violation.line)
        for line in range(violation.line, last + 1):
            rules = self.by_line.get(line)
            if rules and {"ALL", violation.rule_id} & rules:
                return True
        return False


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    display: str
    source: str
    tree: ast.Module
    #: Path relative to the ``repro`` package root (``"scc/fwbw.py"``), or
    #: relative to the scan root for files outside the package (so fixture
    #: trees can mirror the package layout for path-scoped rules).
    package_rel: str

    def violation(self, node: ast.AST, rule_id: str, message: str) -> Violation:
        return Violation(
            path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            end_line=getattr(node, "end_lineno", 0) or 0,
        )


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# reprolint: disable=...`` comments via the tokenizer."""
    supp = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = {r.strip().upper() for r in match.group("rules").split(",")}
            if match.group("kind") == "disable-file":
                supp.file_level |= rules
            else:
                supp.by_line.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # the ast parse will report the real problem
    return supp


def package_relative(path: Path, root: Path | None = None) -> str:
    """Path relative to the ``repro`` package (or to the scan root).

    ``src/repro/scc/fwbw.py`` -> ``scc/fwbw.py``.  Files outside a ``repro``
    directory fall back to the path relative to ``root`` so that fixture
    trees (``tests/lint_fixtures/scc/bad.py``) can opt into path-scoped
    rules by mirroring the package layout.
    """
    parts = path.resolve().parts
    for i in range(len(parts) - 1, 0, -1):
        if parts[i - 1] == "repro":
            return "/".join(parts[i:])
    if root is not None:
        try:
            rel = path.resolve().relative_to(root.resolve())
            return rel.as_posix()
        except ValueError:
            pass
    return path.name


def lint_source(
    source: str,
    display: str = "<string>",
    package_rel: str | None = None,
    rules: "Iterable[object] | None" = None,
) -> list[Violation]:
    """Lint one source string and return unsuppressed violations, sorted."""
    from .rules import default_rules

    active = list(default_rules() if rules is None else rules)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=PARSE_ERROR_RULE,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    ctx = FileContext(
        display=display,
        source=source,
        tree=tree,
        package_rel=package_rel if package_rel is not None else display,
    )
    supp = parse_suppressions(source)
    found: list[Violation] = []
    for rule in active:
        if not rule.applies(ctx):  # type: ignore[attr-defined]
            continue
        found.extend(rule.check(ctx))  # type: ignore[attr-defined]
    return sorted(
        (v for v in found if not supp.silences(v)),
        key=Violation.sort_key,
    )


def lint_file(
    path: Path,
    root: Path | None = None,
    rules: "Iterable[object] | None" = None,
) -> list[Violation]:
    """Lint one file on disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Violation(
                path=str(path),
                line=1,
                col=1,
                rule_id=PARSE_ERROR_RULE,
                message=f"could not read file: {exc}",
            )
        ]
    return lint_source(
        source,
        display=str(path),
        package_rel=package_relative(path, root),
        rules=rules,
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[tuple[Path, Path]]:
    """Yield ``(file, scan_root)`` for every ``.py`` under ``paths``.

    Directories are walked recursively in sorted order so reports are stable
    across filesystems; ``__pycache__`` is skipped.
    """
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" in file.parts:
                    continue
                yield file, path
        else:
            yield path, path.parent


def lint_paths(
    paths: Iterable[Path],
    rules: "Iterable[object] | None" = None,
) -> list[Violation]:
    """Lint every python file under ``paths``; returns sorted violations."""
    from .rules import default_rules

    active = list(default_rules() if rules is None else rules)
    found: list[Violation] = []
    for file, root in iter_python_files(paths):
        found.extend(lint_file(file, root=root, rules=active))
    return sorted(found, key=Violation.sort_key)
