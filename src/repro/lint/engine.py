"""Core of the ``reprolint`` static-analysis pass.

The engine runs two passes.  Pass one parses every file once with the
stdlib :mod:`ast` module and hands each tree to the per-file rules
(RL001–RL006) — pure functions of the parse tree plus a little file
context (most importantly the path *relative to the repro package*, so
path-scoped rules like RL004 can tell ``scc/fwbw.py`` apart from
``datasets/generators.py``).  Pass two, enabled by ``--strict``, builds a
whole-project symbol index (:mod:`repro.lint.index`) over the same parse
trees and evaluates the cross-module concurrency rules
(:mod:`repro.lint.concurrency`, RL101–RL104) against it.  Violations from
both passes flow through the same inline-suppression filter.

Suppression grammar (comments, parsed with :mod:`tokenize` so strings that
merely *contain* the text do not count)::

    x = risky()               # reprolint: disable=RL003 - justification
    y = risky()               # reprolint: disable=RL003,RL005
    # reprolint: disable-file=RL001 - whole-file waiver

``disable`` applies to every line spanned by the violating statement;
``disable-file`` applies to the whole file.  ``all`` is accepted in place of
a rule list.  Every suppression should carry a justification after the rule
ids — the grammar stops at the first token that is not a rule id or comma.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Violation",
    "FileContext",
    "Suppressions",
    "SuppressionComment",
    "ParsedFile",
    "parse_source",
    "collect_files",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "package_relative",
]

#: Rule id used for files the engine cannot parse at all.
PARSE_ERROR_RULE = "RL000"
#: Rule id for stale suppression comments (``--report-unused-suppressions``).
UNUSED_SUPPRESSION_RULE = "RL007"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z][A-Za-z0-9]*(?:\s*,\s*[A-Za-z][A-Za-z0-9]*)*)"
)


@dataclass(frozen=True)
class Violation:
    """One rule hit: ``path:line:col: RLxxx message``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: Last line of the offending statement; a suppression comment anywhere
    #: in ``line..end_line`` silences the violation (multi-line calls).
    end_line: int = 0

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True)
class SuppressionComment:
    """One ``# reprolint: disable[...]`` comment, as written in source."""

    line: int
    kind: str  # "disable" | "disable-file"
    rules: frozenset

    def covers(self, violation: Violation) -> bool:
        """Would this comment silence ``violation``?"""
        if not {"ALL", violation.rule_id} & self.rules:
            return False
        if self.kind == "disable-file":
            return True
        last = max(violation.end_line, violation.line)
        return violation.line <= self.line <= last


@dataclass
class Suppressions:
    """Inline suppression state for one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_level: set[str] = field(default_factory=set)
    #: Every comment as written, for stale-waiver detection (RL007).
    comments: "list[SuppressionComment]" = field(default_factory=list)

    def silences(self, violation: Violation) -> bool:
        if {"ALL", violation.rule_id} & self.file_level:
            return True
        last = max(violation.end_line, violation.line)
        for line in range(violation.line, last + 1):
            rules = self.by_line.get(line)
            if rules and {"ALL", violation.rule_id} & rules:
                return True
        return False


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    display: str
    source: str
    tree: ast.Module
    #: Path relative to the ``repro`` package root (``"scc/fwbw.py"``), or
    #: relative to the scan root for files outside the package (so fixture
    #: trees can mirror the package layout for path-scoped rules).
    package_rel: str

    def violation(self, node: ast.AST, rule_id: str, message: str) -> Violation:
        return Violation(
            path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            end_line=getattr(node, "end_lineno", 0) or 0,
        )


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# reprolint: disable=...`` comments via the tokenizer."""
    supp = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = {r.strip().upper() for r in match.group("rules").split(",")}
            kind = match.group("kind")
            supp.comments.append(SuppressionComment(
                line=tok.start[0], kind=kind, rules=frozenset(rules),
            ))
            if kind == "disable-file":
                supp.file_level |= rules
            else:
                supp.by_line.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # the ast parse will report the real problem
    return supp


def package_relative(path: Path, root: Path | None = None) -> str:
    """Path relative to the ``repro`` package (or to the scan root).

    ``src/repro/scc/fwbw.py`` -> ``scc/fwbw.py``.  Files outside a ``repro``
    directory fall back to the path relative to ``root`` so that fixture
    trees (``tests/lint_fixtures/scc/bad.py``) can opt into path-scoped
    rules by mirroring the package layout.
    """
    parts = path.resolve().parts
    for i in range(len(parts) - 1, 0, -1):
        if parts[i - 1] == "repro":
            return "/".join(parts[i:])
    if root is not None:
        try:
            rel = path.resolve().relative_to(root.resolve())
            return rel.as_posix()
        except ValueError:
            pass
    return path.name


@dataclass
class ParsedFile:
    """One file after pass-one parsing (tree, suppressions, or error)."""

    ctx: "FileContext | None"
    suppressions: Suppressions
    error: "Violation | None" = None


def parse_source(
    source: str,
    display: str = "<string>",
    package_rel: str | None = None,
) -> ParsedFile:
    """Parse one source string into a :class:`ParsedFile`."""
    supp = parse_suppressions(source)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return ParsedFile(
            ctx=None,
            suppressions=supp,
            error=Violation(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=PARSE_ERROR_RULE,
                message=f"could not parse file: {exc.msg}",
            ),
        )
    ctx = FileContext(
        display=display,
        source=source,
        tree=tree,
        package_rel=package_rel if package_rel is not None else display,
    )
    return ParsedFile(ctx=ctx, suppressions=supp)


def parse_file(path: Path, root: Path | None = None) -> ParsedFile:
    """Parse one file on disk into a :class:`ParsedFile`."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return ParsedFile(
            ctx=None,
            suppressions=Suppressions(),
            error=Violation(
                path=str(path),
                line=1,
                col=1,
                rule_id=PARSE_ERROR_RULE,
                message=f"could not read file: {exc}",
            ),
        )
    return parse_source(
        source,
        display=str(path),
        package_rel=package_relative(path, root),
    )


def collect_files(paths: Iterable[Path]) -> "list[ParsedFile]":
    """Parse every python file under ``paths`` (pass one, no rules yet)."""
    return [parse_file(file, root=root)
            for file, root in iter_python_files(paths)]


def _check_file(
    pf: ParsedFile, rules: "Iterable[object]"
) -> "list[Violation]":
    found: "list[Violation]" = []
    for rule in rules:
        if not rule.applies(pf.ctx):  # type: ignore[attr-defined]
            continue
        found.extend(rule.check(pf.ctx))  # type: ignore[attr-defined]
    return found


def _stale_suppressions(
    parsed: "list[ParsedFile]",
    raw_by_file: "dict[str, list[Violation]]",
    checked_ids: "set[str]",
) -> "list[Violation]":
    """RL007: per-rule findings for waivers that no longer silence anything.

    A comment's rule id is *stale* when no pre-filter violation of that
    rule is covered by the comment.  Rule ids outside ``checked_ids`` are
    skipped — a waiver for a rule this run did not evaluate (e.g. RL104
    without ``--strict``) cannot be judged stale.
    """
    found: "list[Violation]" = []
    for pf in parsed:
        if pf.ctx is None:
            continue
        raw = raw_by_file.get(pf.ctx.display, [])
        for comment in pf.suppressions.comments:
            ids = sorted(comment.rules)
            if "ALL" in comment.rules:
                ids = ["ALL"]
            for rule_id in ids:
                if rule_id != "ALL" and rule_id not in checked_ids:
                    continue
                probe = comment.rules if rule_id == "ALL" \
                    else frozenset({rule_id})
                narrowed = SuppressionComment(
                    line=comment.line, kind=comment.kind, rules=probe,
                )
                if any(narrowed.covers(v) for v in raw):
                    continue
                what = ("suppression" if rule_id == "ALL"
                        else f"suppression of {rule_id}")
                where = ("in this file" if comment.kind == "disable-file"
                         else "on this line")
                found.append(Violation(
                    path=pf.ctx.display,
                    line=comment.line,
                    col=1,
                    rule_id=UNUSED_SUPPRESSION_RULE,
                    message=(
                        f"stale {what}: the rule no longer fires {where}"
                        f" — remove the waiver"
                    ),
                ))
    return found


def lint_source(
    source: str,
    display: str = "<string>",
    package_rel: str | None = None,
    rules: "Iterable[object] | None" = None,
) -> list[Violation]:
    """Lint one source string and return unsuppressed violations, sorted."""
    from .rules import default_rules

    active = list(default_rules() if rules is None else rules)
    pf = parse_source(source, display=display, package_rel=package_rel)
    if pf.error is not None:
        return [pf.error]
    found = _check_file(pf, active)
    return sorted(
        (v for v in found if not pf.suppressions.silences(v)),
        key=Violation.sort_key,
    )


def lint_file(
    path: Path,
    root: Path | None = None,
    rules: "Iterable[object] | None" = None,
) -> list[Violation]:
    """Lint one file on disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Violation(
                path=str(path),
                line=1,
                col=1,
                rule_id=PARSE_ERROR_RULE,
                message=f"could not read file: {exc}",
            )
        ]
    return lint_source(
        source,
        display=str(path),
        package_rel=package_relative(path, root),
        rules=rules,
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[tuple[Path, Path]]:
    """Yield ``(file, scan_root)`` for every ``.py`` under ``paths``.

    Directories are walked recursively in sorted order so reports are stable
    across filesystems; ``__pycache__`` is skipped.
    """
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" in file.parts:
                    continue
                yield file, path
        else:
            yield path, path.parent


def lint_paths(
    paths: Iterable[Path],
    rules: "Iterable[object] | None" = None,
    project_rules: "Iterable[object] | None" = None,
    report_unused: bool = False,
) -> list[Violation]:
    """Lint every python file under ``paths``; returns sorted violations.

    ``rules`` are the per-file pass; ``project_rules`` (RL101–RL104, or
    any object with ``check_project(index)``) trigger the project pass: a
    :class:`~repro.lint.index.ProjectIndex` is built over every parsed
    file and each project rule runs once against it.  With
    ``report_unused``, suppression comments that no longer silence any
    evaluated rule are reported as RL007.
    """
    from .rules import default_rules

    active = list(default_rules() if rules is None else rules)
    project = list(project_rules) if project_rules is not None else []
    parsed = collect_files(paths)

    raw_by_file: "dict[str, list[Violation]]" = {}
    errors: "list[Violation]" = []
    for pf in parsed:
        if pf.ctx is None:
            if pf.error is not None:
                errors.append(pf.error)
            continue
        raw_by_file[pf.ctx.display] = _check_file(pf, active)

    if project:
        from .index import build_index

        index = build_index(pf.ctx for pf in parsed if pf.ctx is not None)
        for rule in project:
            for violation in rule.check_project(index):  # type: ignore[attr-defined]
                raw_by_file.setdefault(violation.path, []).append(violation)

    suppress_map = {
        pf.ctx.display: pf.suppressions for pf in parsed
        if pf.ctx is not None
    }
    kept = list(errors)
    for display, violations in raw_by_file.items():
        supp = suppress_map.get(display, Suppressions())
        kept.extend(v for v in violations if not supp.silences(v))
    if report_unused:
        checked = {r.rule_id for r in active}  # type: ignore[attr-defined]
        checked |= {r.rule_id for r in project}  # type: ignore[attr-defined]
        kept.extend(_stale_suppressions(parsed, raw_by_file, checked))
    return sorted(kept, key=Violation.sort_key)
