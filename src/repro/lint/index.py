"""Project symbol index — pass one of the two-pass reprolint pipeline.

Per-file rules (RL001–RL006) see one parse tree at a time.  The
concurrency family (RL101–RL104, :mod:`repro.lint.concurrency`) has to
reason *across* modules: ``DynamicModel.apply_deltas`` holds its mutation
lock while calling into ``InfluenceService._publish_epoch``, which takes
the pool lock, which orders two locks that live in different files.  This
module builds the whole-project table those rules consume:

* every class, its methods, and its ``threading`` primitive fields
  (``self._lock = threading.Lock()``);
* every write to a ``self.<attr>`` — rebinds, subscript stores, augmented
  assigns, and in-place mutator calls (``.append``/``.update``/…) — with
  the set of *own-class* locks lexically held at the write;
* every ``with self._lock:`` acquisition, with the locks already held
  (the static lock-acquisition graph for RL102);
* cross-method/cross-class call sites, resolved through field types
  (``self.cache = ModelCache(...)`` makes ``self.cache.put`` resolve to
  ``ModelCache.put``) and parameter annotations (including string
  annotations like ``service: "InfluenceService"``);
* publication sites: attributes returned directly from a method or stored
  into a published tuple (``self._current = (..., self._chain)``) — the
  inputs to the torn-publish rule RL103;
* ``#: guarded-by: <lock>`` annotation comments pinning author intent.

Lock *identity* is the qualified field, ``ClassName.field`` — two classes
each owning a ``_lock`` are two locks.  Because a private helper like
``ModelCache._evict_lru`` mutates guarded state without a local ``with``,
the index also computes an **entry lockset** per private method: the
intersection, over every resolved intra-project call site, of the locks
held at the call (plus the caller's own entry lockset), iterated to a
fixed point.  A method whose name is ever referenced without being called
(e.g. handed to ``executor.submit``) escapes the analysis and gets the
empty entry lockset.  The approximation is sound in the direction that
matters: it can miss held locks (false RL101 positives are then silenced
by an explicit annotation or waiver), never invent them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .engine import FileContext

__all__ = [
    "LOCK_KINDS",
    "PRIMITIVE_KINDS",
    "MUTATOR_METHODS",
    "LockField",
    "WriteSite",
    "AcquireSite",
    "CallSite",
    "PublishSite",
    "PrimitiveSite",
    "MethodRecord",
    "ClassIndex",
    "ProjectIndex",
    "build_index",
    "build_index_for_paths",
]

#: Primitive kinds usable as guards (identity-stable mutual exclusion).
LOCK_KINDS = frozenset({"Lock", "RLock"})
#: Everything RL104 recognises as a concurrency primitive constructor.
PRIMITIVE_KINDS = LOCK_KINDS | frozenset({
    "Semaphore", "BoundedSemaphore", "Condition", "Event", "Barrier",
    "local",
})
#: Method names treated as in-place mutations of their receiver.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end", "sort",
    "reverse", "appendleft", "extendleft", "popleft", "fill", "resize",
})

_GUARDED_BY_RE = re.compile(
    r"#:\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)"
)
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
#: Names that can appear inside a type annotation without naming a class.
_ANN_NOISE = frozenset({"None", "Optional", "Union", "Sequence", "list",
                        "dict", "tuple", "set", "str", "int", "float",
                        "bool", "bytes"})

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class LockField:
    """One ``self.<name> = threading.<kind>()`` field of a class."""

    name: str
    kind: str
    line: int


@dataclass
class WriteSite:
    """One write to ``self.<attr>`` inside a method body."""

    attr: str
    method: str
    line: int
    col: int
    end_line: int
    #: Own-class lock fields lexically held (``with self.X:``) at the write.
    locks: frozenset
    #: ``"bind"`` rebinds the attribute; ``"mutate"`` changes the object
    #: in place (subscript store, augmented assign, mutator-method call).
    kind: str
    in_init: bool


@dataclass(frozen=True)
class AcquireSite:
    """One ``with self.<lock>:`` acquisition."""

    lock: str
    line: int
    #: Own-class locks already lexically held when this one is taken.
    held: tuple


@dataclass
class CallSite:
    """One resolvable call observed inside a method body.

    ``root_hint`` is ``None`` for ``self.…`` chains, otherwise the raw
    type text of the chain's root (a parameter annotation, or a class
    name for a direct constructor call).  Resolution against the index
    happens in :meth:`ProjectIndex._resolve`.
    """

    root_hint: "str | None"
    attrs: tuple
    method: str
    held: tuple
    line: int
    target: "tuple[str, str] | None" = None


@dataclass(frozen=True)
class PublishSite:
    """One point where ``self.<attr>`` leaks to other threads."""

    attr: str
    method: str
    line: int
    #: ``"returned"`` (getter) or ``"stored"`` (into a published tuple).
    how: str


@dataclass(frozen=True)
class PrimitiveSite:
    """One ``threading.<kind>()`` constructor call."""

    kind: str
    path: str
    line: int
    col: int
    end_line: int
    #: Human description of where it runs ("module scope", "class body",
    #: "ClassName.__init__", "ClassName.method", "function f").
    context: str
    allowed: bool


@dataclass
class MethodRecord:
    """Per-method facts collected by the class scanner."""

    name: str
    is_init: bool
    line: int
    acquires: "list[AcquireSite]" = field(default_factory=list)
    calls: "list[CallSite]" = field(default_factory=list)


@dataclass
class ClassIndex:
    """Everything the concurrency rules need to know about one class."""

    name: str
    module: str
    path: str
    line: int
    lock_fields: "dict[str, LockField]" = field(default_factory=dict)
    sem_fields: "dict[str, LockField]" = field(default_factory=dict)
    methods: "dict[str, MethodRecord]" = field(default_factory=dict)
    writes: "list[WriteSite]" = field(default_factory=list)
    publishes: "list[PublishSite]" = field(default_factory=list)
    #: ``#: guarded-by:`` annotations, attribute name -> lock field name.
    annotations: "dict[str, str]" = field(default_factory=dict)
    #: Attribute name -> raw type text (from ``self.x = Cls(...)`` or an
    #: annotated constructor parameter assigned through).
    field_types: "dict[str, str]" = field(default_factory=dict)

    def qualify(self, lock: str) -> str:
        return f"{self.name}.{lock}"


@dataclass
class GuardInfo:
    """The inferred (or annotated) guard of one attribute."""

    attr: str
    guard: "str | None"
    source: str  # "annotation" | "inference"
    unguarded: "list[WriteSite]"
    unknown_lock: bool = False


class _MethodScan:
    """Held-lock-tracking walk of one method body.

    Statements are walked recursively so the lexical lock state is exact
    through ``with``/``if``/``for``/``try``/``match`` nesting (including
    multi-item and parenthesized ``with (a, b):`` forms); nested function
    and class definitions open new scopes and are only scanned for
    primitive constructors (RL104), never for writes.
    """

    def __init__(self, cls: ClassIndex, record: MethodRecord,
                 params: "dict[str, str]", refs: "set[str]",
                 primitives: "list[PrimitiveSite]",
                 comments: "dict[int, str]") -> None:
        self.cls = cls
        self.record = record
        self.params = params
        self.refs = refs
        self.primitives = primitives
        self.comments = comments
        self.held: "list[str]" = []

    # -- statements ----------------------------------------------------

    def block(self, stmts: "Iterable[ast.stmt]") -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, _FUNC_DEFS):
            for deco in node.decorator_list:
                self.expr(deco)
            _scan_primitives(
                node, self.cls.path,
                f"{self.cls.name}.{self.record.name}", allowed=False,
                out=self.primitives,
            )
            return
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = 0
            for item in node.items:
                lock = self._self_lock(item.context_expr)
                if lock is not None:
                    self.record.acquires.append(AcquireSite(
                        lock=lock, line=item.context_expr.lineno,
                        held=tuple(self.held),
                    ))
                    self.held.append(lock)
                    acquired += 1
                else:
                    self.expr(item.context_expr)
                if item.optional_vars is not None:
                    self.target(item.optional_vars, node)
            self.block(node.body)
            for _ in range(acquired):
                self.held.pop()
            return
        if isinstance(node, (ast.If, ast.While)):
            self.expr(node.test)
            self.block(node.body)
            self.block(node.orelse)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self.target(node.target, node)
            self.expr(node.iter)
            self.block(node.body)
            self.block(node.orelse)
            return
        if isinstance(node, ast.Try) or node.__class__.__name__ == "TryStar":
            self.block(node.body)
            for handler in node.handlers:
                self.block(handler.body)
            self.block(node.orelse)
            self.block(node.finalbody)
            return
        if isinstance(node, ast.Match):
            self.expr(node.subject)
            for case in node.cases:
                if case.guard is not None:
                    self.expr(case.guard)
                self.block(case.body)
            return
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                self.target(tgt, node)
            self._tuple_publish(node)
            self.expr(node.value)
            return
        if isinstance(node, ast.AnnAssign):
            self.target(node.target, node)
            if node.value is not None:
                self.expr(node.value)
            return
        if isinstance(node, ast.AugAssign):
            attr = self._self_attr(node.target)
            if attr is not None:
                self.write(attr, node, kind="mutate")
            elif (isinstance(node.target, ast.Subscript)
                    and self._self_attr(node.target.value) is not None):
                self.write(self._self_attr(node.target.value), node,
                           kind="mutate")
                self.expr(node.target.slice)
            else:
                self.expr(node.target)
            self.expr(node.value)
            return
        if isinstance(node, ast.Delete):
            for tgt in node.targets:
                if (isinstance(tgt, ast.Subscript)
                        and self._self_attr(tgt.value) is not None):
                    self.write(self._self_attr(tgt.value), node,
                               kind="mutate")
                    self.expr(tgt.slice)
                else:
                    attr = self._self_attr(tgt)
                    if attr is not None:
                        self.write(attr, node, kind="bind")
                    else:
                        self.expr(tgt)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                self._return_publish(node.value)
                self.expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)

    # -- assignment targets --------------------------------------------

    def target(self, node: ast.expr, stmt: ast.stmt) -> None:
        attr = self._self_attr(node)
        if attr is not None:
            self.write(attr, stmt, kind="bind")
            self._annotate(attr, stmt)
            return
        if isinstance(node, ast.Subscript):
            base = self._self_attr(node.value)
            if base is not None:
                self.write(base, stmt, kind="mutate")
            else:
                self.expr(node.value)
            self.expr(node.slice)
            return
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self.target(elt, stmt)
            return
        if isinstance(node, ast.Starred):
            self.target(node.value, stmt)
            return
        if not isinstance(node, ast.Name):
            self.expr(node)

    # -- expressions ---------------------------------------------------

    def expr(self, node: "ast.expr | None", callee: bool = False) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._call(node)
            self.expr(node.func, callee=True)
            for arg in node.args:
                self.expr(arg)
            for kw in node.keywords:
                self.expr(kw.value)
            return
        if isinstance(node, ast.Lambda):
            for default in node.args.defaults + node.args.kw_defaults:
                self.expr(default)
            return
        if isinstance(node, ast.Attribute):
            if not callee and _is_self(node.value):
                self.refs.add(node.attr)
            self.expr(node.value)
            return
        if isinstance(node, ast.NamedExpr):
            self.target(node.target, node)
            self.expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)
            elif isinstance(child, ast.comprehension):
                self.expr(child.target)
                self.expr(child.iter)
                for cond in child.ifs:
                    self.expr(cond)
            elif isinstance(child, ast.keyword):
                self.expr(child.value)

    # -- recorders -----------------------------------------------------

    def write(self, attr: str, node: ast.AST, kind: str) -> None:
        self.cls.writes.append(WriteSite(
            attr=attr,
            method=self.record.name,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            end_line=getattr(node, "end_lineno", 0) or 0,
            locks=frozenset(self.held),
            kind=kind,
            in_init=self.record.is_init,
        ))

    def _call(self, node: ast.Call) -> None:
        kind = _primitive_kind(node)
        if kind is not None:
            context = f"{self.cls.name}.{self.record.name}"
            self.primitives.append(PrimitiveSite(
                kind=kind, path=self.cls.path, line=node.lineno,
                col=node.col_offset + 1,
                end_line=node.end_lineno or 0,
                context=context, allowed=self.record.is_init,
            ))
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Attribute) and _is_self(base.value)
                    and func.attr in MUTATOR_METHODS):
                self.write(base.attr, node, kind="mutate")
            chain = _attr_chain(func)
            if chain is not None and len(chain) >= 2:
                root = chain[0]
                if root == "self":
                    self.record.calls.append(CallSite(
                        root_hint=None, attrs=tuple(chain[1:-1]),
                        method=chain[-1], held=tuple(self.held),
                        line=node.lineno,
                    ))
                elif root in self.params:
                    self.record.calls.append(CallSite(
                        root_hint=self.params[root],
                        attrs=tuple(chain[1:-1]), method=chain[-1],
                        held=tuple(self.held), line=node.lineno,
                    ))
        elif isinstance(func, ast.Name):
            self.record.calls.append(CallSite(
                root_hint=func.id, attrs=(), method="__init__",
                held=tuple(self.held), line=node.lineno,
            ))

    def _tuple_publish(self, node: ast.Assign) -> None:
        # `self._current = (..., self._chain)` publishes `_chain`: readers
        # that resolved the tuple hold a reference to the attr's object.
        stores_to_self = any(
            self._self_attr(t) is not None for t in node.targets
        )
        if not stores_to_self or not isinstance(node.value, (ast.Tuple,
                                                             ast.List)):
            return
        for elt in node.value.elts:
            attr = self._self_attr(elt)
            if attr is not None:
                self.cls.publishes.append(PublishSite(
                    attr=attr, method=self.record.name,
                    line=node.lineno, how="stored",
                ))

    def _return_publish(self, value: ast.expr) -> None:
        elts = (value.elts if isinstance(value, (ast.Tuple, ast.List))
                else [value])
        for elt in elts:
            attr = self._self_attr(elt)
            if attr is not None:
                self.cls.publishes.append(PublishSite(
                    attr=attr, method=self.record.name,
                    line=elt.lineno, how="returned",
                ))

    def _annotate(self, attr: str, stmt: ast.stmt) -> None:
        lock = _claim_comment(self.comments, stmt)
        if lock is not None:
            self.cls.annotations.setdefault(attr, lock)

    # -- helpers -------------------------------------------------------

    def _self_lock(self, node: ast.expr) -> "str | None":
        attr = self._self_attr(node)
        if attr is not None and attr in self.cls.lock_fields:
            return attr
        return None

    @staticmethod
    def _self_attr(node: ast.expr) -> "str | None":
        if isinstance(node, ast.Attribute) and _is_self(node.value):
            return node.attr
        return None


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _attr_chain(func: ast.Attribute) -> "list[str] | None":
    """``self.cache.put`` -> ``["self", "cache", "put"]`` (root first)."""
    names = [func.attr]
    value = func.value
    while isinstance(value, ast.Attribute):
        names.append(value.attr)
        value = value.value
    if not isinstance(value, ast.Name):
        return None
    names.append(value.id)
    names.reverse()
    return names


def _primitive_kind(node: ast.Call) -> "str | None":
    func = node.func
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
            and func.attr in PRIMITIVE_KINDS):
        return func.attr
    return None


def _annotation_text(node: "ast.expr | None") -> "str | None":
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation node
        return None


def _guard_comments(source: str) -> "dict[int, str]":
    """Line number -> lock name for every ``#: guarded-by:`` comment."""
    comments: "dict[int, str]" = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _GUARDED_BY_RE.search(text)
        if match:
            comments[lineno] = match.group("lock")
    return comments


def _claim_comment(comments: "dict[int, str]",
                   stmt: ast.stmt) -> "str | None":
    """Bind a guarded-by comment (same line, else line above) to ``stmt``.

    The comment is *consumed*: a trailing comment on one assignment must
    not also annotate whatever statement happens to sit on the next line.
    """
    for lineno in (stmt.lineno, stmt.lineno - 1):
        lock = comments.pop(lineno, None)
        if lock is not None:
            return lock
    return None


def _scan_primitives(node: ast.AST, path: str, context: str, allowed: bool,
                     out: "list[PrimitiveSite]") -> None:
    """Record every ``threading.<kind>()`` call under ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            kind = _primitive_kind(sub)
            if kind is not None:
                out.append(PrimitiveSite(
                    kind=kind, path=path, line=sub.lineno,
                    col=sub.col_offset + 1,
                    end_line=sub.end_lineno or 0,
                    context=context, allowed=allowed,
                ))


def _method_params(node: ast.AST) -> "dict[str, str]":
    """Parameter name -> raw annotation text (skipping ``self``)."""
    params: "dict[str, str]" = {}
    args = node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg == "self":
            continue
        text = _annotation_text(arg.annotation)
        if text:
            params[arg.arg] = text
    return params


class _ClassScan:
    """Two sub-passes over one class body.

    The pre-scan finds lock/semaphore fields, field types, and the method
    table (lock fields must be known before ``with self._lock:`` can be
    recognised as an acquisition); the main pass then runs
    :class:`_MethodScan` over every method.
    """

    def __init__(self, node: ast.ClassDef, ctx: FileContext,
                 comments: "dict[int, str]", refs: "set[str]",
                 primitives: "list[PrimitiveSite]") -> None:
        self.node = node
        self.ctx = ctx
        self.comments = comments
        self.refs = refs
        self.primitives = primitives
        self.cls = ClassIndex(
            name=node.name, module=ctx.package_rel, path=ctx.display,
            line=node.lineno,
        )

    def scan(self) -> ClassIndex:
        self._prescan()
        for stmt in self.node.body:
            if isinstance(stmt, _FUNC_DEFS):
                record = self.cls.methods[stmt.name]
                walker = _MethodScan(
                    self.cls, record, _method_params(stmt), self.refs,
                    self.primitives, self.comments,
                )
                walker.block(stmt.body)
            elif isinstance(stmt, ast.ClassDef):
                continue  # nested classes are out of scope
            else:
                _scan_primitives(stmt, self.ctx.display, "class body",
                                 allowed=True, out=self.primitives)
        return self.cls

    def _prescan(self) -> None:
        for stmt in self.node.body:
            if isinstance(stmt, _FUNC_DEFS):
                self.cls.methods[stmt.name] = MethodRecord(
                    name=stmt.name,
                    is_init=stmt.name == "__init__",
                    line=stmt.lineno,
                )
                params = _method_params(stmt)
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Assign):
                        self._field_assign(sub, params)
            elif (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                lock = _claim_comment(self.comments, stmt)
                if lock is not None:
                    self.cls.annotations.setdefault(stmt.target.id, lock)

    def _field_assign(self, node: ast.Assign,
                      params: "dict[str, str]") -> None:
        for tgt in node.targets:
            if not (isinstance(tgt, ast.Attribute) and _is_self(tgt.value)):
                continue
            name = tgt.attr
            value = node.value
            if isinstance(value, ast.Call):
                kind = _primitive_kind(value)
                if kind in LOCK_KINDS:
                    self.cls.lock_fields.setdefault(
                        name, LockField(name, kind, node.lineno))
                    continue
                if kind is not None:
                    self.cls.sem_fields.setdefault(
                        name, LockField(name, kind, node.lineno))
                    continue
                ctor = value.func
                if isinstance(ctor, ast.Name):
                    self.cls.field_types.setdefault(name, ctor.id)
                elif isinstance(ctor, ast.Attribute):
                    self.cls.field_types.setdefault(name, ctor.attr)
            elif isinstance(value, ast.Name) and value.id in params:
                self.cls.field_types.setdefault(name, params[value.id])


class ProjectIndex:
    """The resolved whole-project symbol table."""

    def __init__(self) -> None:
        self.classes: "dict[str, ClassIndex]" = {}
        self.primitives: "list[PrimitiveSite]" = []
        #: Names referenced as bare ``self.<name>`` anywhere (escapes).
        self.refs: "set[str]" = set()
        self._ambiguous: "set[str]" = set()
        #: ``(class, method)`` -> qualified entry lockset.
        self.entry_locks: "dict[tuple[str, str], frozenset]" = {}
        #: Qualified lock-order edges ``(before, after)`` -> witness.
        self.edges: "dict[tuple[str, str], str]" = {}

    # -- construction --------------------------------------------------

    def add_module(self, ctx: FileContext) -> None:
        comments = _guard_comments(ctx.source)
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                scan = _ClassScan(stmt, ctx, comments, self.refs,
                                  self.primitives)
                cls = scan.scan()
                if cls.name in self.classes:
                    self._ambiguous.add(cls.name)
                else:
                    self.classes[cls.name] = cls
            elif isinstance(stmt, _FUNC_DEFS):
                _scan_primitives(stmt, ctx.display, f"function {stmt.name}",
                                 allowed=False, out=self.primitives)
            else:
                _scan_primitives(stmt, ctx.display, "module scope",
                                 allowed=True, out=self.primitives)

    def finalize(self) -> None:
        self._resolve_types()
        self._resolve_calls()
        self._entry_fixed_point()
        self._build_lock_graph()

    # -- resolution ----------------------------------------------------

    def resolve_type(self, text: "str | None") -> "ClassIndex | None":
        """Map raw annotation text to an unambiguous indexed class."""
        if not text:
            return None
        for token in _IDENT_RE.findall(text):
            if token in _ANN_NOISE or token in self._ambiguous:
                continue
            cls = self.classes.get(token)
            if cls is not None:
                return cls
        return None

    def _resolve_types(self) -> None:
        for cls in self.classes.values():
            resolved = {}
            for attr, text in cls.field_types.items():
                target = self.resolve_type(text)
                if target is not None:
                    resolved[attr] = target.name
            cls.field_types = resolved

    def _resolve_calls(self) -> None:
        for cls in self.classes.values():
            for record in cls.methods.values():
                for call in record.calls:
                    call.target = self._resolve_call(cls, call)

    def _resolve_call(self, cls: ClassIndex,
                      call: CallSite) -> "tuple[str, str] | None":
        if call.root_hint is None:
            current = cls
        else:
            current = self.resolve_type(call.root_hint)
            if current is None:
                return None
            if call.method == "__init__" and not call.attrs:
                # Direct constructor: Name(...) resolved to a class.
                # Dataclasses and the like have no explicit __init__.
                if "__init__" in current.methods:
                    return (current.name, "__init__")
                return None
        for attr in call.attrs:
            next_name = current.field_types.get(attr)
            if next_name is None:
                return None
            current = self.classes[next_name]
        if call.method in current.methods:
            return (current.name, call.method)
        return None

    # -- entry locksets ------------------------------------------------

    def _qualified(self, cls: ClassIndex, locks: Iterable) -> frozenset:
        return frozenset(cls.qualify(lock) for lock in locks)

    def _entry_fixed_point(self) -> None:
        all_locks = frozenset(
            cls.qualify(lock)
            for cls in self.classes.values() for lock in cls.lock_fields
        )
        sites: "dict[tuple[str, str], list]" = {}
        for cls in self.classes.values():
            for record in cls.methods.values():
                for call in record.calls:
                    if call.target is None:
                        continue
                    sites.setdefault(call.target, []).append(
                        ((cls.name, record.name),
                         self._qualified(cls, call.held)),
                    )
        entry: "dict[tuple[str, str], frozenset]" = {}
        for cls in self.classes.values():
            for record in cls.methods.values():
                key = (cls.name, record.name)
                eligible = (
                    record.name.startswith("_")
                    and not record.name.startswith("__")
                    and record.name not in self.refs
                    and key in sites
                )
                entry[key] = all_locks if eligible else frozenset()
        changed = True
        while changed:
            changed = False
            for key in sorted(entry):
                if not entry[key]:
                    continue
                incoming = [
                    held | entry.get(caller, frozenset())
                    for caller, held in sites.get(key, [])
                ]
                new = frozenset.intersection(*incoming) if incoming \
                    else frozenset()
                if new != entry[key]:
                    entry[key] = new
                    changed = True
        self.entry_locks = entry

    def effective_locks(self, cls: ClassIndex,
                        write: WriteSite) -> frozenset:
        """Own-class lock names held at ``write`` (lexical + entry)."""
        entry = self.entry_locks.get((cls.name, write.method), frozenset())
        prefix = cls.name + "."
        inherited = {
            lock.split(".", 1)[1]
            for lock in entry if lock.startswith(prefix)
        }
        return frozenset(write.locks | (inherited & cls.lock_fields.keys()))

    # -- the static lock-acquisition graph -----------------------------

    def _reachable_locks(self, key: "tuple[str, str]",
                         memo: dict, active: set) -> frozenset:
        if key in memo:
            return memo[key]
        if key in active:
            return frozenset()
        active.add(key)
        cls = self.classes.get(key[0])
        record = cls.methods.get(key[1]) if cls is not None else None
        if record is None:  # pragma: no cover - unresolved target
            active.discard(key)
            return frozenset()
        locks = {cls.qualify(a.lock) for a in record.acquires}
        for call in record.calls:
            if call.target is not None:
                locks |= self._reachable_locks(call.target, memo, active)
        active.discard(key)
        memo[key] = frozenset(locks)
        return memo[key]

    def _build_lock_graph(self) -> None:
        memo: dict = {}
        for cls in sorted(self.classes.values(), key=lambda c: c.name):
            for name in sorted(cls.methods):
                record = cls.methods[name]
                key = (cls.name, name)
                entry = self.entry_locks.get(key, frozenset())
                for acq in record.acquires:
                    after = cls.qualify(acq.lock)
                    is_rlock = cls.lock_fields[acq.lock].kind == "RLock"
                    for before in entry | self._qualified(cls, acq.held):
                        if before == after and is_rlock:
                            continue
                        self.edges.setdefault(
                            (before, after), f"{cls.path}:{acq.line}")
                for call in record.calls:
                    if call.target is None:
                        continue
                    priors = entry | self._qualified(cls, call.held)
                    if not priors:
                        continue
                    for after in self._reachable_locks(call.target, memo,
                                                       set()):
                        for before in priors:
                            if before == after:
                                continue  # re-entry via calls, not an order
                            self.edges.setdefault(
                                (before, after), f"{cls.path}:{call.line}")

    def lock_edges(self) -> "list[tuple[str, str, str]]":
        """The acquisition graph as sorted ``(before, after, site)``."""
        return sorted(
            (before, after, site)
            for (before, after), site in self.edges.items()
        )

    def lock_cycles(self) -> "list[tuple[tuple, list]]":
        """Cycles in the acquisition graph: ``(nodes, witness edges)``.

        Nodes are qualified lock names; witness edges are
        ``(before, after, site)`` triples, sorted, one list per strongly
        connected component that contains a cycle (Kosaraju).
        """
        graph: "dict[str, list[str]]" = {}
        reverse: "dict[str, list[str]]" = {}
        for before, after in self.edges:
            graph.setdefault(before, []).append(after)
            graph.setdefault(after, [])
            reverse.setdefault(after, []).append(before)
            reverse.setdefault(before, [])
        order: "list[str]" = []
        visited: "set[str]" = set()
        for start in sorted(graph):
            if start in visited:
                continue
            stack = [(start, iter(sorted(graph[start])))]
            visited.add(start)
            while stack:
                node, it = stack[-1]
                for nxt in it:
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, iter(sorted(graph[nxt]))))
                        break
                else:
                    order.append(node)
                    stack.pop()
        assigned: "set[str]" = set()
        cycles: "list[tuple[tuple, list]]" = []
        for node in reversed(order):
            if node in assigned:
                continue
            members: "list[str]" = []
            stack = [node]
            while stack:
                current = stack.pop()
                if current in assigned:
                    continue
                assigned.add(current)
                members.append(current)
                stack.extend(reverse[current])
            if len(members) > 1 or (node, node) in self.edges:
                member_set = set(members)
                witness = sorted(
                    (before, after, site)
                    for (before, after), site in self.edges.items()
                    if before in member_set and after in member_set
                )
                cycles.append((tuple(sorted(members)), witness))
        return sorted(cycles)

    # -- guard inference -----------------------------------------------

    def class_guards(self, cls: ClassIndex) -> "list[GuardInfo]":
        """Guard info for every attribute of a lock-owning class."""
        if not cls.lock_fields:
            return []
        attrs = sorted(
            {w.attr for w in cls.writes} | set(cls.annotations)
        )
        guards: "list[GuardInfo]" = []
        for attr in attrs:
            non_init = [
                w for w in cls.writes
                if w.attr == attr and not w.in_init
            ]
            annotated = cls.annotations.get(attr)
            if annotated is not None:
                guard: "str | None" = annotated
                source = "annotation"
                unknown = annotated not in cls.lock_fields
            else:
                unknown = False
                source = "inference"
                counts: "dict[str, int]" = {}
                for write in non_init:
                    for lock in self.effective_locks(cls, write):
                        counts[lock] = counts.get(lock, 0) + 1
                if not counts:
                    continue  # never guarded: unguarded by design
                guard = min(counts, key=lambda k: (-counts[k], k))
            unguarded = [
                w for w in non_init
                if guard not in self.effective_locks(cls, w)
            ] if guard in cls.lock_fields else []
            guards.append(GuardInfo(
                attr=attr, guard=guard, source=source,
                unguarded=unguarded, unknown_lock=unknown,
            ))
        return guards

    def guard_map(self) -> "dict[str, dict[str, str]]":
        """``{class: {attr: guarding lock field}}`` for lock-owning classes."""
        result: "dict[str, dict[str, str]]" = {}
        for name in sorted(self.classes):
            cls = self.classes[name]
            if not cls.lock_fields:
                continue
            guards = {
                info.attr: info.guard
                for info in self.class_guards(cls)
                if info.guard is not None and not info.unknown_lock
            }
            result[name] = guards
        return result


def build_index(contexts: "Iterable[FileContext]") -> ProjectIndex:
    """Index a set of parsed files and resolve cross-module facts."""
    index = ProjectIndex()
    for ctx in sorted(contexts, key=lambda c: c.display):
        index.add_module(ctx)
    index.finalize()
    return index


def build_index_for_paths(paths: "Iterable[Path]") -> ProjectIndex:
    """Convenience wrapper: parse ``paths`` and index them."""
    from .engine import collect_files

    parsed = collect_files(paths)
    return build_index(pf.ctx for pf in parsed if pf.ctx is not None)
