"""reprolint — AST-based invariant checks for the repro library.

A zero-dependency static-analysis pass that machine-checks the promises
the library's determinism story rests on: no oracle imports in library
code (RL001), all randomness threaded through :mod:`repro.rng` (RL002),
no hash-order leaks into ordered results (RL003), explicit dtypes in the
kernel modules (RL004), monotonic-clock timing (RL005), and no silent
exception swallowing (RL006).

Run it with ``python -m repro.lint [paths]`` or ``repro lint``; suppress a
single finding with ``# reprolint: disable=RL003 - justification``.  The
rule catalogue lives in ``docs/static-analysis.md``.
"""

from .engine import (
    Violation,
    lint_file,
    lint_paths,
    lint_source,
)
from .reporting import render_json, render_text
from .rules import RULES, default_rules, rule_ids

__all__ = [
    "Violation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
    "RULES",
    "default_rules",
    "rule_ids",
]
