"""reprolint — AST-based invariant checks for the repro library.

A zero-dependency, two-pass static analyzer that machine-checks the
promises the library's determinism *and* concurrency story rest on.  The
per-file pass: no oracle imports in library code (RL001), all randomness
threaded through :mod:`repro.rng` (RL002), no hash-order leaks into
ordered results (RL003), explicit dtypes in the kernel modules (RL004),
monotonic-clock timing (RL005), and no silent exception swallowing
(RL006).  The project pass (``--strict``) builds a whole-project symbol
index (:mod:`repro.lint.index`) and checks lock discipline across modules
(:mod:`repro.lint.concurrency`): guarded attributes written without their
lock (RL101), lock-order inversions (RL102), torn publishes (RL103), and
primitives created outside ``__init__`` (RL104).

Run it with ``python -m repro.lint [paths] [--strict]`` or ``repro
lint``; suppress a single finding with ``# reprolint: disable=RL003 -
justification`` (``--report-unused-suppressions`` flags waivers that have
rotted).  The rule catalogue lives in ``docs/static-analysis.md``; the
runtime counterpart of the RL1xx family is :mod:`repro.sanitize`.
"""

from .concurrency import PROJECT_RULES, project_rule_ids
from .engine import (
    Violation,
    collect_files,
    lint_file,
    lint_paths,
    lint_source,
)
from .index import ProjectIndex, build_index, build_index_for_paths
from .reporting import JSON_SCHEMA_VERSION, render_json, render_text
from .rules import RULES, default_rules, rule_ids

__all__ = [
    "Violation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "collect_files",
    "render_text",
    "render_json",
    "JSON_SCHEMA_VERSION",
    "RULES",
    "PROJECT_RULES",
    "ProjectIndex",
    "build_index",
    "build_index_for_paths",
    "default_rules",
    "rule_ids",
    "project_rule_ids",
]
