"""Violation reporters: plain text (one line per hit) and JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from .engine import Violation

__all__ = ["render_text", "render_json", "REPORTERS"]


def render_text(violations: Iterable[Violation]) -> str:
    """``path:line:col: RLxxx message`` per violation plus a tally line."""
    violations = list(violations)
    lines = [v.render() for v in violations]
    if violations:
        tally = Counter(v.rule_id for v in violations)
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(tally.items())
        )
        lines.append(
            f"reprolint: {len(violations)} violation"
            f"{'s' if len(violations) != 1 else ''} ({breakdown})"
        )
    else:
        lines.append("reprolint: clean")
    return "\n".join(lines)


def render_json(violations: Iterable[Violation]) -> str:
    """Machine-readable report: ``{"count": N, "violations": [...]}``."""
    violations = list(violations)
    return json.dumps(
        {
            "count": len(violations),
            "violations": [v.as_dict() for v in violations],
        },
        indent=2,
        sort_keys=True,
    )


REPORTERS = {"text": render_text, "json": render_json}
