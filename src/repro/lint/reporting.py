"""Violation reporters: plain text (one line per hit) and JSON.

The JSON schema is versioned so CI diffs and downstream tooling can rely
on it (documented in ``docs/static-analysis.md``)::

    {
      "schema_version": 2,
      "count": <int>,
      "tally": {"<rule id>": <int>, ...},     # sorted by rule id
      "violations": [
        {"path": ..., "line": ..., "col": ..., "rule": ..., "message": ...},
        ...
      ]
    }

Violations are emitted in the engine's stable sort order
(``path, line, col, rule``) and all object keys are sorted, so two runs
over the same tree produce byte-identical reports.

Schema history: version 2 added ``schema_version`` and ``tally``;
version 1 (unversioned) had only ``count`` and ``violations``.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from .engine import Violation

__all__ = ["JSON_SCHEMA_VERSION", "render_text", "render_json", "REPORTERS"]

#: Bumped whenever a field is added, removed, or changes meaning.
JSON_SCHEMA_VERSION = 2


def render_text(violations: Iterable[Violation]) -> str:
    """``path:line:col: RLxxx message`` per violation plus a tally line."""
    violations = list(violations)
    lines = [v.render() for v in violations]
    if violations:
        tally = Counter(v.rule_id for v in violations)
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(tally.items())
        )
        lines.append(
            f"reprolint: {len(violations)} violation"
            f"{'s' if len(violations) != 1 else ''} ({breakdown})"
        )
    else:
        lines.append("reprolint: clean")
    return "\n".join(lines)


def render_json(violations: Iterable[Violation]) -> str:
    """Machine-readable report; see the module docstring for the schema."""
    violations = list(violations)
    tally = Counter(v.rule_id for v in violations)
    return json.dumps(
        {
            "schema_version": JSON_SCHEMA_VERSION,
            "count": len(violations),
            "tally": {rule: tally[rule] for rule in sorted(tally)},
            "violations": [v.as_dict() for v in violations],
        },
        indent=2,
        sort_keys=True,
    )


REPORTERS = {"text": render_text, "json": render_json}
