"""The RL1xx concurrency rule family — pass two of the analyzer.

These rules consume the :class:`~repro.lint.index.ProjectIndex` built over
the whole scan set, so one finding can span files (a lock-order cycle
between ``dynamic.py`` and ``service.py`` is a single violation).  They
are enabled by ``repro lint --strict`` and scoped to classes that own at
least one ``threading.Lock``/``RLock`` field — classes without locks have
made no mutual-exclusion promise for the analyzer to hold them to.

Catalogue
---------

RL101
    Write to an attribute outside the guard the class itself established.
    The guard is either pinned by a ``#: guarded-by: _lock`` annotation or
    inferred: the lock held by the majority of non-``__init__`` writes
    (``__init__`` is single-threaded construction and always exempt).
    Annotations naming a lock field the class does not own are also RL101
    findings — a pinned intent the index cannot verify is a bug in itself.
RL102
    Lock-order inversion: a cycle in the static acquisition graph, whose
    edges are "lock A held while acquiring lock B" — collected from nested
    ``with`` scopes and propagated through resolved call edges (including
    cross-class calls like ``self._service._publish_epoch``).
RL103
    Torn publish: an attribute both *published* (returned from a method,
    or stored into a published tuple) and *mutated in place* outside
    ``__init__``.  Readers hold the published object without the lock, so
    in-place mutation tears their snapshot; rebinding a fresh object
    (copy-on-publish) is the fix and does not fire the rule.
RL104
    ``threading`` primitive constructed outside ``__init__``/module/class
    scope.  A lock created per-call has no stable identity, so it excludes
    nothing; replacing a guard mid-flight unlocks every waiter.
"""

from __future__ import annotations

from .engine import Violation
from .index import ProjectIndex

__all__ = [
    "ProjectRule",
    "UnguardedWrite",
    "LockOrderInversion",
    "TornPublish",
    "PrimitiveOutsideInit",
    "PROJECT_RULES",
    "project_rule_ids",
]


class ProjectRule:
    """A rule evaluated once over the whole-project index."""

    rule_id = "RL1xx"
    title = ""
    rationale = ""

    def check_project(self, index: ProjectIndex) -> "list[Violation]":
        raise NotImplementedError


class UnguardedWrite(ProjectRule):
    rule_id = "RL101"
    title = "write to a guarded attribute without holding its lock"
    rationale = (
        "an attribute the class mutates under a lock everywhere else is "
        "racy at the one site that skips it; annotate intent with "
        "'#: guarded-by: <lock>' or take the lock"
    )

    def check_project(self, index: ProjectIndex) -> "list[Violation]":
        found: "list[Violation]" = []
        for name in sorted(index.classes):
            cls = index.classes[name]
            for info in index.class_guards(cls):
                if info.unknown_lock:
                    found.append(Violation(
                        path=cls.path, line=cls.line, col=1,
                        rule_id=self.rule_id,
                        message=(
                            f"{cls.name}.{info.attr} is annotated "
                            f"guarded-by '{info.guard}' but the class owns "
                            f"no such lock field"
                        ),
                    ))
                    continue
                for write in info.unguarded:
                    found.append(Violation(
                        path=cls.path, line=write.line, col=write.col,
                        rule_id=self.rule_id,
                        message=(
                            f"write to {cls.name}.{info.attr} without "
                            f"holding '{info.guard}' "
                            f"({info.source} says it guards this attribute)"
                        ),
                        end_line=write.end_line,
                    ))
        return found


class LockOrderInversion(ProjectRule):
    rule_id = "RL102"
    title = "lock-order inversion in the static acquisition graph"
    rationale = (
        "two code paths that take the same locks in opposite orders "
        "deadlock under the right interleaving; pick one global order"
    )

    def check_project(self, index: ProjectIndex) -> "list[Violation]":
        found: "list[Violation]" = []
        for nodes, witness in index.lock_cycles():
            first = witness[0]
            path, _, line = first[2].rpartition(":")
            detail = "; ".join(
                f"{before} -> {after} at {site}"
                for before, after, site in witness
            )
            found.append(Violation(
                path=path, line=int(line), col=1,
                rule_id=self.rule_id,
                message=(
                    f"lock-order cycle over {{{', '.join(nodes)}}}: "
                    f"{detail}"
                ),
            ))
        return found


class TornPublish(ProjectRule):
    rule_id = "RL103"
    title = "published attribute mutated in place (torn publish)"
    rationale = (
        "readers hold the published object without the lock; mutating it "
        "in place tears their snapshot — rebind a fresh object instead "
        "(copy-on-publish)"
    )

    def check_project(self, index: ProjectIndex) -> "list[Violation]":
        found: "list[Violation]" = []
        for name in sorted(index.classes):
            cls = index.classes[name]
            if not cls.lock_fields:
                continue
            published = {}
            for site in cls.publishes:
                published.setdefault(site.attr, site)
            for write in cls.writes:
                if write.in_init or write.kind != "mutate":
                    continue
                site = published.get(write.attr)
                if site is None:
                    continue
                found.append(Violation(
                    path=cls.path, line=write.line, col=write.col,
                    rule_id=self.rule_id,
                    message=(
                        f"{cls.name}.{write.attr} is published "
                        f"({site.how} in {site.method}, line {site.line}) "
                        f"but mutated in place here; rebind a fresh object "
                        f"(copy-on-publish)"
                    ),
                    end_line=write.end_line,
                ))
        return found


class PrimitiveOutsideInit(ProjectRule):
    rule_id = "RL104"
    title = "threading primitive created outside __init__"
    rationale = (
        "a lock constructed per call (or swapped mid-flight) has no "
        "stable identity, so it excludes nothing; construct primitives "
        "in __init__ or at module scope"
    )

    def check_project(self, index: ProjectIndex) -> "list[Violation]":
        found: "list[Violation]" = []
        for site in index.primitives:
            if site.allowed:
                continue
            found.append(Violation(
                path=site.path, line=site.line, col=site.col,
                rule_id=self.rule_id,
                message=(
                    f"threading.{site.kind}() created in {site.context}; "
                    f"construct concurrency primitives in __init__ or at "
                    f"module scope so they have stable identity"
                ),
                end_line=site.end_line,
            ))
        return found


PROJECT_RULES: "tuple[ProjectRule, ...]" = (
    UnguardedWrite(),
    LockOrderInversion(),
    TornPublish(),
    PrimitiveOutsideInit(),
)


def project_rule_ids() -> "list[str]":
    return [rule.rule_id for rule in PROJECT_RULES]
