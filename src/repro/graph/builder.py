"""Incremental construction and cleaning of influence graphs.

Raw network data (SNAP edge lists, crawls) contains self-loops, duplicate
edges, and undirected edges that must be symmetrised.  The paper's setup
(Section 7.1) discards self-loops and multi-edges and replaces each undirected
edge with a pair of directed edges; :class:`GraphBuilder` implements exactly
that cleaning pipeline.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from .influence_graph import InfluenceGraph

__all__ = ["GraphBuilder", "combine_parallel_edges"]


def combine_parallel_edges(
    tails: np.ndarray, heads: np.ndarray, probs: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse duplicate ``(tail, head)`` pairs into single edges.

    Duplicates are combined with the noisy-or rule the paper uses for
    coarsened edge bundles (Eq. 5): ``p = 1 - prod(1 - p_i)``, i.e. the edge
    fires if any copy fires.
    """
    if tails.size == 0:
        return tails, heads, probs
    order = np.lexsort((heads, tails))
    tails, heads, probs = tails[order], heads[order], probs[order]
    boundary = np.empty(tails.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (tails[1:] != tails[:-1]) | (heads[1:] != heads[:-1])
    group = np.cumsum(boundary) - 1
    n_groups = int(group[-1]) + 1
    # Accumulate log(1 - p) per group; exact for p < 1, and p == 1 forces the
    # combined probability to 1 regardless, which -inf log handles correctly.
    with np.errstate(divide="ignore"):
        log_miss = np.log1p(-probs)
    sum_log = np.zeros(n_groups, dtype=np.float64)
    np.add.at(sum_log, group, log_miss)
    combined = -np.expm1(sum_log)
    combined = np.clip(combined, np.nextafter(0.0, 1.0), 1.0)
    return tails[boundary], heads[boundary], combined


class GraphBuilder:
    """Accumulates edges and produces a clean :class:`InfluenceGraph`.

    Parameters
    ----------
    n:
        Number of vertices, or ``None`` to infer ``max id + 1`` at build time.
    combine_duplicates:
        When True (default) parallel edges are merged with the noisy-or rule;
        when False duplicates raise :class:`GraphFormatError`.

    Examples
    --------
    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1, 0.3)
    >>> b.add_edge(1, 0, 0.2)
    >>> g = b.build()
    >>> (g.n, g.m)
    (2, 2)
    """

    def __init__(self, n: int | None = None, combine_duplicates: bool = True) -> None:
        self._n = n
        self._combine = combine_duplicates
        self._tails: list[np.ndarray] = []
        self._heads: list[np.ndarray] = []
        self._probs: list[np.ndarray] = []

    def add_edge(self, tail: int, head: int, prob: float) -> None:
        """Add one directed edge (self-loops are silently dropped)."""
        self.add_edges([tail], [head], [prob])

    def add_edges(self, tails, heads, probs) -> None:
        """Add a batch of directed edges; self-loops are dropped."""
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        probs = np.asarray(probs, dtype=np.float64)
        if not (tails.shape == heads.shape == probs.shape):
            raise GraphFormatError("edge batch arrays must have equal length")
        keep = tails != heads
        self._tails.append(tails[keep])
        self._heads.append(heads[keep])
        self._probs.append(probs[keep])

    def add_undirected_edges(self, us, vs, probs) -> None:
        """Add undirected edges as bidirected pairs (paper Section 7.1)."""
        self.add_edges(us, vs, probs)
        self.add_edges(vs, us, probs)

    def build(self, weights: np.ndarray | None = None) -> InfluenceGraph:
        """Produce the cleaned :class:`InfluenceGraph`."""
        if self._tails:
            tails = np.concatenate(self._tails)
            heads = np.concatenate(self._heads)
            probs = np.concatenate(self._probs)
        else:
            tails = np.empty(0, dtype=np.int64)
            heads = np.empty(0, dtype=np.int64)
            probs = np.empty(0, dtype=np.float64)
        n = self._n
        if n is None:
            n = int(max(tails.max(initial=-1), heads.max(initial=-1))) + 1
        # negated form rejects NaN as well as out-of-range values
        if probs.size and not ((probs > 0.0) & (probs <= 1.0)).all():
            raise GraphFormatError("influence probabilities must lie in (0, 1]")
        if self._combine:
            tails, heads, probs = combine_parallel_edges(tails, heads, probs)
        return InfluenceGraph.from_edges(n, tails, heads, probs, weights=weights)
