"""CSR-backed directed influence graphs.

An *influence graph* ``G = (V, E, p)`` (Section 3 of the paper) is a directed
graph whose edges carry an activation probability ``p(e) in (0, 1]``.  A
*vertex-weighted* influence graph additionally assigns a positive integer
weight to every vertex; coarsened graphs produced by this library are
vertex-weighted, with ``w(c)`` equal to the number of original vertices merged
into ``c``.

The representation is a compressed sparse row (CSR) adjacency: ``indptr`` of
length ``n + 1`` and parallel arrays ``heads`` / ``probs`` of length ``m``,
sorted by tail then head.  Edge ``i`` runs from ``tails[i]`` to ``heads[i]``
with probability ``probs[i]``; edge ids are CSR positions.  Graphs are
immutable once constructed — the dynamic-update module keeps its own mutable
state and emits fresh graphs.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError

__all__ = ["InfluenceGraph"]


class InfluenceGraph:
    """An immutable directed influence graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; out-edges of vertex ``v`` occupy
        CSR positions ``indptr[v]:indptr[v + 1]``.
    heads:
        ``int64`` array of length ``m`` with edge head vertices.
    probs:
        ``float64`` array of length ``m`` with influence probabilities in
        ``(0, 1]``.
    weights:
        Optional ``int64`` array of per-vertex weights (defaults to all ones,
        i.e. an unweighted graph).
    validate:
        Check structural invariants (monotone indptr, head range, probability
        range, no self-loops).  Disable only for data produced by this
        library itself.

    Use :meth:`from_edges` (or :class:`repro.graph.builder.GraphBuilder`) to
    construct a graph from unsorted edge arrays.
    """

    __slots__ = ("indptr", "heads", "probs", "_weights", "_tails", "_reverse",
                 "_digest")

    def __init__(
        self,
        indptr: np.ndarray,
        heads: np.ndarray,
        probs: np.ndarray,
        weights: np.ndarray | None = None,
        validate: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.heads = np.ascontiguousarray(heads, dtype=np.int64)
        self.probs = np.ascontiguousarray(probs, dtype=np.float64)
        self._weights = (
            None if weights is None else np.ascontiguousarray(weights, dtype=np.int64)
        )
        self._tails: np.ndarray | None = None
        self._reverse: "InfluenceGraph | None" = None
        self._digest: str | None = None
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n: int,
        tails: np.ndarray,
        heads: np.ndarray,
        probs: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> "InfluenceGraph":
        """Build a graph from parallel edge arrays (any order).

        Edges are sorted into CSR order.  Self-loops and duplicate edges are
        rejected; use :class:`~repro.graph.builder.GraphBuilder` to clean raw
        data first.
        """
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        probs = np.asarray(probs, dtype=np.float64)
        if not (tails.shape == heads.shape == probs.shape):
            raise GraphFormatError("tails, heads and probs must have equal length")
        order = np.lexsort((heads, tails))
        tails, heads, probs = tails[order], heads[order], probs[order]
        if tails.size and (tails.min() < 0 or tails.max() >= n):
            raise GraphFormatError("edge tail out of range")
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, tails + 1, 1)
        np.cumsum(indptr, out=indptr)
        graph = cls(indptr, heads, probs, weights=weights)
        if graph.m > 1:
            same = (tails[1:] == tails[:-1]) & (heads[1:] == heads[:-1])
            if same.any():
                raise GraphFormatError(
                    "duplicate edges present; combine them with GraphBuilder"
                )
        return graph

    @classmethod
    def empty(cls, n: int) -> "InfluenceGraph":
        """An ``n``-vertex graph with no edges."""
        return cls(
            np.zeros(n + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    def _validate(self) -> None:
        n = self.n
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise GraphFormatError("indptr must be a 1-d array of length n + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.heads.size:
            raise GraphFormatError("indptr must start at 0 and end at m")
        if (np.diff(self.indptr) < 0).any():
            raise GraphFormatError("indptr must be non-decreasing")
        if self.heads.size != self.probs.size:
            raise GraphFormatError("heads and probs must have equal length")
        if self.heads.size:
            if self.heads.min() < 0 or self.heads.max() >= n:
                raise GraphFormatError("edge head out of range")
            # note the negated form: it also rejects NaN, which would pass
            # a pair of direct comparisons
            if not ((self.probs > 0.0) & (self.probs <= 1.0)).all():
                raise GraphFormatError("influence probabilities must lie in (0, 1]")
            if (self.tails() == self.heads).any():
                raise GraphFormatError("self-loops are not allowed")
        if self._weights is not None:
            if self._weights.shape != (n,):
                raise GraphFormatError("weights must have one entry per vertex")
            if (self._weights <= 0).any():
                raise GraphFormatError("vertex weights must be positive")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return int(self.indptr.size - 1)

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return int(self.heads.size)

    @property
    def is_weighted(self) -> bool:
        """Whether explicit vertex weights were provided."""
        return self._weights is not None

    @property
    def weights(self) -> np.ndarray:
        """Per-vertex weights (all ones when the graph is unweighted)."""
        if self._weights is None:
            return np.ones(self.n, dtype=np.int64)
        return self._weights

    @property
    def total_weight(self) -> int:
        """Sum of all vertex weights (``n`` for unweighted graphs)."""
        if self._weights is None:
            return self.n
        return int(self._weights.sum())

    def tails(self) -> np.ndarray:
        """Edge tail array aligned with ``heads``/``probs`` (cached)."""
        if self._tails is None:
            self._tails = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
            )
        return self._tails

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(tails, heads, probs)`` triplet arrays in CSR edge order."""
        return self.tails(), self.heads, self.probs

    def out_degree(self, v: int | None = None) -> "np.ndarray | int":
        """Out-degree of ``v``, or the full out-degree array when ``v`` is None."""
        if v is None:
            return np.diff(self.indptr)
        return int(self.indptr[v + 1] - self.indptr[v])

    def in_degree(self) -> np.ndarray:
        """In-degree array (computed without materialising the reverse graph)."""
        return np.bincount(self.heads, minlength=self.n).astype(np.int64)

    def out_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(heads, probs)`` slices for the out-edges of vertex ``v``."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.heads[lo:hi], self.probs[lo:hi]

    def iter_edges(self):
        """Yield ``(tail, head, prob)`` triplets in CSR order.

        Prefer :meth:`edge_arrays` in performance-sensitive code; this
        iterator exists for tests, examples, and the disk writer.
        """
        tails = self.tails()
        for i in range(self.m):
            yield int(tails[i]), int(self.heads[i]), float(self.probs[i])

    def digest(self) -> str:
        """A content hash of the graph (structure, probabilities, weights).

        Two graphs with equal CSR arrays and weights share the digest, so it
        serves as a cache key for derived artifacts (the ``repro.serve``
        model cache keys coarsenings by it).  Cached after the first call;
        graphs are immutable, so the hash can never go stale.
        """
        if self._digest is None:
            import hashlib

            h = hashlib.blake2b(digest_size=16)
            h.update(self.n.to_bytes(8, "little"))
            h.update(self.indptr.tobytes())
            h.update(self.heads.tobytes())
            h.update(self.probs.tobytes())
            h.update(b"w" if self._weights is not None else b"u")
            if self._weights is not None:
                h.update(self._weights.tobytes())
            self._digest = h.hexdigest()
        return self._digest

    def _install_digest(self, digest: str) -> None:
        """Install an externally derived digest into the lazy cache slot.

        Library-internal: the serve layer's live-graph lineage addresses
        delta-epochs by a *chained* digest (parent digest + canonical
        delta encoding) so each epoch key costs O(|deltas|) instead of the
        O(n + m) content hash.  The caller owns the equivalence argument;
        a digest that has already been computed (or installed) is never
        overwritten — the first value wins, keeping every holder of this
        immutable graph consistent.
        """
        if self._digest is None:
            self._digest = digest

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def reverse(self) -> "InfluenceGraph":
        """The transpose graph (all edges flipped), with the same weights.

        The result is cached; reverse-reachability sampling calls this on
        every invocation.
        """
        if self._reverse is None:
            rev = InfluenceGraph.from_edges(
                self.n, self.heads, self.tails(), self.probs, weights=self._weights
            )
            rev._reverse = self
            self._reverse = rev
        return self._reverse

    def with_probabilities(self, probs: np.ndarray) -> "InfluenceGraph":
        """A structurally identical graph with new edge probabilities.

        Used to apply the probability settings of Section 7.1 (EXP / TRI /
        UC / WC) to one topology.
        """
        return InfluenceGraph(self.indptr, self.heads, probs, weights=self._weights)

    def induced_subgraph(self, vertices: np.ndarray) -> "InfluenceGraph":
        """The influence subgraph ``G[V']`` spanned by ``vertices``.

        Vertices are relabelled ``0..len(vertices)-1`` in the order given.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        local = np.full(self.n, -1, dtype=np.int64)
        local[vertices] = np.arange(vertices.size, dtype=np.int64)
        tails, heads, probs = self.edge_arrays()
        keep = (local[tails] >= 0) & (local[heads] >= 0)
        weights = None if self._weights is None else self._weights[vertices]
        return InfluenceGraph.from_edges(
            vertices.size, local[tails[keep]], local[heads[keep]], probs[keep],
            weights=weights,
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        kind = "weighted " if self.is_weighted else ""
        return f"InfluenceGraph({kind}n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InfluenceGraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.heads, other.heads)
            and np.allclose(self.probs, other.probs)
            and np.array_equal(self.weights, other.weights)
        )

    def __hash__(self) -> int:  # graphs are mutable-free but large; id-hash
        return id(self)
