"""Graph substrate: CSR influence graphs, builders, and I/O."""

from .builder import GraphBuilder, combine_parallel_edges
from .influence_graph import InfluenceGraph
from .io import read_edge_list, write_edge_list

__all__ = [
    "InfluenceGraph",
    "GraphBuilder",
    "combine_parallel_edges",
    "read_edge_list",
    "write_edge_list",
]
