"""Graph substrate: CSR influence graphs, builders, I/O, and shared memory."""

from .builder import GraphBuilder, combine_parallel_edges
from .influence_graph import InfluenceGraph
from .io import read_edge_list, write_edge_list
from .shm import (
    SharedGraph,
    SharedGraphSpec,
    attach_shared_graph,
    detach_shared_graphs,
)

__all__ = [
    "InfluenceGraph",
    "GraphBuilder",
    "combine_parallel_edges",
    "read_edge_list",
    "write_edge_list",
    "SharedGraph",
    "SharedGraphSpec",
    "attach_shared_graph",
    "detach_shared_graphs",
]
