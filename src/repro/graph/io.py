"""Text edge-list I/O in the SNAP style.

The paper's datasets come as whitespace-separated edge lists, optionally with
a per-edge probability column.  :func:`read_edge_list` applies the same
cleaning the paper describes (drop self-loops and multi-edges, optionally
symmetrise undirected graphs, optionally reverse web-graph edges).
"""

from __future__ import annotations

import os

from ..errors import GraphFormatError
from .builder import GraphBuilder
from .influence_graph import InfluenceGraph

__all__ = ["read_edge_list", "write_edge_list"]


def read_edge_list(
    path: "str | os.PathLike[str]",
    default_prob: float = 0.1,
    undirected: bool = False,
    reverse: bool = False,
    comment: str = "#",
) -> InfluenceGraph:
    """Read a whitespace-separated edge list into an :class:`InfluenceGraph`.

    Each non-comment line is ``u v`` or ``u v p``.  Lines without a
    probability column get ``default_prob``.

    Parameters
    ----------
    undirected:
        Replace each edge with a bidirected pair (paper treatment of
        undirected social networks).
    reverse:
        Flip every edge (paper treatment of web graphs, where influence flows
        against hyperlink direction).
    """
    tails: list[int] = []
    heads: list[int] = []
    probs: list[float] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v' or 'u v p', got {line!r}"
                )
            u, v = int(parts[0]), int(parts[1])
            p = float(parts[2]) if len(parts) == 3 else default_prob
            tails.append(u)
            heads.append(v)
            probs.append(p)
    if reverse:
        tails, heads = heads, tails
    builder = GraphBuilder()
    if undirected:
        builder.add_undirected_edges(tails, heads, probs)
    else:
        builder.add_edges(tails, heads, probs)
    return builder.build()


def write_edge_list(
    graph: InfluenceGraph,
    path: "str | os.PathLike[str]",
    include_probs: bool = True,
) -> None:
    """Write a graph as a text edge list (``u v p`` per line)."""
    tails, heads, probs = graph.edge_arrays()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# influence graph: n={graph.n} m={graph.m}\n")
        if include_probs:
            for u, v, p in zip(tails, heads, probs):
                handle.write(f"{u} {v} {p:.10g}\n")
        else:
            for u, v in zip(tails, heads):
                handle.write(f"{u} {v}\n")
