"""Zero-copy shared-memory broadcast of CSR influence graphs.

Algorithm 6's distributed first stage needs every worker to see the whole
input graph.  Shipping the :class:`InfluenceGraph` through pickle once per
submitted task — what the first implementation did — serialises
``O(n + m)`` bytes ``T`` times and copies them again on every deserialise.
This module instead publishes the CSR arrays (``indptr``, ``heads``,
``probs`` and, when present, ``weights``) **once** into a single
:mod:`multiprocessing.shared_memory` segment and hands workers a tiny
picklable :class:`SharedGraphSpec`.  Workers attach read-only numpy views
onto the same physical pages, so the broadcast costs one memcpy for the
publisher and zero copies per worker — the paper's master-to-worker graph
broadcast (Appendix C.1) at mmap cost.

Ownership protocol
------------------
* The **publisher** (the process driving the coarsen run) creates the
  segment via :meth:`SharedGraph.publish` and must call
  :meth:`SharedGraph.unlink` when the pool is done — ``SharedGraph`` is a
  context manager so the usual form is ``with SharedGraph.publish(g) as
  shared: ...``.  Creation is exception-safe: a failure while copying the
  arrays unlinks the half-built segment before re-raising.
* **Workers** call :func:`attach_shared_graph` (typically from a pool
  initializer).  Attachment is cached per process and per segment, so a
  worker that receives many tasks maps the graph exactly once.
  :func:`detach_shared_graphs` drops the cache; it is called automatically
  at interpreter exit.

The attached views are marked non-writeable — the graph is immutable by
contract, and a stray write through a shared mapping would corrupt every
other worker's copy of the truth.
"""

from __future__ import annotations

import atexit
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import GraphFormatError
from .influence_graph import InfluenceGraph

__all__ = [
    "SharedGraph",
    "SharedGraphSpec",
    "SharedModel",
    "SharedModelSpec",
    "attach_shared_graph",
    "attach_shared_model",
    "detach_shared_graph",
    "detach_shared_graphs",
]

_INT = np.dtype(np.int64)
_FLOAT = np.dtype(np.float64)


@dataclass(frozen=True)
class SharedGraphSpec:
    """Picklable descriptor of a published graph segment.

    This is all that crosses the process boundary per pool: a segment name
    and three integers.  The layout inside the segment is implied —
    ``indptr`` (``n + 1`` int64), ``heads`` (``m`` int64), ``probs``
    (``m`` float64), then ``weights`` (``n`` int64) when the graph is
    vertex-weighted.
    """

    name: str
    n: int
    m: int
    has_weights: bool

    @property
    def nbytes(self) -> int:
        """Exact payload size of the broadcast CSR arrays."""
        total = (self.n + 1) * _INT.itemsize + self.m * (_INT.itemsize + _FLOAT.itemsize)
        if self.has_weights:
            total += self.n * _INT.itemsize
        return total

    def _offsets(self) -> tuple[int, int, int, int]:
        o_heads = (self.n + 1) * _INT.itemsize
        o_probs = o_heads + self.m * _INT.itemsize
        o_weights = o_probs + self.m * _FLOAT.itemsize
        return 0, o_heads, o_probs, o_weights


def _close_tolerating_views(shm: shared_memory.SharedMemory) -> None:
    """Close ``shm``, deferring the unmap when numpy views still pin it.

    ``mmap.close`` refuses while exported buffers exist.  Dropping the
    handle instead hands the mapping's lifetime to those views: when the
    last one is garbage-collected, the mmap object goes with it and the
    pages are released — and ``SharedMemory.__del__`` no longer retries a
    close that can only fail.
    """
    try:
        shm.close()
    except BufferError:
        setattr(shm, "_mmap", None)


def _view_graph(spec: SharedGraphSpec, shm: shared_memory.SharedMemory) -> InfluenceGraph:
    """Build a read-only :class:`InfluenceGraph` over ``shm``'s buffer.

    No bytes are copied: ``np.frombuffer`` wraps the mapped pages directly
    and ``InfluenceGraph`` keeps already-contiguous right-dtype arrays
    as-is.  The views are frozen so the shared pages cannot be mutated.
    """
    o_indptr, o_heads, o_probs, o_weights = spec._offsets()
    buf = shm.buf
    indptr = np.frombuffer(buf, dtype=_INT, count=spec.n + 1, offset=o_indptr)
    heads = np.frombuffer(buf, dtype=_INT, count=spec.m, offset=o_heads)
    probs = np.frombuffer(buf, dtype=_FLOAT, count=spec.m, offset=o_probs)
    weights = None
    if spec.has_weights:
        weights = np.frombuffer(buf, dtype=_INT, count=spec.n, offset=o_weights)
    for array in (indptr, heads, probs, weights):
        if array is not None:
            array.flags.writeable = False
    return InfluenceGraph(indptr, heads, probs, weights=weights, validate=False)


class SharedGraph:
    """Publisher-side handle for a graph broadcast segment.

    Create with :meth:`publish`; the owning process must eventually call
    :meth:`unlink` (or use the instance as a context manager) so the
    segment is returned to the OS even when the pool raises.
    """

    __slots__ = ("spec", "_shm")

    def __init__(self, spec: SharedGraphSpec, shm: shared_memory.SharedMemory) -> None:
        self.spec = spec
        self._shm: "shared_memory.SharedMemory | None" = shm

    @classmethod
    def publish(cls, graph: InfluenceGraph,
                name: "str | None" = None) -> "SharedGraph":
        """Copy ``graph``'s CSR arrays into a fresh shared segment.

        The one memcpy of the whole broadcast happens here.  If anything
        fails mid-copy the segment is closed *and unlinked* before the
        exception propagates — a publish never leaks a named segment.

        ``name`` forces the segment name instead of letting the OS pick a
        fresh one; only tests exercising segment-name reuse should need it.
        """
        spec_shape = (graph.n, graph.m, graph.is_weighted)
        size = SharedGraphSpec("", *spec_shape).nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(size, 1),
                                         name=name)
        try:
            spec = SharedGraphSpec(shm.name, *spec_shape)
            o_indptr, o_heads, o_probs, o_weights = spec._offsets()
            buf = shm.buf
            np.frombuffer(buf, dtype=_INT, count=spec.n + 1,
                          offset=o_indptr)[:] = graph.indptr
            np.frombuffer(buf, dtype=_INT, count=spec.m,
                          offset=o_heads)[:] = graph.heads
            np.frombuffer(buf, dtype=_FLOAT, count=spec.m,
                          offset=o_probs)[:] = graph.probs
            if spec.has_weights:
                np.frombuffer(buf, dtype=_INT, count=spec.n,
                              offset=o_weights)[:] = graph.weights
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(spec, shm)

    def graph(self) -> InfluenceGraph:
        """A read-only view of the published graph in *this* process.

        Exists for tests and for executors that want the publisher on the
        exact same zero-copy path as the workers.
        """
        if self._shm is None:
            raise GraphFormatError(
                f"shared graph segment {self.spec.name!r} already unlinked"
            )
        return _view_graph(self.spec, self._shm)

    def unlink(self) -> None:
        """Release the segment (idempotent).

        Live numpy views (ours or a worker's) keep the *mapping* alive
        until they are garbage-collected — ``close`` failing with
        ``BufferError`` is therefore tolerated; the OS reclaims the pages
        when the last mapping drops.  The *name* is removed immediately,
        so no new attachment can race the teardown.  This process's
        attachment cache entry for the name (if any) is evicted too: once
        the name is free the OS may hand it to a future segment, and a
        cached mapping of the dead one must not shadow it.
        """
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.unlink()
        finally:
            detach_shared_graph(self.spec.name)
            # Views handed out by graph() may still pin the mapping; the
            # name (not the mapping) is what must go away immediately.
            _close_tolerating_views(shm)

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unlink()


#: Per-process attachment cache: segment name -> (graph view, mapping).
#: Guarded by ``_ATTACH_LOCK`` — pool workers are single-threaded, but the
#: thread-executor path shares the process, and a racing double-attach
#: would leak a second mapping of the same segment.
_ATTACHED: dict[str, tuple[InfluenceGraph, shared_memory.SharedMemory]] = {}
_ATTACH_LOCK = threading.Lock()


def attach_shared_graph(spec: SharedGraphSpec) -> InfluenceGraph:
    """Attach read-only views for ``spec``, once per process.

    Repeated calls with the same segment return the cached graph object, so
    a pool worker that processes many tasks maps the pages exactly once.
    """
    with _ATTACH_LOCK:
        entry = _ATTACHED.get(spec.name)
        if entry is None:
            try:
                shm = shared_memory.SharedMemory(name=spec.name)
            except FileNotFoundError as exc:
                raise GraphFormatError(
                    f"shared graph segment {spec.name!r} does not exist "
                    f"(publisher already unlinked it?)"
                ) from exc
            entry = (_view_graph(spec, shm), shm)
            _ATTACHED[spec.name] = entry
        return entry[0]


def detach_shared_graph(name: str) -> bool:
    """Evict one cached attachment (idempotent); returns whether it existed.

    Must be called when a worker is told a segment went away (the serving
    shard protocol's ``detach`` task) — and is called automatically by
    :meth:`SharedGraph.unlink` in the publisher's own process.  Without the
    eviction, a long-lived process that later attaches a *new* segment
    reusing the same OS-assigned name would be handed the stale mapping of
    the dead one, and would hold the dead segment's pages alive forever.
    """
    with _ATTACH_LOCK:
        entry = _ATTACHED.pop(name, None)
    if entry is None:
        return False
    _graph, shm = entry
    del _graph
    _close_tolerating_views(shm)
    return True


def detach_shared_graphs() -> None:
    """Drop every cached attachment in this process (idempotent).

    Graph objects previously returned by :func:`attach_shared_graph` keep
    their own views alive; in that case the unmap is deferred to their
    garbage collection rather than forced here.
    """
    with _ATTACH_LOCK:
        names = list(_ATTACHED)
    for name in names:
        detach_shared_graph(name)


atexit.register(detach_shared_graphs)


@dataclass(frozen=True)
class SharedModelSpec:
    """Picklable descriptor of a published serving model.

    ``token`` is the model's content-address
    (:meth:`repro.serve.cache.ModelKey.token`), which shard workers use to
    key their per-model state; ``graph`` locates the coarse graph ``H``
    inside shared memory.  The fine-to-coarse projection ``pi`` stays in
    the parent — the serving dispatcher maps seed sets to coarse ids
    before any query crosses the process boundary, so workers only ever
    need ``H``.
    """

    token: str
    graph: SharedGraphSpec


class SharedModel:
    """Publisher-side handle for a serving-model broadcast.

    A thin composition over :class:`SharedGraph`: the coarse graph of one
    cached model is published once and addressed by the model's cache
    token.  Same ownership protocol — the publisher (the serving parent)
    must :meth:`unlink` when the model is evicted.
    """

    __slots__ = ("token", "_shared")

    def __init__(self, token: str, shared: SharedGraph) -> None:
        self.token = token
        self._shared = shared

    @classmethod
    def publish(cls, token: str, coarse: InfluenceGraph) -> "SharedModel":
        """Publish model ``token``'s coarse graph into shared memory."""
        return cls(token, SharedGraph.publish(coarse))

    @property
    def spec(self) -> SharedModelSpec:
        """The picklable descriptor workers attach with."""
        return SharedModelSpec(self.token, self._shared.spec)

    @property
    def nbytes(self) -> int:
        """Bytes broadcast for this model."""
        return self._shared.spec.nbytes

    def unlink(self) -> None:
        """Release the underlying segment (idempotent)."""
        self._shared.unlink()

    def __enter__(self) -> "SharedModel":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unlink()


def attach_shared_model(spec: SharedModelSpec) -> InfluenceGraph:
    """Attach the coarse graph of a published model (cached per process)."""
    return attach_shared_graph(spec.graph)
