"""Reimplementations of the Table 6 comparison baselines."""

from .coarsenet import coarsenet
from .spine import Cascade, generate_cascades, spine

__all__ = ["coarsenet", "spine", "generate_cascades", "Cascade"]
