"""COARSENET (Purohit et al., KDD 2014 [40]) — spectral coarsening baseline.

COARSENET contracts the edges whose removal-by-merge least perturbs the
dominant eigenvalue ``lambda_1`` of the probability-weighted adjacency
matrix, since ``lambda_1`` governs the epidemic threshold / expected spread.
The reimplementation follows the published recipe:

1. compute the dominant right and left eigenvectors ``x``, ``y`` by power
   iteration (the role Octave's eigensolver plays for the authors);
2. score each edge ``(a, b)`` with the first-order eigenvalue perturbation
   induced by merging ``a`` and ``b``;
3. contract the lowest-scoring edges (as a matching, so merges do not
   interact within one pass) until the requested edge-reduction ratio is
   reached, re-scoring between passes.

Faithful *cost* characteristics are the point of this baseline (Table 6
compares run times): per pass it does dense O(n) vector work plus an
O(n * Delta)-flavoured scoring sweep, and it keeps several dense float
vectors alive — which is what makes it lose to r-robust-SCC coarsening at
scale.  Simplification vs. the original: we merge via the generic
:func:`repro.core.coarsen.coarsen` contraction (noisy-or edge bundles)
rather than CoarseNet's averaged-weight merge; the measured asymptotics are
unchanged.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..core.coarsen import coarsen
from ..core.result import CoarsenResult, CoarsenStats
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..partition.partition import Partition

__all__ = ["coarsenet"]


def _dominant_eigenpair(
    graph: InfluenceGraph, iterations: int = 50, tol: float = 1e-10
) -> tuple[float, np.ndarray, np.ndarray]:
    """Power iteration for the dominant right/left eigenvectors of ``A``.

    ``A[u, v] = p(u, v)``.  Returns ``(lambda_1, x, y)`` with ``A x ~ l x``
    and ``A^T y ~ l y``; vectors are L2-normalised.
    """
    n = graph.n
    tails, heads, probs = graph.edge_arrays()
    x = np.full(n, 1.0 / np.sqrt(n))
    y = x.copy()
    lam = 0.0
    for _ in range(iterations):
        new_x = np.zeros(n)
        np.add.at(new_x, tails, probs * x[heads])
        new_y = np.zeros(n)
        np.add.at(new_y, heads, probs * y[tails])
        norm_x = np.linalg.norm(new_x)
        norm_y = np.linalg.norm(new_y)
        if norm_x <= tol or norm_y <= tol:
            # Nilpotent-ish adjacency (a DAG); eigenvalue ~ 0.
            return 0.0, x, y
        new_x /= norm_x
        new_y /= norm_y
        if abs(norm_x - lam) < tol:
            x, y = new_x, new_y
            break
        lam = norm_x
        x, y = new_x, new_y
    return lam, x, y


def _edge_scores(
    graph: InfluenceGraph, lam: float, x: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """First-order |delta lambda_1| of merging each edge's endpoints.

    Standard matrix-perturbation estimate: merging ``a`` and ``b`` removes
    the ``(a, b)`` / ``(b, a)`` couplings and superposes the endpoints, so

        delta ~ (y_a + y_b)(x_a + x_b) * p_ab_avg - lam * (x_a y_a + x_b y_b)

    normalised by ``y^T x``.  Lower |score| = safer to contract.
    """
    tails, heads, probs = graph.edge_arrays()
    denom = float(y @ x)
    if denom <= 0.0:
        denom = 1.0
    xa, xb = x[tails], x[heads]
    ya, yb = y[tails], y[heads]
    delta = (ya + yb) * (xa + xb) * probs * 0.5 - lam * (xa * ya + xb * yb)
    return np.abs(delta) / denom


def coarsenet(
    graph: InfluenceGraph,
    target_edge_ratio: float,
    max_passes: int = 400,
    power_iterations: int = 100,
    batch_fraction: float = 0.02,
) -> CoarsenResult:
    """Coarsen ``graph`` down to ``target_edge_ratio`` of its edges.

    Parameters
    ----------
    target_edge_ratio:
        Desired ``|F| / |E|`` (Table 6 runs COARSENET at the same reduction
        ratio as the proposed algorithm's output).
    max_passes:
        Safety bound on score-contract passes.
    batch_fraction:
        Fraction of the remaining reduction performed per eigen-rescore.
        The original re-scores after every contraction; batching keeps the
        reimplementation runnable while preserving the dominant cost — many
        eigensolves over the shrinking graph.
    """
    if not 0.0 < target_edge_ratio <= 1.0:
        raise AlgorithmError("target_edge_ratio must lie in (0, 1]")
    t0 = time.perf_counter()
    target_edges = int(graph.m * target_edge_ratio)
    current = graph
    # pi maps original vertices to current coarse vertices across passes.
    pi_total = np.arange(graph.n, dtype=np.int64)

    for _ in range(max_passes):
        if current.m <= target_edges or current.m == 0:
            break
        lam, x, y = _dominant_eigenpair(current, iterations=power_iterations)
        scores = _edge_scores(current, lam, x, y)
        order = np.argsort(scores, kind="stable")
        # Contract a small matching of the best-scoring edges, then re-score.
        remaining = current.m - target_edges
        budget = max(1, int(math.ceil(remaining * batch_fraction)))
        tails, heads, _ = current.edge_arrays()
        merge_to = np.arange(current.n, dtype=np.int64)
        used = np.zeros(current.n, dtype=bool)
        merged = 0
        for e in order:
            a, b = int(tails[e]), int(heads[e])
            if used[a] or used[b]:
                continue
            used[a] = used[b] = True
            merge_to[b] = a
            merged += 1
            if merged >= budget:
                break
        if merged == 0:
            break
        partition = Partition(merge_to)
        coarse, pi = coarsen(current, partition)
        pi_total = pi[pi_total]
        current = coarse

    t1 = time.perf_counter()
    partition = Partition(pi_total)
    stats = CoarsenStats(
        r=0,
        first_stage_seconds=t1 - t0,
        second_stage_seconds=0.0,
        input_vertices=graph.n,
        input_edges=graph.m,
        output_vertices=current.n,
        output_edges=current.m,
        extras={"method": "coarsenet", "target_edge_ratio": target_edge_ratio},
    )
    return CoarsenResult(
        coarse=current, pi=pi_total, partition=partition, stats=stats
    )
