"""Evaluation metrics and reliability analysis."""

from .bounds import GuaranteeReport, guarantee_report
from .exact import exact_influence
from .metrics import (
    average_degree,
    mean_absolute_relative_error,
    rank_array,
    scc_size_distribution,
    spearman_rank_correlation,
)
from .structure import core_fringe_split, core_numbers
from .reliability import (
    estimate_reliability,
    exact_reliability,
    max_scc_rate_samples,
    reliability_product,
)

__all__ = [
    "core_numbers",
    "core_fringe_split",
    "GuaranteeReport",
    "guarantee_report",
    "exact_influence",
    "mean_absolute_relative_error",
    "spearman_rank_correlation",
    "rank_array",
    "scc_size_distribution",
    "average_degree",
    "exact_reliability",
    "estimate_reliability",
    "max_scc_rate_samples",
    "reliability_product",
]
