"""Exact influence computation by live-edge enumeration.

``Inf_G(S)`` is #P-hard in general [9], but for tiny graphs it can be
computed exactly from the random-graph interpretation (Eq. 2):

    Inf_G(S) = sum over edge subsets X of  p(X | E) * R_{(V, X)}(S)

This is the oracle the test suite uses to validate the Monte-Carlo
simulator, the RR-set estimator, and the coarsening theorems (Lemma 4.3,
Theorem 4.6) without statistical slack.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..diffusion.reachability import reachable_weight
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph

__all__ = ["exact_influence"]

_EXACT_EDGE_LIMIT = 20


def exact_influence(graph: InfluenceGraph, seeds: np.ndarray) -> float:
    """Exact ``Inf_G(S)`` by enumerating all ``2^m`` live-edge graphs.

    Supports vertex-weighted graphs (influence = expected activated weight).
    Only feasible for ``m <= 20``.
    """
    if graph.m > _EXACT_EDGE_LIMIT:
        raise AlgorithmError(
            f"exact influence needs m <= {_EXACT_EDGE_LIMIT}, got {graph.m}"
        )
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        raise AlgorithmError("seed set must be non-empty")
    tails, heads, probs = graph.edge_arrays()
    weights = graph.weights
    total = 0.0
    for keep in itertools.product((False, True), repeat=graph.m):
        keep_arr = np.asarray(keep, dtype=bool)
        weight = float(np.prod(np.where(keep_arr, probs, 1.0 - probs)))
        if weight == 0.0:
            continue
        live_tails = tails[keep_arr]
        live_heads = heads[keep_arr]
        indptr = np.zeros(graph.n + 1, dtype=np.int64)
        np.add.at(indptr, live_tails + 1, 1)
        np.cumsum(indptr, out=indptr)
        order = np.argsort(live_tails, kind="stable")
        total += weight * reachable_weight(
            indptr, live_heads[order], seeds, weights=weights
        )
    return total
