"""Accuracy and reduction metrics used throughout the evaluation (Section 7).

All statistics are implemented from scratch (Spearman included) so the
library has no runtime dependency beyond numpy; tests cross-check against
scipy where it is available.
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..partition.partition import Partition

__all__ = [
    "mean_absolute_relative_error",
    "rank_array",
    "spearman_rank_correlation",
    "scc_size_distribution",
    "average_degree",
]


def mean_absolute_relative_error(
    ground_truth: np.ndarray, estimates: np.ndarray
) -> float:
    """MARE: ``mean(|gt - est| / gt)`` (Table 4).

    Ground-truth influences are always >= 1 (a seed activates itself), so the
    division is safe; zeros are rejected to surface upstream mistakes.
    """
    ground_truth = np.asarray(ground_truth, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    if ground_truth.shape != estimates.shape:
        raise AlgorithmError("ground truth and estimates must align")
    if (ground_truth <= 0).any():
        raise AlgorithmError("ground-truth influences must be positive")
    return float(np.mean(np.abs(ground_truth - estimates) / ground_truth))


def rank_array(values: np.ndarray) -> np.ndarray:
    """Fractional (mid) ranks with ties averaged, 1-based."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def spearman_rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman's RCC: Pearson correlation of the mid-rank transforms."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.size < 2:
        raise AlgorithmError("need two aligned arrays with at least 2 entries")
    ra, rb = rank_array(a), rank_array(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra * ra).sum() * (rb * rb).sum())
    if denom == 0.0:
        return 1.0  # both rankings are constant => perfectly concordant
    return float((ra * rb).sum() / denom)


def scc_size_distribution(partition: Partition) -> dict[int, int]:
    """Histogram ``{block size: count}`` for Figure 7."""
    sizes = partition.block_sizes()
    unique, counts = np.unique(sizes, return_counts=True)
    return {int(s): int(c) for s, c in zip(unique, counts)}


def average_degree(n: int, m: int) -> float:
    """Average degree ``m / n`` (the density diagnostic of Section 7.4)."""
    if n == 0:
        return 0.0
    return m / n
