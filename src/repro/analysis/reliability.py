"""Strongly connected reliability (Eq. 13/14) and robustness diagnostics.

``Rel(G)`` is the probability that a live-edge sample of ``G`` is strongly
connected.  Exact computation is #P-hard [2, 47], so this module offers:

* :func:`exact_reliability` — brute-force subset enumeration for graphs with
  at most ~20 edges (tests, the paper's worked example);
* :func:`estimate_reliability` — Monte-Carlo estimation;
* :func:`max_scc_rate_samples` — the distribution of the *maximum SCC rate*
  (largest-SCC size / n) of live-edge samples, Figure 8's quantity;
* :func:`reliability_product` — the factor ``prod_j Rel(G[C_j])`` appearing
  in Theorems 4.6, 6.1 and 6.2 (singleton blocks contribute exactly 1).
"""

from __future__ import annotations

import itertools

import numpy as np

from ..diffusion.live_edge import sample_live_edge_csr
from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph
from ..partition.partition import Partition
from ..rng import ensure_rng
from ..scc import scc_labels

__all__ = [
    "exact_reliability",
    "estimate_reliability",
    "max_scc_rate_samples",
    "reliability_product",
]

_EXACT_EDGE_LIMIT = 22


def _is_strongly_connected(n: int, tails: np.ndarray, heads: np.ndarray) -> bool:
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, np.asarray(tails, dtype=np.int64) + 1, 1)
    np.cumsum(indptr, out=indptr)
    order = np.argsort(tails, kind="stable")
    labels = scc_labels(indptr, np.asarray(heads, dtype=np.int64)[order])
    return bool(labels.max(initial=0) == 0)


def exact_reliability(graph: InfluenceGraph) -> float:
    """Exact ``Rel(G)`` by enumerating all ``2^m`` edge subsets.

    Only feasible for tiny graphs (``m <= 22``); the worked example in the
    paper (``Rel(G[C_1]) = 0.88848``) is validated against this.
    """
    if graph.m > _EXACT_EDGE_LIMIT:
        raise AlgorithmError(
            f"exact reliability needs m <= {_EXACT_EDGE_LIMIT}, got {graph.m}"
        )
    if graph.n <= 1:
        return 1.0
    tails, heads, probs = graph.edge_arrays()
    total = 0.0
    for keep in itertools.product((False, True), repeat=graph.m):
        keep_arr = np.asarray(keep, dtype=bool)
        weight = float(
            np.prod(np.where(keep_arr, probs, 1.0 - probs))
        )
        if weight == 0.0:
            continue
        if _is_strongly_connected(graph.n, tails[keep_arr], heads[keep_arr]):
            total += weight
    return total


def estimate_reliability(
    graph: InfluenceGraph, n_samples: int = 10_000, rng=None
) -> float:
    """Monte-Carlo estimate of ``Rel(G)``."""
    if graph.n <= 1:
        return 1.0
    rng = ensure_rng(rng)
    hits = 0
    for _ in range(n_samples):
        indptr, heads = sample_live_edge_csr(graph, rng)
        labels = scc_labels(indptr, heads)
        if labels.max(initial=0) == 0:
            hits += 1
    return hits / n_samples


def max_scc_rate_samples(
    graph: InfluenceGraph, n_samples: int = 1_000, rng=None
) -> np.ndarray:
    """Per-sample maximum SCC rates of live-edge samples (Figure 8).

    The maximum SCC rate of a deterministic graph is the size of its largest
    SCC divided by ``n``; the paper evaluates the distribution of this rate
    over live-edge samples of the largest r-robust SCC's induced subgraph.
    """
    rng = ensure_rng(rng)
    rates = np.empty(n_samples, dtype=np.float64)
    for i in range(n_samples):
        indptr, heads = sample_live_edge_csr(graph, rng)
        labels = scc_labels(indptr, heads)
        largest = int(np.bincount(labels).max())
        rates[i] = largest / graph.n
    return rates


def reliability_product(
    graph: InfluenceGraph,
    partition: Partition,
    n_samples: int = 2_000,
    rng=None,
    exact_edge_limit: int = 16,
) -> float:
    """Estimate ``prod_j Rel(G[C_j])`` over the partition's blocks.

    Singleton blocks have reliability exactly 1 and are skipped, so the cost
    scales with the non-singleton blocks only.  Blocks whose induced subgraph
    has at most ``exact_edge_limit`` edges are computed exactly.
    """
    rng = ensure_rng(rng)
    product = 1.0
    for block in partition.non_singleton_blocks():
        sub = graph.induced_subgraph(block)
        if sub.m <= exact_edge_limit:
            product *= exact_reliability(sub)
        else:
            product *= estimate_reliability(sub, n_samples=n_samples, rng=rng)
    return product
