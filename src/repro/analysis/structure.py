"""Core–fringe structure diagnostics (Section 4.3).

The paper's density argument rests on the *core–fringe* decomposition of
complex networks [30, 32]: a well-connected core (containing k-edge-
connected subgraphs with large k [1]) plus a tree-like fringe.  This module
provides the standard instrument for observing that structure — k-core
decomposition by iterative peeling — and a convenience split used by the
documentation and tests to show that r-robust SCCs live in the core.

Degrees are taken in the underlying undirected sense (in + out), matching
how the core–fringe literature treats directed social graphs.
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..graph.influence_graph import InfluenceGraph

__all__ = ["core_numbers", "core_fringe_split"]


def core_numbers(graph: InfluenceGraph) -> np.ndarray:
    """The k-core number of every vertex (Matula–Beck peeling).

    Vertex ``v``'s core number is the largest ``k`` such that ``v`` belongs
    to a subgraph in which every vertex has (undirected) degree >= ``k``.
    O(n + m) via bucketed peeling.
    """
    n = graph.n
    tails, heads, _ = graph.edge_arrays()
    # undirected multiset adjacency: each directed edge contributes to both
    # endpoints' degrees
    endpoints = np.concatenate([tails, heads])
    partners = np.concatenate([heads, tails])
    order = np.argsort(endpoints, kind="stable")
    endpoints, partners = endpoints[order], partners[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, endpoints + 1, 1)
    np.cumsum(indptr, out=indptr)

    degree = np.diff(indptr).copy()
    core = degree.copy()
    # bucket peeling
    max_deg = int(degree.max(initial=0))
    bins = np.zeros(max_deg + 2, dtype=np.int64)
    np.add.at(bins, degree + 1, 1)
    np.cumsum(bins, out=bins)
    pos = np.zeros(n, dtype=np.int64)
    vert = np.zeros(n, dtype=np.int64)
    cursor = bins.copy()
    for v in range(n):
        pos[v] = cursor[degree[v]]
        vert[pos[v]] = v
        cursor[degree[v]] += 1

    indptr_l = indptr.tolist()
    partners_l = partners.tolist()
    for i in range(n):
        v = int(vert[i])
        core[v] = degree[v]
        for ptr in range(indptr_l[v], indptr_l[v + 1]):
            u = partners_l[ptr]
            if degree[u] > degree[v]:
                # move u one bucket down (swap with the first vertex of its
                # current bucket)
                du = degree[u]
                first = bins[du]
                w = int(vert[first])
                if u != w:
                    vert[pos[u]], vert[first] = w, u
                    pos[w], pos[u] = pos[u], first
                bins[du] += 1
                degree[u] -= 1
    return core.astype(np.int64)


def core_fringe_split(
    graph: InfluenceGraph, k: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Split vertices into ``(core, fringe)`` by core number.

    ``k`` defaults to half the maximum core number — a pragmatic threshold
    that isolates the dense region the paper's r-robust SCCs inhabit.
    """
    numbers = core_numbers(graph)
    if k is None:
        k = max(1, int(numbers.max(initial=0)) // 2)
    if k < 0:
        raise AlgorithmError("k must be non-negative")
    core = np.nonzero(numbers >= k)[0]
    fringe = np.nonzero(numbers < k)[0]
    return core, fringe
