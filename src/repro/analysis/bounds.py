"""Accuracy-guarantee reports for a concrete coarsening (Theorems 6.1/6.2).

Given a :class:`~repro.core.result.CoarsenResult`, these helpers estimate
the reliability factor ``rho = prod_j Rel(G[C_j])`` and phrase the paper's
guarantees in terms a user can act on:

* estimation (Theorem 6.1): a ``(1 +- eps)``-accurate estimate on ``H``
  satisfies ``-eps <= (Inf_out - Inf_G) / Inf_G <= (1 + eps) / rho - 1``;
* maximization (Theorem 6.2): an ``alpha``-approximate solution on ``H``
  pulls back to an ``alpha * rho``-approximate solution on ``G``.

``rho`` is itself #P-hard exactly, so it is estimated per non-singleton
block (exact enumeration for tiny blocks, Monte-Carlo otherwise); the
report records the estimation method used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.result import CoarsenResult
from ..graph.influence_graph import InfluenceGraph
from .reliability import reliability_product

__all__ = ["GuaranteeReport", "guarantee_report"]


@dataclass
class GuaranteeReport:
    """Concrete instantiation of the Section 6 guarantees for one coarsening."""

    reliability_product: float
    non_singleton_blocks: int
    estimation_eps: float
    estimation_lower_rel_error: float
    estimation_upper_rel_error: float
    maximization_alpha: float
    maximization_effective_alpha: float

    def summary(self) -> str:
        """A human-readable multi-line summary."""
        return "\n".join([
            f"reliability factor rho = {self.reliability_product:.4f} "
            f"(over {self.non_singleton_blocks} merged blocks)",
            f"estimation (Theorem 6.1, eps = {self.estimation_eps}): "
            f"relative error in "
            f"[{self.estimation_lower_rel_error:+.3f}, "
            f"{self.estimation_upper_rel_error:+.3f}]",
            f"maximization (Theorem 6.2, alpha = "
            f"{self.maximization_alpha:.4f}): effective ratio "
            f"{self.maximization_effective_alpha:.4f}",
        ])


def guarantee_report(
    graph: InfluenceGraph,
    result: CoarsenResult,
    estimation_eps: float = 0.01,
    maximization_alpha: float = 1.0 - 1.0 / math.e,
    n_samples: int = 2_000,
    rng=None,
) -> GuaranteeReport:
    """Estimate ``rho`` for ``result`` and instantiate Theorems 6.1/6.2.

    Parameters
    ----------
    estimation_eps:
        The accuracy the inner estimator provides on ``H`` (e.g. its
        Monte-Carlo concentration bound).
    maximization_alpha:
        The inner maximizer's ratio on ``H`` (default ``1 - 1/e``, the
        greedy/RIS family).
    n_samples:
        Monte-Carlo samples per non-singleton block for the reliability
        estimate.
    """
    rho = reliability_product(
        graph, result.partition, n_samples=n_samples, rng=rng
    )
    return GuaranteeReport(
        reliability_product=rho,
        non_singleton_blocks=len(result.partition.non_singleton_blocks()),
        estimation_eps=estimation_eps,
        estimation_lower_rel_error=-estimation_eps,
        estimation_upper_rel_error=(1.0 + estimation_eps) / rho - 1.0
        if rho > 0 else float("inf"),
        maximization_alpha=maximization_alpha,
        maximization_effective_alpha=maximization_alpha * rho,
    )
