"""Runtime lock-discipline sanitizer for the serving layer.

The static pass (:mod:`repro.lint.concurrency`) infers the guard map and
the lock-acquisition order from ``with`` scopes; this module is its
runtime cross-check.  :func:`install_sanitizer` patches
``threading.Lock``/``threading.RLock`` with factories that hand
repro-internal callers a :class:`SanitizedLock` — a transparent wrapper
that records, per thread, the stack of sanitized locks held and, on every
acquisition, adds an edge to an observed lock-order graph.  Three
violation kinds are detected:

``inversion``
    Acquiring B while holding A after some thread has acquired A while
    holding B (more generally: the new edge closes a cycle in the
    observed order graph).  This is the runtime twin of RL102 — but over
    *creation sites*, so two instances of the same class acquired in
    opposite orders by two threads are caught even though no single run
    deadlocked.
``self-deadlock``
    Re-acquiring a held non-reentrant lock on the same thread.  The real
    ``threading.Lock`` would block forever; the sanitizer raises
    :class:`LockDisciplineError` immediately instead.
``held-across-publish``
    Entering a publication point (``ModelCache.put``,
    ``InfluenceService._publish_epoch``) while holding a pool or cache
    lock.  Publication must not nest inside finer-grained serving locks —
    that is how the static edge set stays acyclic.

Locks are labelled by creation site (``module.qualname:line``), so the
witness dump reads like a stack trace.  Only locks created by modules
matching the installed prefixes (default ``repro.``) are wrapped; stdlib
and test-framework locks pass through untouched.

Usage (as wired into the threaded test suites by ``tests/conftest.py``)::

    sanitizer = install_sanitizer()
    try:
        ...  # run threaded serving code
        sanitizer.assert_clean()   # raises with a witness dump on violation
    finally:
        uninstall_sanitizer(sanitizer)

The sanitizer is a test harness, not a production feature: wrappers stay
functional after :func:`uninstall_sanitizer` (objects created during the
window keep working), but new locks are real again.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass

from .errors import ReproError

__all__ = [
    "LockDisciplineError",
    "LockViolation",
    "SanitizedLock",
    "LockSanitizer",
    "install_sanitizer",
    "uninstall_sanitizer",
    "current_sanitizer",
]

#: Lock creation-site modules that must never be held across publication.
PUBLISH_FORBIDDEN_MODULES = ("repro.serve.pool", "repro.serve.cache")


class LockDisciplineError(ReproError):
    """A lock-discipline violation observed at runtime."""


@dataclass(frozen=True)
class LockViolation:
    """One recorded violation; ``witness`` lists the evidencing edges."""

    kind: str  # "inversion" | "self-deadlock" | "held-across-publish"
    message: str
    witness: "tuple[str, ...]"

    def render(self) -> str:
        lines = [f"[{self.kind}] {self.message}"]
        lines.extend(f"    {entry}" for entry in self.witness)
        return "\n".join(lines)


class SanitizedLock:
    """Drop-in ``Lock``/``RLock`` that reports into a :class:`LockSanitizer`.

    ``site`` is the creation-site label — the node identity in the
    observed order graph.  Two locks created on the same source line share
    a node: that is deliberate, it is what lets an ABBA inversion between
    two *instances* of the same class be recognised as one ordering bug.
    """

    __slots__ = ("_sanitizer", "_inner", "_reentrant", "site", "module",
                 "_owner", "_count")

    def __init__(self, sanitizer: "LockSanitizer", inner: object,
                 reentrant: bool, site: str, module: str) -> None:
        self._sanitizer = sanitizer
        self._inner = inner
        self._reentrant = reentrant
        self.site = site
        self.module = module
        self._owner: "int | None" = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            if not self._reentrant:
                self._sanitizer.record_self_deadlock(self)
                raise LockDisciplineError(
                    f"re-acquiring non-reentrant lock {self.site} on the "
                    f"same thread would deadlock"
                )
        else:
            self._sanitizer.before_acquire(self)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._owner = me
            self._count += 1
            self._sanitizer.push_held(self)
        return ok

    def release(self) -> None:
        self._count -= 1
        if self._count <= 0:
            self._owner = None
            self._count = 0
        self._sanitizer.pop_held(self)
        self._inner.release()

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        if probe is not None:
            return bool(probe())
        return self._owner is not None  # RLock on older pythons

    def __enter__(self) -> bool:
        self.acquire()
        return True

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SanitizedLock {self.site} reentrant={self._reentrant}>"


class LockSanitizer:
    """Observes sanitized-lock activity and records discipline violations.

    All graph state is guarded by one real (unsanitized) internal lock;
    the per-thread held stack lives in a ``threading.local``.  Violations
    are deduplicated by kind and witness so a hot loop reports each
    distinct bug once.
    """

    def __init__(self, prefixes: "tuple[str, ...]" = ("repro.",)) -> None:
        self.prefixes = prefixes
        self._graph_lock = threading.Lock()
        self._tls = threading.local()
        #: Observed order edges: (site A, site B) -> first witness text.
        self._edges: "dict[tuple[str, str], str]" = {}
        self._violations: "list[LockViolation]" = []
        self._seen: "set[tuple]" = set()
        self._patches: "list[tuple[object, str, object]]" = []
        self._orig_lock = None
        self._orig_rlock = None

    # -- introspection -------------------------------------------------

    @property
    def violations(self) -> "tuple[LockViolation, ...]":
        with self._graph_lock:
            return tuple(self._violations)

    def edges(self) -> "list[tuple[str, str, str]]":
        """The observed order graph as sorted (before, after, witness)."""
        with self._graph_lock:
            items = list(self._edges.items())
        return sorted((a, b, w) for (a, b), w in items)

    def report(self) -> str:
        """Violations plus the observed lock-order witness, rendered."""
        violations = self.violations
        lines = [
            f"lock sanitizer: {len(violations)} violation"
            f"{'s' if len(violations) != 1 else ''}"
        ]
        lines.extend(v.render() for v in violations)
        lines.append("observed lock-order edges:")
        edges = self.edges()
        if not edges:
            lines.append("    (none)")
        for before, after, witness in edges:
            lines.append(f"    {before} -> {after}   [{witness}]")
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise :class:`LockDisciplineError` if any violation was seen."""
        if self.violations:
            raise LockDisciplineError(self.report())

    # -- held-stack bookkeeping ----------------------------------------

    def _held(self) -> "list[SanitizedLock]":
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held_now(self) -> "tuple[SanitizedLock, ...]":
        """Sanitized locks held by the calling thread, oldest first."""
        return tuple(self._held())

    def push_held(self, lock: SanitizedLock) -> None:
        self._held().append(lock)

    def pop_held(self, lock: SanitizedLock) -> None:
        stack = self._held()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                return

    # -- detection -----------------------------------------------------

    def before_acquire(self, lock: SanitizedLock) -> None:
        held = self._held()
        if not held:
            return
        where = _caller_site()
        with self._graph_lock:
            for prior in held:
                if prior.site == lock.site:
                    self._record(LockViolation(
                        kind="inversion",
                        message=(
                            f"acquiring {lock.site} while already holding "
                            f"a lock from the same creation site (no "
                            f"consistent order can exist between peers)"
                        ),
                        witness=(f"at {where}",),
                    ), key=("peer", lock.site))
                    continue
                cycle = self._path(lock.site, prior.site)
                if cycle is not None:
                    chain = " -> ".join(cycle + [lock.site])
                    evidence = tuple(
                        f"{a} -> {b}   [{self._edges[(a, b)]}]"
                        for a, b in zip(cycle, cycle[1:] + [lock.site])
                        if (a, b) in self._edges
                    )
                    self._record(LockViolation(
                        kind="inversion",
                        message=(
                            f"acquiring {lock.site} while holding "
                            f"{prior.site} inverts the observed order "
                            f"{chain}"
                        ),
                        witness=evidence + (f"now: {prior.site} -> "
                                            f"{lock.site} at {where}",),
                    ), key=("inversion", prior.site, lock.site))
                self._edges.setdefault((prior.site, lock.site), where)

    def record_self_deadlock(self, lock: SanitizedLock) -> None:
        where = _caller_site()
        with self._graph_lock:
            self._record(LockViolation(
                kind="self-deadlock",
                message=(
                    f"non-reentrant lock {lock.site} re-acquired on the "
                    f"thread that already holds it"
                ),
                witness=(f"at {where}",),
            ), key=("self", lock.site, where))

    def check_publish(self, label: str) -> None:
        """Record a violation if a forbidden lock is held entering ``label``."""
        bad = [
            lock for lock in self._held()
            if lock.module.startswith(PUBLISH_FORBIDDEN_MODULES)
        ]
        if not bad:
            return
        where = _caller_site()
        with self._graph_lock:
            for lock in bad:
                self._record(LockViolation(
                    kind="held-across-publish",
                    message=(
                        f"{label} entered while holding {lock.site}; "
                        f"publication must not nest inside pool/cache locks"
                    ),
                    witness=(f"at {where}",),
                ), key=("publish", label, lock.site))

    def _record(self, violation: LockViolation, key: tuple) -> None:
        if key in self._seen:
            return
        self._seen.add(key)
        self._violations.append(violation)

    def _path(self, start: str, goal: str) -> "list[str] | None":
        """A path ``start -> ... -> goal`` in the edge graph, if any."""
        if start == goal:
            return [start]
        stack = [(start, [start])]
        visited = {start}
        adjacency: "dict[str, list[str]]" = {}
        for before, after in self._edges:
            adjacency.setdefault(before, []).append(after)
        while stack:
            node, path = stack.pop()
            for nxt in adjacency.get(node, ()):
                if nxt == goal:
                    return path + [nxt]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # -- lock construction ---------------------------------------------

    def make_lock(self, label: "str | None" = None,
                  reentrant: bool = False,
                  module: str = "<explicit>") -> SanitizedLock:
        """Construct a sanitized lock directly (self-tests, fixtures)."""
        factory = self._orig_lock or threading.Lock
        if reentrant:
            factory = self._orig_rlock or threading.RLock
        site = label if label is not None else _caller_site()
        return SanitizedLock(self, factory(), reentrant=reentrant,
                             site=site, module=module)

    # -- installation --------------------------------------------------

    def patch_threading(self) -> None:
        """Swap ``threading.Lock``/``RLock`` for filtering factories."""
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock
        sanitizer = self

        def lock_factory():
            frame = sys._getframe(1)
            module = frame.f_globals.get("__name__", "")
            if module.startswith(sanitizer.prefixes):
                site = (f"{module}.{frame.f_code.co_qualname}:"
                        f"{frame.f_lineno}")
                return SanitizedLock(sanitizer, sanitizer._orig_lock(),
                                     reentrant=False, site=site,
                                     module=module)
            return sanitizer._orig_lock()

        def rlock_factory():
            frame = sys._getframe(1)
            module = frame.f_globals.get("__name__", "")
            if module.startswith(sanitizer.prefixes):
                site = (f"{module}.{frame.f_code.co_qualname}:"
                        f"{frame.f_lineno}")
                return SanitizedLock(sanitizer, sanitizer._orig_rlock(),
                                     reentrant=True, site=site,
                                     module=module)
            return sanitizer._orig_rlock()

        self._patches.append((threading, "Lock", threading.Lock))
        self._patches.append((threading, "RLock", threading.RLock))
        threading.Lock = lock_factory  # type: ignore[assignment]
        threading.RLock = rlock_factory  # type: ignore[assignment]

    def patch_publish_points(self) -> None:
        """Wrap the serve-layer publication points with held-lock checks."""
        from .serve.cache import ModelCache
        from .serve.service import InfluenceService

        self._wrap_method(ModelCache, "put", "ModelCache.put")
        self._wrap_method(InfluenceService, "_publish_epoch",
                          "InfluenceService._publish_epoch")

    def _wrap_method(self, cls: type, name: str, label: str) -> None:
        original = getattr(cls, name)
        sanitizer = self

        def wrapper(*args, **kwargs):
            sanitizer.check_publish(label)
            return original(*args, **kwargs)

        wrapper.__name__ = getattr(original, "__name__", name)
        wrapper.__wrapped__ = original  # type: ignore[attr-defined]
        self._patches.append((cls, name, original))
        setattr(cls, name, wrapper)

    def unpatch(self) -> None:
        """Restore everything :meth:`patch_threading`/publish patched."""
        while self._patches:
            target, name, original = self._patches.pop()
            setattr(target, name, original)


def _caller_site() -> str:
    """First stack frame outside this module, as ``module:line (func)``."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - interpreter internals
        return "<unknown>"
    module = frame.f_globals.get("__name__", "<unknown>")
    return f"{module}:{frame.f_lineno} ({frame.f_code.co_name})"


_ACTIVE: "LockSanitizer | None" = None


def current_sanitizer() -> "LockSanitizer | None":
    """The installed sanitizer, if any."""
    return _ACTIVE


def install_sanitizer(prefixes: "tuple[str, ...]" = ("repro.",),
                      patch_threading: bool = True,
                      patch_publish: bool = True) -> LockSanitizer:
    """Install a process-wide sanitizer and return it.

    Exactly one sanitizer may be active; install/uninstall in pairs (the
    test fixture does this around every threaded test).  With
    ``patch_threading`` off, no global patching happens — locks are then
    created explicitly via :meth:`LockSanitizer.make_lock` (self-tests).
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise LockDisciplineError("a lock sanitizer is already installed")
    sanitizer = LockSanitizer(prefixes)
    if patch_threading:
        sanitizer.patch_threading()
    if patch_publish:
        sanitizer.patch_publish_points()
    _ACTIVE = sanitizer
    return sanitizer


def uninstall_sanitizer(sanitizer: "LockSanitizer | None" = None) -> None:
    """Undo :func:`install_sanitizer`; safe to call in ``finally`` blocks."""
    global _ACTIVE
    target = sanitizer if sanitizer is not None else _ACTIVE
    if target is None:
        return
    target.unpatch()
    if _ACTIVE is target:
        _ACTIVE = None
