"""Randomness helpers.

All stochastic entry points in the library accept either a seed or a
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises both forms so
internal code always works with a ``Generator``.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

#: Anything the library accepts as a randomness source: a seed, an existing
#: generator (threaded through unchanged), or ``None`` for a fresh stream.
RngLike: TypeAlias = int | np.random.Generator | None


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh unseeded generator), an integer seed, or an existing
        generator (returned unchanged, so a caller can thread one generator
        through a pipeline for full determinism).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used by the parallel implementation (Algorithm 6) so every worker has an
    independent, reproducible stream.
    """
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_entropy(rng: RngLike) -> int:
    """One 63-bit integer drawn from ``rng``, for :func:`indexed_rng` streams.

    The indexed-stream discipline (see :func:`indexed_rng`) needs a plain
    integer base, not a generator: a generator's future output depends on
    how much of it has already been consumed, while an entropy integer can
    be shipped to another process and re-derive the exact same streams.
    """
    return int(ensure_rng(rng).integers(0, 2**63 - 1))


def indexed_rng(entropy: int, index: int) -> np.random.Generator:
    """The generator for stream ``index`` of the ``entropy`` family.

    Deterministic in ``(entropy, index)`` alone — two processes given the
    same pair construct bit-identical streams without coordinating.  This
    is the substrate of the serving layer's sharded sample pools
    (:mod:`repro.serve.shard`): sample ``i`` of a pool is always drawn
    from stream ``i``, so *any* partition of the indices across workers
    reassembles the exact pool a serial drawer would have produced.
    """
    if index < 0:
        raise ValueError("indexed_rng index must be non-negative")
    seq = np.random.SeedSequence(entropy=int(entropy),
                                 spawn_key=(int(index),))
    return np.random.default_rng(seq)
