"""Randomness helpers.

All stochastic entry points in the library accept either a seed or a
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises both forms so
internal code always works with a ``Generator``.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

#: Anything the library accepts as a randomness source: a seed, an existing
#: generator (threaded through unchanged), or ``None`` for a fresh stream.
RngLike: TypeAlias = int | np.random.Generator | None


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh unseeded generator), an integer seed, or an existing
        generator (returned unchanged, so a caller can thread one generator
        through a pipeline for full determinism).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used by the parallel implementation (Algorithm 6) so every worker has an
    independent, reproducible stream.
    """
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
