"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library is a subclass of :class:`ReproError`, so
callers can catch a single type at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """An input graph (file or arrays) is malformed."""


class PartitionError(ReproError):
    """A vertex partition is inconsistent with the graph it describes."""


class CoarseningError(ReproError):
    """Coarsening preconditions were violated (e.g. non-SC component)."""


class BudgetExceededError(ReproError):
    """A configured resource budget (memory, simulations) was exceeded.

    The benchmark harness uses this to reproduce the paper's "OOM" rows
    without actually exhausting machine memory.
    """


class AlgorithmError(ReproError):
    """An influence-analysis algorithm received invalid parameters."""
