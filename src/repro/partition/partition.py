"""Array-represented vertex partitions and the meet operation.

A partition of ``V = {0..n-1}`` is stored as a label array ``P`` where
``P[v]`` is the id of the block containing ``v`` (Appendix B of the paper).
The *meet* ``P ∧ Q`` — the coarsest partition finer than both — is the core
incremental step of r-robust SCC construction (Theorem 4.11):
``P_i = P_{i-1} ∧ C_i``.

Two meet implementations are provided:

* :func:`meet_labels_hash` — the paper's Algorithm 5, a single scan with a
  hash table, O(n) expected time;
* :func:`meet_labels` — a vectorised equivalent using a packed-key
  ``numpy.unique``, the default on CPython where the interpreted loop is the
  bottleneck.

``bench_ablation_meet`` compares the two.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

import numpy as np

from ..errors import PartitionError
from ..obs import inc, span

__all__ = ["Partition", "meet_all", "meet_labels", "meet_labels_hash"]


def meet_labels(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Vectorised meet of two label arrays (canonical output labels).

    Blocks of the result are the non-empty intersections of a block of ``p``
    with a block of ``q``.  Output labels are numbered by first occurrence,
    so the result is canonical.
    """
    if p.shape != q.shape:
        raise PartitionError("partitions must cover the same vertex set")
    if p.size == 0:
        return p.astype(np.int64)
    # Pack (p, q) pairs into one int64 key.  Labels are < n, so the product
    # fits comfortably for any graph that fits in memory.
    q_span = int(q.max()) + 1
    key = p.astype(np.int64) * q_span + q.astype(np.int64)
    _, inverse = np.unique(key, return_inverse=True)
    return _canonicalize(inverse.astype(np.int64))


def meet_labels_hash(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Algorithm 5 verbatim: single scan with a hash table.

    Produces canonical (first-occurrence-numbered) labels directly.
    """
    if p.shape != q.shape:
        raise PartitionError("partitions must cover the same vertex set")
    table: dict[tuple[int, int], int] = {}
    out = np.empty(p.size, dtype=np.int64)
    next_label = 0
    p_list = p.tolist()
    q_list = q.tolist()
    for v in range(p.size):
        pair = (p_list[v], q_list[v])
        label = table.get(pair)
        if label is None:
            label = next_label
            table[pair] = label
            next_label += 1
        out[v] = label
    return out


def _meet_pair(pair: "tuple[Partition, Partition]") -> "Partition":
    a, b = pair
    return a.meet(b)


def meet_all(
    partitions: "Sequence[Partition]",
    map_fn: "Callable[..., Iterable[Partition]] | None" = None,
) -> "Partition":
    """Pairwise tree reduction ``p_0 ∧ p_1 ∧ ... ∧ p_{k-1}``.

    Meet is associative and commutative (Theorem 4.11), so the reduction
    tree may be reshaped freely: the result is *identical* to the left
    fold — canonical labels depend only on the final blocks, not on the
    order the meets were taken in.  The tree shape cuts the sequential
    meet depth from ``k - 1`` to ``ceil(log2 k)`` and pairs same-size
    inputs, which keeps intermediate block counts (and hence the packed
    ``np.unique`` key domain) small.

    ``map_fn`` runs one level's independent pair-meets concurrently — pass
    ``ThreadPoolExecutor.map`` to overlap them (the numpy kernels release
    the GIL for the heavy sorts).  The default is the builtin serial
    ``map``.  An odd partition is carried to the next level unmerged.

    Emits a ``meet_tree`` span and bumps the ``meet.tree_depth`` counter
    by the number of levels reduced.
    """
    if not partitions:
        raise PartitionError("meet_all needs at least one partition")
    level = list(partitions)
    run_level = map_fn if map_fn is not None else map
    depth = 0
    with span("meet_tree", count=len(level)):
        while len(level) > 1:
            pairs = list(zip(level[0::2], level[1::2]))
            carry = [level[-1]] if len(level) % 2 else []
            level = list(run_level(_meet_pair, pairs)) + carry
            depth += 1
    inc("meet.tree_depth", depth)
    return level[0]


def _canonicalize(labels: np.ndarray) -> np.ndarray:
    """Renumber labels by order of first occurrence (stable, deterministic)."""
    seen = np.full(int(labels.max()) + 1, -1, dtype=np.int64)
    first = np.full_like(seen, -1)
    # first occurrence position of each label
    idx = np.arange(labels.size - 1, -1, -1, dtype=np.int64)
    first[labels[::-1]] = idx  # later writes win => earliest position retained
    order = np.argsort(first[first >= 0], kind="stable")
    seen_labels = np.nonzero(first >= 0)[0][order]
    seen[seen_labels] = np.arange(seen_labels.size, dtype=np.int64)
    return seen[labels]


class Partition:
    """A partition of ``{0..n-1}`` with canonical labels.

    Instances are immutable value objects; all operations return new
    partitions.  Labels are always canonical (numbered by first occurrence),
    so two partitions with the same blocks compare equal.
    """

    __slots__ = ("labels", "_n_blocks")

    def __init__(self, labels: np.ndarray, canonical: bool = False) -> None:
        labels = np.ascontiguousarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise PartitionError("labels must be a 1-d array")
        if labels.size and labels.min() < 0:
            raise PartitionError("labels must be non-negative")
        if not canonical and labels.size:
            labels = _canonicalize(labels)
        self.labels = labels
        self._n_blocks = int(labels.max()) + 1 if labels.size else 0

    # -- constructors ---------------------------------------------------

    @classmethod
    def trivial(cls, n: int) -> "Partition":
        """The one-block partition ``{V}`` (the 0-robust SCC partition)."""
        return cls(np.zeros(n, dtype=np.int64), canonical=True)

    @classmethod
    def singletons(cls, n: int) -> "Partition":
        """The all-singletons partition — the finest partition."""
        return cls(np.arange(n, dtype=np.int64), canonical=True)

    @classmethod
    def from_blocks(cls, blocks: Iterable[Iterable[int]], n: int) -> "Partition":
        """Build from explicit blocks; blocks must tile ``{0..n-1}``."""
        labels = np.full(n, -1, dtype=np.int64)
        for i, block in enumerate(blocks):
            members = np.asarray(list(block), dtype=np.int64)
            if (labels[members] != -1).any():
                raise PartitionError("blocks overlap")
            labels[members] = i
        if (labels == -1).any():
            raise PartitionError("blocks do not cover every vertex")
        return cls(labels)

    # -- basic queries ----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of elements partitioned."""
        return int(self.labels.size)

    @property
    def n_blocks(self) -> int:
        """Number of blocks."""
        return self._n_blocks

    def block_sizes(self) -> np.ndarray:
        """Size of each block, indexed by label."""
        return np.bincount(self.labels, minlength=self._n_blocks).astype(np.int64)

    def members_of(self, label: int) -> np.ndarray:
        """Vertices in block ``label``."""
        return np.nonzero(self.labels == label)[0]

    def blocks(self) -> list[np.ndarray]:
        """All blocks as vertex arrays, indexed by label (single sort pass)."""
        order = np.argsort(self.labels, kind="stable")
        boundaries = np.searchsorted(self.labels[order], np.arange(self._n_blocks + 1))
        return [
            order[boundaries[i]:boundaries[i + 1]] for i in range(self._n_blocks)
        ]

    def non_singleton_blocks(self) -> list[np.ndarray]:
        """Blocks with two or more members (candidates for coarsening gains)."""
        sizes = self.block_sizes()
        return [b for b in self.blocks() if sizes[self.labels[b[0]]] > 1]

    # -- lattice operations ------------------------------------------------

    def meet(self, other: "Partition", method: str = "numpy") -> "Partition":
        """The coarsest common refinement ``self ∧ other``.

        Trivial and discrete arguments short-circuit without the packed
        ``np.unique`` scan: ``{V} ∧ Q = Q`` and ``D ∧ Q = D`` for the
        all-singletons partition ``D``.  Every coarsen run hits both — the
        trivial case on the first r-robust round, the discrete case once the
        partition bottoms out.  Partitions are immutable value objects, so
        returning the argument itself is safe.
        """
        if method not in ("numpy", "hash"):
            raise PartitionError(f"unknown meet method {method!r}")
        if self.n != other.n:
            raise PartitionError("partitions must cover the same vertex set")
        with span("partition_meet", n=self.n, method=method):
            inc("partition.meets")
            if self._n_blocks <= 1:
                return other
            if other._n_blocks <= 1:
                return self
            if self._n_blocks == self.n:
                return self
            if other._n_blocks == other.n:
                return other
            if method == "numpy":
                return Partition(meet_labels(self.labels, other.labels),
                                 canonical=True)
            return Partition(meet_labels_hash(self.labels, other.labels),
                             canonical=True)

    def is_refinement_of(self, other: "Partition") -> bool:
        """True when every block of ``self`` lies inside a block of ``other``.

        Equivalent to: within each block of ``self``, the ``other`` label is
        constant.
        """
        if self.n != other.n:
            raise PartitionError("partitions must cover the same vertex set")
        if self.n == 0:
            return True
        return self.meet(other).n_blocks == self.n_blocks

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return np.array_equal(self.labels, other.labels)

    def __hash__(self) -> int:
        return hash(self.labels.tobytes())

    def __repr__(self) -> str:
        return f"Partition(n={self.n}, blocks={self.n_blocks})"
