"""Vertex partitions and the meet operation (Appendix B)."""

from .partition import Partition, meet_all, meet_labels, meet_labels_hash

__all__ = ["Partition", "meet_all", "meet_labels", "meet_labels_hash"]
