"""Binary on-disk edge stores for the sublinear-space implementation.

Algorithm 2 assumes the input influence graph lives on disk as a sequence of
triplets ``<u, v, p_uv>`` that can only be scanned sequentially, and it writes
intermediate random graphs and the coarsened output back to disk.  This module
provides that substrate:

* :class:`TripletStore` — a file of ``(int64 u, int64 v, float64 p)`` records
  with a small header, read and written in fixed-size chunks so that resident
  memory stays O(chunk), never O(m).
* :class:`PairStore` — the same without the probability column, used for the
  sampled live-edge graphs ``D_{G_i}``.

Both stores support append-only writing followed by sequential chunked
reading, which is exactly the access pattern the paper's cost model charges
for.  Read/write byte counts are tracked so benchmarks can report I/O cost.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from ..errors import GraphFormatError

__all__ = ["TripletStore", "PairStore", "DEFAULT_CHUNK_EDGES"]

_MAGIC = b"RPRO"
_VERSION = 1
_HEADER = struct.Struct("<4sHHqq")  # magic, version, has_probs, n, m

DEFAULT_CHUNK_EDGES = 1 << 16
"""Default number of edges per streamed chunk (1 MiB-ish of triplets)."""


class _EdgeStoreBase:
    """Shared machinery for :class:`TripletStore` and :class:`PairStore`."""

    _has_probs: bool

    def __init__(self, path: "str | os.PathLike[str]", n: int, m: int) -> None:
        self.path = os.fspath(path)
        self.n = int(n)
        self.m = int(m)
        self.bytes_read = 0
        self.bytes_written = 0

    # -- writing -------------------------------------------------------

    @classmethod
    def create(cls, path: "str | os.PathLike[str]", n: int) -> "_EdgeStoreBase":
        """Create an empty store for an ``n``-vertex graph, ready to append."""
        store = cls(path, n, 0)
        with open(store.path, "wb") as handle:
            handle.write(store._header_bytes())
        return store

    def _header_bytes(self) -> bytes:
        return _HEADER.pack(_MAGIC, _VERSION, int(self._has_probs), self.n, self.m)

    def _record_dtype(self) -> np.dtype:
        fields = [("u", "<i8"), ("v", "<i8")]
        if self._has_probs:
            fields.append(("p", "<f8"))
        return np.dtype(fields)

    def append(self, tails: np.ndarray, heads: np.ndarray, probs: np.ndarray | None = None) -> None:
        """Append a chunk of edges to the end of the store."""
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        records = np.empty(tails.size, dtype=self._record_dtype())
        records["u"] = tails
        records["v"] = heads
        if self._has_probs:
            if probs is None:
                raise GraphFormatError("this store requires a probability column")
            records["p"] = np.asarray(probs, dtype=np.float64)
        payload = records.tobytes()
        with open(self.path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.write(payload)
            self.m += tails.size
            handle.seek(0)
            handle.write(self._header_bytes())
        self.bytes_written += len(payload)

    # -- reading -------------------------------------------------------

    @classmethod
    def open(cls, path: "str | os.PathLike[str]") -> "_EdgeStoreBase":
        """Open an existing store and parse its header."""
        with open(path, "rb") as handle:
            raw = handle.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise GraphFormatError(f"{path}: truncated header")
        magic, version, has_probs, n, m = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise GraphFormatError(f"{path}: not a repro edge store")
        if version != _VERSION:
            raise GraphFormatError(f"{path}: unsupported version {version}")
        if bool(has_probs) != cls._has_probs:
            raise GraphFormatError(
                f"{path}: store probability layout does not match {cls.__name__}"
            )
        return cls(path, n, m)

    def iter_chunks(self, chunk_edges: int = DEFAULT_CHUNK_EDGES):
        """Yield edge chunks sequentially.

        For :class:`TripletStore` each chunk is ``(tails, heads, probs)``;
        for :class:`PairStore` it is ``(tails, heads)``.  Only one chunk is
        resident at a time.
        """
        dtype = self._record_dtype()
        with open(self.path, "rb") as handle:
            handle.seek(_HEADER.size)
            while True:
                raw = handle.read(chunk_edges * dtype.itemsize)
                if not raw:
                    break
                if len(raw) % dtype.itemsize:
                    raise GraphFormatError(
                        f"{self.path}: truncated edge record "
                        f"(file damaged mid-write?)"
                    )
                self.bytes_read += len(raw)
                records = np.frombuffer(raw, dtype=dtype)
                if self._has_probs:
                    yield records["u"], records["v"], records["p"]
                else:
                    yield records["u"], records["v"]

    def read_all(self) -> tuple[np.ndarray, ...]:
        """Materialise the whole store (tests and small graphs only)."""
        chunks = list(self.iter_chunks())
        width = 3 if self._has_probs else 2
        if not chunks:
            empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
            return empty + ((np.empty(0, dtype=np.float64),) if width == 3 else ())
        return tuple(np.concatenate([c[i] for c in chunks]) for i in range(width))

    def delete(self) -> None:
        """Remove the backing file (ignore if already gone)."""
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass


class TripletStore(_EdgeStoreBase):
    """On-disk ``<u, v, p>`` store — the disk image of an influence graph."""

    _has_probs = True

    @classmethod
    def from_graph(cls, graph, path: "str | os.PathLike[str]",
                   chunk_edges: int = DEFAULT_CHUNK_EDGES) -> "TripletStore":
        """Spill an in-memory :class:`InfluenceGraph` to disk."""
        store = cls.create(path, graph.n)
        tails, heads, probs = graph.edge_arrays()
        for lo in range(0, graph.m, chunk_edges):
            hi = min(lo + chunk_edges, graph.m)
            store.append(tails[lo:hi], heads[lo:hi], probs[lo:hi])
        return store

    def to_graph(self):
        """Load the store into an in-memory graph (tests and small inputs)."""
        from ..graph.influence_graph import InfluenceGraph

        tails, heads, probs = self.read_all()
        return InfluenceGraph.from_edges(self.n, tails, heads, probs)


class PairStore(_EdgeStoreBase):
    """On-disk ``<u, v>`` store — the disk image of a sampled live-edge graph."""

    _has_probs = False
