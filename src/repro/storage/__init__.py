"""On-disk edge stores used by the sublinear-space implementation."""

from .triplet_store import DEFAULT_CHUNK_EDGES, PairStore, TripletStore

__all__ = ["TripletStore", "PairStore", "DEFAULT_CHUNK_EDGES"]
