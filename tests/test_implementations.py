"""Tests for Algorithms 1, 2 and 6 — the three coarsening implementations.

The key property: fed the same random stream, all implementations produce
the *identical* coarsened graph; with different streams they produce graphs
from the same distribution (checked structurally).
"""

import numpy as np
import pytest

from repro.core import (
    coarsen_influence_graph,
    split_rounds,
)
from repro.errors import AlgorithmError, CoarseningError
from repro.storage import TripletStore

from .conftest import random_graph


class TestLinearSpace:
    def test_result_fields(self, paper_graph):
        res = coarsen_influence_graph(paper_graph, r=4, rng=0)
        assert res.coarse.total_weight == 9
        assert res.pi.size == 9
        assert res.stats.r == 4
        assert res.stats.input_edges == 13
        assert res.stats.output_edges == res.coarse.m
        assert 0 < res.stats.vertex_reduction_ratio <= 1.0

    def test_deterministic(self, two_cliques_graph):
        a = coarsen_influence_graph(two_cliques_graph, r=6, rng=11)
        b = coarsen_influence_graph(two_cliques_graph, r=6, rng=11)
        assert a.coarse == b.coarse
        assert np.array_equal(a.pi, b.pi)

    def test_cliques_coarsen(self, two_cliques_graph):
        res = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        assert res.coarse.n == 2
        assert res.coarse.weights.tolist() == [4, 4]
        # the only surviving edge is the 0.2 bridge
        assert res.coarse.m == 1
        assert res.coarse.probs[0] == pytest.approx(0.2)

    def test_map_seeds_and_pull_back(self, two_cliques_graph):
        res = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        coarse_seeds = res.map_seeds(np.array([0, 1, 2]))
        assert coarse_seeds.size == 1  # same block
        back = res.pull_back(coarse_seeds, rng=0)
        assert back.size == 1
        assert res.pi[back[0]] == coarse_seeds[0]

    def test_map_seeds_range_check(self, two_cliques_graph):
        res = coarsen_influence_graph(two_cliques_graph, r=2, rng=0)
        with pytest.raises(CoarseningError):
            res.map_seeds(np.array([99]))

    def test_r_zero_collapses_to_one_vertex(self, paper_graph):
        res = coarsen_influence_graph(paper_graph, r=0, rng=0)
        assert res.coarse.n == 1
        assert res.coarse.m == 0
        assert res.coarse.weights.tolist() == [9]

    def test_validate_mode(self, two_cliques_graph):
        res = coarsen_influence_graph(two_cliques_graph, r=4, rng=0, validate=True)
        assert res.coarse.n == 2


class TestSublinearSpace:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_linear_space_bit_for_bit(self, tmp_path, seed):
        """Same numpy stream => identical output graph and mapping."""
        g = random_graph(30, 150, seed=seed, p_low=0.2, p_high=0.95)
        src = TripletStore.from_graph(g, tmp_path / "g.trip")
        sub = coarsen_influence_graph(src, space="sublinear", out_path=tmp_path / "h.trip", r=5, rng=seed
        )
        lin = coarsen_influence_graph(g, r=5, rng=seed)
        loaded = sub.load()
        assert loaded.coarse == lin.coarse
        assert np.array_equal(loaded.pi, lin.pi)

    def test_chunked_streaming_same_result(self, tmp_path):
        g = random_graph(25, 100, seed=9, p_low=0.3, p_high=0.9)
        src = TripletStore.from_graph(g, tmp_path / "g.trip", chunk_edges=11)
        small = coarsen_influence_graph(src, space="sublinear", out_path=tmp_path / "h1.trip", r=4, rng=5, chunk_edges=7
        )
        src2 = TripletStore.from_graph(g, tmp_path / "g2.trip")
        big = coarsen_influence_graph(src2, space="sublinear", out_path=tmp_path / "h2.trip", r=4, rng=5, chunk_edges=1 << 16
        )
        assert small.load().coarse == big.load().coarse

    def test_sample_stores_cleaned_up(self, tmp_path):
        g = random_graph(10, 30, seed=1)
        src = TripletStore.from_graph(g, tmp_path / "g.trip")
        coarsen_influence_graph(src, space="sublinear", out_path=tmp_path / "h.trip", r=3, rng=0)
        leftovers = [p for p in tmp_path.iterdir() if "live_edge" in p.name]
        assert leftovers == []

    def test_f_prime_stat_reported(self, tmp_path, two_cliques_graph):
        src = TripletStore.from_graph(two_cliques_graph, tmp_path / "g.trip")
        res = coarsen_influence_graph(src, space="sublinear", out_path=tmp_path / "h.trip", r=4, rng=0
        )
        assert "f_prime_edges" in res.stats.extras
        # the bridge edge touches a weight-4 component, so it is in F'
        assert res.stats.extras["f_prime_edges"] >= 1

    def test_negative_r_rejected(self, tmp_path, paper_graph):
        src = TripletStore.from_graph(paper_graph, tmp_path / "g.trip")
        with pytest.raises(CoarseningError):
            coarsen_influence_graph(src, space="sublinear", out_path=tmp_path / "h.trip", r=-1)


class TestParallel:
    def test_split_rounds_balanced(self):
        assert split_rounds(16, 4) == [4, 4, 4, 4]
        assert sum(split_rounds(10, 3)) == 10
        assert max(split_rounds(10, 3)) - min(split_rounds(10, 3)) <= 1

    def test_split_rounds_clamps_surplus_workers(self):
        # workers > r used to spawn zero-sample workers that still drew
        # seeds and occupied pool slots; now the pool shrinks to r.
        assert split_rounds(2, 4) == [1, 1]
        assert split_rounds(3, 16) == [1, 1, 1]
        for r in range(1, 12):
            counts = split_rounds(r, 64)
            assert min(counts) >= 1
            assert sum(counts) == r

    def test_split_rounds_r_zero_keeps_trivial_semantics(self):
        assert split_rounds(0, 4) == [0]

    def test_split_rounds_rejects_zero_workers(self):
        with pytest.raises(AlgorithmError):
            split_rounds(4, 0)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_executors_match_serial(self, two_cliques_graph, executor):
        serial = coarsen_influence_graph(
            two_cliques_graph, r=8, workers=4, rng=3, executor="serial"
        )
        other = coarsen_influence_graph(
            two_cliques_graph, r=8, workers=4, rng=3, executor=executor
        )
        assert serial.coarse == other.coarse
        assert np.array_equal(serial.pi, other.pi)

    def test_process_executor(self, two_cliques_graph):
        serial = coarsen_influence_graph(
            two_cliques_graph, r=4, workers=2, rng=3, executor="serial"
        )
        proc = coarsen_influence_graph(
            two_cliques_graph, r=4, workers=2, rng=3, executor="process"
        )
        assert serial.coarse == proc.coarse

    def test_invalid_executor(self, two_cliques_graph):
        with pytest.raises(CoarseningError):
            coarsen_influence_graph(
                two_cliques_graph, r=4, workers=2, executor="gpu"
            )

    def test_same_distribution_as_sequential(self, two_cliques_graph):
        """Both find the two cliques regardless of parallel split."""
        seq = coarsen_influence_graph(two_cliques_graph, r=8, rng=0)
        par = coarsen_influence_graph(
            two_cliques_graph, r=8, workers=4, rng=0, executor="serial"
        )
        assert seq.coarse.n == par.coarse.n == 2
        assert seq.coarse.weights.tolist() == par.coarse.weights.tolist()

    def test_stats_extras(self, two_cliques_graph):
        res = coarsen_influence_graph(
            two_cliques_graph, r=7, workers=3, rng=0, executor="serial"
        )
        assert res.stats.extras["workers"] == 3
        assert res.stats.extras["requested_workers"] == 3
        assert sum(res.stats.extras["rounds"]) == 7

    def test_worker_clamp_recorded_in_extras(self, two_cliques_graph):
        res = coarsen_influence_graph(
            two_cliques_graph, r=2, workers=8, rng=0, executor="serial"
        )
        assert res.stats.extras["workers"] == 2
        assert res.stats.extras["requested_workers"] == 8
        assert res.stats.extras["rounds"] == [1, 1]

    def test_clamped_pool_matches_exact_pool(self, two_cliques_graph):
        """workers=8 with r=2 is the same run as workers=2 with r=2."""
        clamped = coarsen_influence_graph(
            two_cliques_graph, r=2, workers=8, rng=5, executor="serial"
        )
        exact = coarsen_influence_graph(
            two_cliques_graph, r=2, workers=2, rng=5, executor="serial"
        )
        assert clamped.coarse == exact.coarse
        assert np.array_equal(clamped.pi, exact.pi)

    def test_r_zero_parallel_is_trivial(self, paper_graph):
        res = coarsen_influence_graph(
            paper_graph, r=0, workers=4, rng=0, executor="serial"
        )
        assert res.coarse.n == 1
        assert res.coarse.weights.tolist() == [9]
        assert res.stats.extras["rounds"] == [0]
