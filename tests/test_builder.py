"""Unit tests for GraphBuilder and parallel-edge combination."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import GraphBuilder, combine_parallel_edges


class TestCombineParallelEdges:
    def test_no_duplicates_is_identity(self):
        tails = np.array([0, 1], dtype=np.int64)
        heads = np.array([1, 2], dtype=np.int64)
        probs = np.array([0.3, 0.4])
        t, h, p = combine_parallel_edges(tails, heads, probs)
        assert t.tolist() == [0, 1]
        assert h.tolist() == [1, 2]
        assert p == pytest.approx([0.3, 0.4])

    def test_noisy_or_combination(self):
        tails = np.array([0, 0], dtype=np.int64)
        heads = np.array([1, 1], dtype=np.int64)
        probs = np.array([0.3, 0.2])
        _, _, p = combine_parallel_edges(tails, heads, probs)
        assert p.tolist() == pytest.approx([1 - 0.7 * 0.8])

    def test_probability_one_dominates(self):
        tails = np.array([0, 0], dtype=np.int64)
        heads = np.array([1, 1], dtype=np.int64)
        probs = np.array([1.0, 0.2])
        _, _, p = combine_parallel_edges(tails, heads, probs)
        assert p[0] == pytest.approx(1.0)

    def test_triple_duplicate_matches_brute_force(self):
        probs = np.array([0.1, 0.25, 0.5])
        _, _, p = combine_parallel_edges(
            np.zeros(3, dtype=np.int64), np.ones(3, dtype=np.int64), probs
        )
        assert p[0] == pytest.approx(1 - 0.9 * 0.75 * 0.5)

    def test_empty_input(self):
        empty = np.empty(0, dtype=np.int64)
        t, h, p = combine_parallel_edges(empty, empty, np.empty(0))
        assert t.size == h.size == p.size == 0

    def test_random_against_brute_force(self):
        rng = np.random.default_rng(0)
        tails = rng.integers(0, 4, size=60)
        heads = rng.integers(0, 4, size=60)
        probs = rng.uniform(0.01, 0.99, size=60)
        t, h, p = combine_parallel_edges(tails, heads, probs)
        expected: dict[tuple[int, int], float] = {}
        for u, v, q in zip(tails, heads, probs):
            expected[(u, v)] = expected.get((u, v), 1.0) * (1.0 - q)
        for u, v, q in zip(t, h, p):
            assert q == pytest.approx(1.0 - expected[(int(u), int(v))])
        assert t.size == len(expected)


class TestGraphBuilder:
    def test_drops_self_loops(self):
        b = GraphBuilder(n=3)
        b.add_edge(0, 0, 0.5)
        b.add_edge(0, 1, 0.5)
        g = b.build()
        assert g.m == 1

    def test_infers_vertex_count(self):
        b = GraphBuilder()
        b.add_edge(0, 7, 0.5)
        assert b.build().n == 8

    def test_explicit_vertex_count_kept(self):
        b = GraphBuilder(n=20)
        b.add_edge(0, 1, 0.5)
        assert b.build().n == 20

    def test_undirected_edges_become_bidirected(self):
        b = GraphBuilder(n=2)
        b.add_undirected_edges([0], [1], [0.4])
        g = b.build()
        pairs = set(zip(*g.edge_arrays()[:2]))
        assert pairs == {(0, 1), (1, 0)}

    def test_duplicate_combination_on_build(self):
        b = GraphBuilder(n=2)
        b.add_edge(0, 1, 0.3)
        b.add_edge(0, 1, 0.2)
        g = b.build()
        assert g.m == 1
        assert g.probs[0] == pytest.approx(0.44)

    def test_rejects_invalid_probability(self):
        b = GraphBuilder(n=2)
        b.add_edge(0, 1, 2.0)
        with pytest.raises(GraphFormatError):
            b.build()

    def test_rejects_mismatched_batch(self):
        b = GraphBuilder(n=3)
        with pytest.raises(GraphFormatError):
            b.add_edges([0, 1], [2], [0.5])

    def test_empty_builder(self):
        assert GraphBuilder(n=4).build().m == 0

    def test_weights_passed_through(self):
        b = GraphBuilder(n=2)
        b.add_edge(0, 1, 0.5)
        g = b.build(weights=np.array([2, 3]))
        assert g.total_weight == 5
