"""Tests for live-edge sampling, reachability, and the IC simulator."""

import numpy as np
import pytest

from repro.analysis import exact_influence
from repro.diffusion import (
    SimulationStats,
    estimate_influence,
    gather_ranges,
    reachable_mask,
    reachable_weight,
    sample_live_edge_csr,
    sample_live_edge_mask,
    sample_live_edge_store,
    simulate_ic,
    simulate_ic_once,
)
from repro.errors import AlgorithmError
from repro.graph import InfluenceGraph
from repro.storage import PairStore, TripletStore

from .conftest import build_graph, random_graph


class TestGatherRanges:
    def test_simple(self):
        out = gather_ranges(np.array([0, 5]), np.array([2, 7]))
        assert out.tolist() == [0, 1, 5, 6]

    def test_with_empty_ranges(self):
        out = gather_ranges(np.array([0, 3, 3, 8]), np.array([2, 3, 5, 9]))
        assert out.tolist() == [0, 1, 3, 4, 8]

    def test_all_empty(self):
        assert gather_ranges(np.array([4]), np.array([4])).size == 0

    def test_no_ranges(self):
        empty = np.empty(0, dtype=np.int64)
        assert gather_ranges(empty, empty).size == 0

    def test_random_against_naive(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            starts = rng.integers(0, 50, size=10)
            ends = starts + rng.integers(0, 6, size=10)
            expected = np.concatenate(
                [np.arange(s, e) for s, e in zip(starts, ends)]
            ) if (ends > starts).any() else np.empty(0, dtype=np.int64)
            assert gather_ranges(starts, ends).tolist() == expected.tolist()


class TestReachability:
    def test_chain(self):
        g = build_graph(4, [(0, 1, 1.0), (1, 2, 1.0)])
        mask = reachable_mask(g.indptr, g.heads, np.array([0]))
        assert mask.tolist() == [True, True, True, False]

    def test_weighted_count(self):
        g = InfluenceGraph.from_edges(
            3, np.array([0]), np.array([1]), np.array([1.0]),
            weights=np.array([5, 3, 7]),
        )
        assert reachable_weight(g.indptr, g.heads, np.array([0]), g.weights) == 8.0

    def test_multiple_sources(self):
        g = build_graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert reachable_weight(g.indptr, g.heads, np.array([0, 2])) == 4.0

    def test_cycle(self):
        g = build_graph(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        assert reachable_weight(g.indptr, g.heads, np.array([1])) == 3.0


class TestLiveEdgeSampling:
    def test_probability_one_keeps_everything(self):
        g = build_graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert sample_live_edge_mask(g, rng=0).all()

    def test_mask_statistics(self):
        g = build_graph(2, [(0, 1, 0.3)])
        rng = np.random.default_rng(0)
        hits = sum(sample_live_edge_mask(g, rng)[0] for _ in range(5000))
        assert hits / 5000 == pytest.approx(0.3, abs=0.03)

    def test_csr_consistent_with_mask(self):
        g = random_graph(20, 60, seed=1)
        indptr, heads = sample_live_edge_csr(g, rng=5)
        assert indptr[-1] == heads.size
        assert heads.size <= g.m
        # every sampled edge exists in the original graph
        sampled_tails = np.repeat(np.arange(g.n), np.diff(indptr))
        original = set(zip(*g.edge_arrays()[:2]))
        assert set(zip(sampled_tails.tolist(), heads.tolist())) <= original

    def test_store_sampling_matches_in_memory_stream(self, tmp_path):
        g = random_graph(15, 50, seed=2)
        src = TripletStore.from_graph(g, tmp_path / "g.trip")
        dest = sample_live_edge_store(src, str(tmp_path / "s.pairs"), rng=9)
        indptr, heads = sample_live_edge_csr(g, rng=9)
        tails_mem = np.repeat(np.arange(g.n), np.diff(indptr))
        tails_disk, heads_disk = PairStore.open(dest.path).read_all()
        assert tails_disk.tolist() == tails_mem.tolist()
        assert heads_disk.tolist() == heads.tolist()


class TestSimulator:
    def test_deterministic_graph_equals_reachability(self):
        g = build_graph(5, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        active = simulate_ic_once(g, np.array([0]), rng=0)
        assert active.tolist() == [True, True, True, False, False]

    def test_seed_always_active(self):
        g = build_graph(3, [(0, 1, 0.0001)])
        active = simulate_ic_once(g, np.array([2]), rng=0)
        assert active[2]
        assert active.sum() == 1

    def test_rejects_empty_seed_set(self):
        g = build_graph(2, [(0, 1, 0.5)])
        with pytest.raises(AlgorithmError):
            simulate_ic_once(g, np.array([], dtype=np.int64), rng=0)

    def test_rejects_out_of_range_seed(self):
        g = build_graph(2, [(0, 1, 0.5)])
        with pytest.raises(AlgorithmError):
            simulate_ic_once(g, np.array([7]), rng=0)

    def test_stats_counting(self):
        g = build_graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        stats = SimulationStats()
        simulate_ic(g, np.array([0]), 10, rng=0, stats=stats)
        assert stats.simulations == 10
        assert stats.examined_edges == 20  # both edges examined per run
        assert stats.activations == 30

    def test_weighted_spread(self):
        g = InfluenceGraph.from_edges(
            2, np.array([0]), np.array([1]), np.array([1.0]),
            weights=np.array([4, 6]),
        )
        spreads = simulate_ic(g, np.array([0]), 5, rng=0)
        assert (spreads == 10.0).all()

    def test_estimate_matches_exact_on_tiny_graph(self, paper_graph):
        seeds = np.array([0])
        exact = exact_influence(paper_graph, seeds)
        est = estimate_influence(paper_graph, seeds, n_simulations=30_000, rng=0)
        assert est == pytest.approx(exact, rel=0.03)

    def test_estimate_matches_exact_multi_seed(self):
        g = build_graph(5, [(0, 1, 0.5), (1, 2, 0.4), (3, 2, 0.7), (2, 4, 0.3)])
        seeds = np.array([0, 3])
        exact = exact_influence(g, seeds)
        est = estimate_influence(g, seeds, n_simulations=30_000, rng=1)
        assert est == pytest.approx(exact, rel=0.03)

    def test_duplicate_seeds_equivalent_to_unique(self):
        g = build_graph(3, [(0, 1, 1.0)])
        a = simulate_ic_once(g, np.array([0, 0]), rng=0)
        b = simulate_ic_once(g, np.array([0]), rng=0)
        assert a.tolist() == b.tolist()
