"""The bottom-k influence-oracle suite (``pytest -m sketch``).

Three layers of evidence:

* **Differential** — oracle answers equal the exact live-edge influence
  ``(1/r) sum_i w(R_i(S))`` whenever the merged sketch is complete, and
  stay within the advertised ``sketch_eps(k, delta)`` envelope of it (and
  of an independent RIS estimate) when it is not.  The exact oracle
  reconstructs the realised rounds from :func:`repro.sketch.round_masks`
  at the oracle's own entropy.
* **Properties** — Hypothesis checks answers are invariant under seed-set
  permutation (and duplication), and that determinism holds: one entropy,
  one bit pattern.
* **Serving** — ``ServiceConfig(estimator="sketch")`` routes ``/estimate``
  through a cached oracle whose epoch rebuilds are bit-for-bit cold
  builds, keyed apart from RR pools by the ``ModelKey.state`` dimension.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Delta
from repro.diffusion.reachability import reachable_mask
from repro.errors import AlgorithmError
from repro.estimators import (
    EstimateResult,
    available_estimators,
    estimate_with_report,
    estimator_spec,
    imm_sample_size,
    make_estimator,
)
from repro.graph import InfluenceGraph
from repro.serve import InfluenceService, ServiceConfig
from repro.serve.cache import ModelKey
from repro.sketch import (
    DEFAULT_SKETCH_K,
    InfluenceOracle,
    SketchEstimator,
    round_masks,
    sketch_eps,
)

from .conftest import build_graph, random_graph

pytestmark = pytest.mark.sketch


def exact_live_edge_influence(graph: InfluenceGraph, entropy: int, r: int,
                              seeds) -> float:
    """``(1/r) sum_i w(R_i(seeds))`` over the oracle's own realised rounds."""
    keep = round_masks(graph, entropy, r)
    tails, heads = graph.tails(), graph.heads
    weights = graph.weights.astype(np.float64)
    seeds = np.asarray(seeds, dtype=np.int64)
    total = 0.0
    for i in range(r):
        t, h = tails[keep[i]], heads[keep[i]]
        order = np.argsort(t, kind="stable")
        counts = np.bincount(t, minlength=graph.n)
        indptr = np.zeros(graph.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total += weights[reachable_mask(indptr, h[order], seeds)].sum()
    return total / r


class TestEnvelope:
    def test_exact_when_sketches_complete(self):
        # k = 64 > r * n = 40 items: every sketch is complete, so every
        # answer must equal the exact live-edge influence to the bit.
        g = random_graph(10, 35, seed=3)
        oracle = InfluenceOracle(g, r=4, k=64, rng=0)
        for seeds in ([0], [3, 7], [0, 1, 2, 3], list(range(10))):
            exact = exact_live_edge_influence(g, oracle.entropy, 4, seeds)
            assert oracle.estimate(g, np.asarray(seeds)) == pytest.approx(
                exact, abs=1e-9)

    def test_point_queries_match_estimate(self):
        g = random_graph(30, 120, seed=5)
        oracle = InfluenceOracle(g, r=8, k=16, rng=1)
        for v in range(g.n):
            assert oracle.point(v) == oracle.estimate(g, np.asarray([v]))

    def test_batch_points_match_per_call(self):
        g = random_graph(30, 120, seed=5)
        oracle = InfluenceOracle(g, r=8, k=16, rng=1)
        batch = oracle.points(np.arange(g.n))
        assert batch.tolist() == [oracle.point(v) for v in range(g.n)]
        with pytest.raises(AlgorithmError):
            oracle.points(np.asarray([g.n]))
        with pytest.raises(AlgorithmError):
            oracle.points(np.asarray([], dtype=np.int64))

    def test_within_advertised_envelope_of_exact(self):
        # Saturated sketches (k << reachable items) on a dense graph: every
        # point estimate must sit inside the Chebyshev envelope.  The
        # build is deterministic (fixed rng), so this is a regression
        # pin, not a flaky statistical assertion.
        g = random_graph(60, 600, seed=7)
        r, k, delta = 8, 32, 0.05
        oracle = InfluenceOracle(g, r=r, k=k, rng=2)
        assert oracle.stats.pruned > 0  # sketches actually saturated
        eps = oracle.eps(delta)
        for v in range(g.n):
            exact = exact_live_edge_influence(g, oracle.entropy, r, [v])
            assert abs(oracle.point(v) - exact) <= eps * exact

    def test_seed_set_queries_within_envelope(self):
        g = random_graph(60, 600, seed=11)
        r, k = 8, 32
        oracle = InfluenceOracle(g, r=r, k=k, rng=3)
        rng = np.random.default_rng(0)
        eps = oracle.eps(0.05)
        for _ in range(20):
            seeds = rng.choice(g.n, size=rng.integers(2, 6), replace=False)
            exact = exact_live_edge_influence(g, oracle.entropy, r, seeds)
            assert abs(oracle.estimate(g, seeds) - exact) <= eps * exact

    def test_against_independent_ris(self):
        g = random_graph(50, 400, seed=13)
        oracle = InfluenceOracle(g, r=16, k=64, rng=4)
        ris = make_estimator("ris", n_samples=20_000, rng=5)
        for seeds in ([0], [1, 2], [10, 20, 30]):
            a = oracle.estimate(g, np.asarray(seeds))
            b = ris.estimate(g, np.asarray(seeds))
            # Two independent estimators of the same quantity: their gap
            # is bounded by the sum of the advertised errors.
            tolerance = (oracle.eps(0.05) + 1.0 / np.sqrt(20_000)) * b
            assert abs(a - b) <= tolerance

    def test_sketch_eps_monotone_in_k(self):
        assert sketch_eps(256) < sketch_eps(64) < sketch_eps(8)
        with pytest.raises(AlgorithmError):
            sketch_eps(2)
        with pytest.raises(AlgorithmError):
            sketch_eps(64, delta=0.0)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_permutation_and_duplication_invariance(self, data):
        g = random_graph(25, 100, seed=17)
        oracle = InfluenceOracle(g, r=4, k=8, rng=6)
        seeds = data.draw(st.lists(st.integers(0, g.n - 1), min_size=1,
                                   max_size=6))
        base = oracle.estimate(g, np.asarray(seeds))
        permuted = data.draw(st.permutations(seeds))
        assert oracle.estimate(g, np.asarray(permuted)) == base
        assert oracle.estimate(g, np.asarray(seeds + seeds)) == base

    def test_identical_rebuild(self):
        g = random_graph(30, 150, seed=19)
        a = InfluenceOracle(g, r=8, k=16, rng=21)
        b = InfluenceOracle(g, r=8, k=16, rng=21)
        assert a.entropy == b.entropy
        assert a.state_digest() == b.state_digest()
        assert np.array_equal(a.point_estimates, b.point_estimates)

    def test_identity_binding(self):
        g = random_graph(10, 30, seed=23)
        other = random_graph(10, 30, seed=29)
        oracle = InfluenceOracle(g, r=2, k=8, rng=0)
        with pytest.raises(AlgorithmError, match="bound"):
            oracle.estimate(other, np.asarray([0]))

    def test_input_validation(self):
        g = build_graph(3, [(0, 1, 0.5), (1, 2, 0.5)])
        with pytest.raises(AlgorithmError):
            InfluenceOracle(g, r=0)
        with pytest.raises(AlgorithmError):
            InfluenceOracle(g, r=2, k=2)
        oracle = InfluenceOracle(g, r=2, k=8, rng=0)
        with pytest.raises(AlgorithmError):
            oracle.estimate(g, np.asarray([], dtype=np.int64))
        with pytest.raises(AlgorithmError):
            oracle.estimate(g, np.asarray([3]))
        with pytest.raises(AlgorithmError):
            oracle.point(-1)

    def test_sketch_estimator_rebinds_per_graph(self):
        est = SketchEstimator(r=4, k=8, rng=0)
        g1 = random_graph(12, 40, seed=31)
        g2 = random_graph(12, 40, seed=37)
        v1 = est.estimate(g1, np.asarray([0]))
        first = est.oracle_for(g1)
        assert est.oracle_for(g1) is first  # cached per graph object
        est.estimate(g2, np.asarray([0]))
        assert est.oracle_for(g2) is not first
        assert est.eps(0.05) == sketch_eps(8, 0.05)
        assert v1 >= 0.0


class TestRegistry:
    def test_menu_and_specs(self):
        assert available_estimators() == ("mc", "ris", "imm", "sketch")
        assert available_estimators(serving=True) == ("mc", "ris", "sketch")
        assert estimator_spec("sketch").oracle
        assert estimator_spec("ris").pooled
        with pytest.raises(AlgorithmError, match="choose from"):
            estimator_spec("dmp")

    def test_make_estimator_families(self):
        g = random_graph(20, 80, seed=41)
        seeds = np.asarray([0, 5])
        for family in available_estimators():
            est = make_estimator(family, rng=0)
            assert est.estimate(g, seeds) > 0
        with pytest.raises(AlgorithmError, match="bad options"):
            make_estimator("sketch", bogus=1)
        with pytest.raises(AlgorithmError, match="supports diffusion"):
            make_estimator("sketch", model="lt")

    def test_imm_sample_size(self):
        assert imm_sample_size(0.1, 0.01) >= imm_sample_size(0.3, 0.01)
        with pytest.raises(AlgorithmError):
            imm_sample_size(0.0, 0.1)
        with pytest.raises(AlgorithmError):
            imm_sample_size(0.1, 1.0)

    def test_estimate_with_report_folds_sketch_eps(self, paper_graph):
        from repro.core import coarsen_influence_graph

        result = coarsen_influence_graph(paper_graph, r=4, rng=0)
        out = estimate_with_report(paper_graph, result, [0], rng=0,
                                   estimator="sketch", k=16,
                                   reliability_samples=100)
        assert isinstance(out, EstimateResult)
        assert out.backend == "sketch"
        assert out.extras["advertised_eps"] == pytest.approx(
            sketch_eps(16, 0.05))
        assert out.guarantee_report is not None
        assert (out.guarantee_report.estimation_eps
                == pytest.approx(sketch_eps(16, 0.05)))
        fast = estimate_with_report(paper_graph, result, [0], rng=0,
                                    estimator="sketch", k=16, report=False)
        assert fast.guarantee_report is None
        assert fast.value == out.value  # the report never perturbs the value


class TestModelKeyState:
    def test_state_dimension_separates_artifacts(self):
        key = ModelKey("digest", 4, 0, "fwbw", "serial")
        assert key.state == "model"
        pool, sketch = key.for_state("pool"), key.for_state("sketch")
        assert len({key, pool, sketch}) == 3
        assert len({key.token(), pool.token(), sketch.token()}) == 3
        assert pool.for_state("model") == key
        assert sketch.as_meta()["state"] == "sketch"


class TestServing:
    def _graph(self):
        return random_graph(40, 200, seed=43)

    def test_sketch_estimator_routes_estimate(self):
        g = self._graph()
        with InfluenceService(ServiceConfig(
                r=4, n_samples=500, estimator="sketch", sketch_k=16)) as svc:
            result = svc.estimate(g, [0, 5])
            assert result.extras["estimator"] == "sketch"
            assert result.extras["k"] == 16
            assert result.report is not None  # guarantees ride along
            # The service clamps the advertised eps into [0, 1] for the
            # Framework translation (a relative error above 1 is vacuous).
            assert result.report.estimation_eps == pytest.approx(
                min(1.0, sketch_eps(16, svc.config.sketch_delta)))
            # Deterministic: the same query re-reads the same sketches.
            assert svc.estimate(g, [5, 0]).value == result.value
            stats = svc.stats()
            assert stats["estimator"]["family"] == "sketch"
            assert stats["estimator"]["queries"]["sketch"] == 2
            assert len(stats["estimator"]["oracles"]) == 1
            # /maximize still runs on the RR pool, untouched.
            answer = svc.maximize(g, k=2, n_samples=500)
            assert len(answer.seeds) == 2
            assert len(svc.stats()["pools"]) == 1

    def test_sketch_answer_matches_direct_oracle(self):
        g = self._graph()
        config = ServiceConfig(r=4, estimator="sketch", sketch_k=16)
        with InfluenceService(config) as svc:
            served = svc.estimate(g, [1, 2]).value
            model = svc.model_for(g)
        oracle = InfluenceOracle(model.coarse, r=config.r, k=16,
                                 rng=np.random.default_rng(config.seed))
        mapped = np.unique(model.pi[np.asarray([1, 2])])
        assert served == oracle.estimate(model.coarse, mapped)

    def test_family_counters_per_query(self):
        g = self._graph()
        with InfluenceService(ServiceConfig(r=4, n_samples=300)) as svc:
            svc.estimate(g, [0])
            assert svc.stats()["estimator"]["queries"] == {"ris": 1}
        with InfluenceService(ServiceConfig(
                r=4, n_samples=50, min_samples=50, estimator="mc")) as svc:
            result = svc.estimate(g, [0])
            assert result.extras["estimator"] == "mc"
            assert svc.stats()["estimator"]["queries"] == {"mc": 1}

    def test_config_validation(self):
        with pytest.raises(ValueError, match="estimator"):
            ServiceConfig(estimator="imm")
        with pytest.raises(ValueError, match="sketch_k"):
            ServiceConfig(sketch_k=2)
        with pytest.raises(ValueError, match="sketch_delta"):
            ServiceConfig(sketch_delta=1.5)

    @staticmethod
    def _absent_pair(g):
        """A vertex pair with no edge in either direction."""
        present = set(zip(g.tails().tolist(), g.heads.tolist()))
        for u in range(g.n):
            for v in range(u + 1, g.n):
                if (u, v) not in present and (v, u) not in present:
                    return u, v
        raise AssertionError("graph is complete")

    def test_epoch_publish_rebuilds_bit_for_bit(self):
        # A delta that changes the coarse graph must invalidate the
        # oracle; the rebuilt oracle must equal a cold build on the new
        # model exactly (state digests compare every sketch byte).
        g = random_graph(30, 120, seed=47)
        config = ServiceConfig(r=4, sampler="addressable",
                               estimator="sketch", sketch_k=16)
        with InfluenceService(config) as svc:
            dynamic = svc.attach_dynamic(g)
            svc.estimate(dynamic.graph, [0])
            before = list(svc._oracles.values())[0].oracle
            u, v = self._absent_pair(g)
            summary = dynamic.apply_deltas([Delta("insert", u, v, 0.9),
                                            Delta("insert", v, u, 0.9)])
            after_graph = dynamic.graph
            svc.estimate(after_graph, [0])
            states = list(svc._oracles.values())
            assert len(states) == 1
            after = states[0].oracle
            if not summary["model_retained"]:
                assert after is not before
            # Cold-build comparison at the new epoch.
            cold_service = InfluenceService(config)
            cold_model = cold_service.model_for(after_graph)
            cold = InfluenceOracle(
                cold_model.coarse, r=config.r, k=config.sketch_k,
                rng=np.random.default_rng(config.seed),
            )
            assert after.state_digest() == cold.state_digest()
            cold_service.close()

    def test_retained_epoch_keeps_oracle_and_restates_report(self):
        # A near-no-op delta retained by the dynamic coarsener must NOT
        # pay an oracle rebuild — the binding moves to the new key.
        g = random_graph(30, 120, seed=53)
        config = ServiceConfig(r=4, sampler="addressable",
                               estimator="sketch", sketch_k=16)
        with InfluenceService(config) as svc:
            dynamic = svc.attach_dynamic(g)
            svc.estimate(dynamic.graph, [0])
            before = list(svc._oracles.values())[0].oracle
            u, v = self._absent_pair(g)
            summary = dynamic.apply_deltas([Delta("insert", u, v, 1e-6)])
            svc.estimate(dynamic.graph, [0])
            after = list(svc._oracles.values())[0].oracle
            if summary["model_retained"]:
                assert after is before


class TestDeprecationSurface:
    def test_registry_paths_warning_free(self):
        g = build_graph(3, [(0, 1, 0.5), (1, 2, 0.5)])
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_estimator("sketch", r=2, k=8, rng=0).estimate(
                g, np.asarray([0]))
            with InfluenceService(ServiceConfig(
                    r=2, estimator="sketch", sketch_k=8)) as svc:
                svc.estimate(g, [0])
