"""Differential determinism: one seed, one answer, across implementations.

The repo carries several interchangeable components — SCC backends
(``tarjan`` / ``kosaraju``) and two coarsening algorithms (Algorithm 1
in-memory, Algorithm 2 disk-streaming).  All of them consume the same
live-edge sample stream, so with a fixed seed they must produce *identical*
partitions and *identical* coarse edge weights ``q`` — not merely
statistically close ones.  Any divergence means a backend reordered or
re-drew randomness, which would silently invalidate every cross-backend
comparison in the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import coarsen_influence_graph
from repro.storage import TripletStore

from .conftest import random_graph

SEEDS = (0, 7, 123)


def q_weight_map(graph) -> dict[tuple[int, int], float]:
    tails, heads, probs = graph.edge_arrays()
    return {
        (int(u), int(v)): float(p)
        for u, v, p in zip(tails.tolist(), heads.tolist(), probs.tolist())
    }


def assert_same_q(left: dict, right: dict) -> None:
    assert left.keys() == right.keys()
    for edge, p in left.items():
        assert right[edge] == pytest.approx(p, abs=1e-12), edge


class TestSccBackends:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tarjan_kosaraju_identical(self, seed):
        graph = random_graph(n=80, m=400, seed=seed, p_low=0.05, p_high=0.9)
        results = {
            backend: coarsen_influence_graph(
                graph, r=6, rng=seed, scc_backend=backend
            )
            for backend in ("tarjan", "kosaraju")
        }
        tarjan, kosaraju = results["tarjan"], results["kosaraju"]
        assert np.array_equal(tarjan.pi, kosaraju.pi)
        assert tarjan.partition == kosaraju.partition
        assert_same_q(q_weight_map(tarjan.coarse), q_weight_map(kosaraju.coarse))
        assert np.array_equal(tarjan.coarse.weights, kosaraju.coarse.weights)


class TestAlgorithm1VsAlgorithm2:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("r", (1, 4, 8))
    def test_linear_vs_sublinear_identical(self, tmp_path, seed, r):
        graph = random_graph(n=70, m=350, seed=seed, p_low=0.05, p_high=0.9)
        lin = coarsen_influence_graph(graph, r=r, rng=seed)

        src = TripletStore.from_graph(graph, str(tmp_path / "g.trip"))
        sub = coarsen_influence_graph(src, space="sublinear", out_path=str(tmp_path / "h.trip"), r=r, rng=seed,
            work_dir=str(tmp_path),
        )

        assert np.array_equal(lin.pi, sub.pi)
        assert lin.partition == sub.partition
        assert np.array_equal(lin.coarse.weights, sub.weights)
        assert_same_q(q_weight_map(lin.coarse), q_weight_map(sub.store.to_graph()))

    def test_small_chunks_do_not_change_the_answer(self, tmp_path):
        """Chunked streaming draws the same RNG stream as one bulk draw."""
        graph = random_graph(n=60, m=300, seed=5, p_low=0.1, p_high=0.8)
        lin = coarsen_influence_graph(graph, r=4, rng=5)
        src = TripletStore.from_graph(graph, str(tmp_path / "g.trip"))
        sub = coarsen_influence_graph(src, space="sublinear", out_path=str(tmp_path / "h.trip"), r=4, rng=5,
            work_dir=str(tmp_path), chunk_edges=17,
        )
        assert np.array_equal(lin.pi, sub.pi)
        assert_same_q(q_weight_map(lin.coarse), q_weight_map(sub.store.to_graph()))


class TestRunToRun:
    def test_same_seed_same_answer_twice(self):
        graph = random_graph(n=90, m=450, seed=11)
        first = coarsen_influence_graph(graph, r=8, rng=42)
        second = coarsen_influence_graph(graph, r=8, rng=42)
        assert np.array_equal(first.pi, second.pi)
        assert_same_q(q_weight_map(first.coarse), q_weight_map(second.coarse))

    def test_different_seeds_usually_differ(self):
        # sanity check that the differential tests are not vacuous
        graph = random_graph(n=90, m=450, seed=11)
        a = coarsen_influence_graph(graph, r=2, rng=1)
        b = coarsen_influence_graph(graph, r=2, rng=2)
        assert not np.array_equal(a.pi, b.pi) or a.coarse.m != b.coarse.m
