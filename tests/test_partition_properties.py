"""Property-based sweep for the partition lattice (`partition/partition.py`).

Complements ``test_properties.py`` with the algebraic laws the r-robust SCC
construction leans on (Theorem 4.11 builds ``P_r`` as a fold of meets, so
associativity/commutativity are correctness-critical, not cosmetic) and with
the degenerate shapes the strategies there never hit: empty carriers,
single-block partitions, and all-singleton partitions.

"Up to relabeling" is exact equality here: :class:`Partition` canonicalises
labels by first occurrence, so equal block structures compare equal.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import Partition, meet_labels, meet_labels_hash


@st.composite
def label_arrays(draw, size: "int | None" = None, max_label: int = 8):
    """Random (non-canonical) label arrays, empty allowed."""
    n = size if size is not None else draw(st.integers(0, 40))
    return np.asarray(
        draw(st.lists(st.integers(0, max_label), min_size=n, max_size=n)),
        dtype=np.int64,
    )


@st.composite
def partition_triples(draw, max_n: int = 30):
    """Three partitions over one shared carrier (empty carriers allowed)."""
    n = draw(st.integers(0, max_n))
    return tuple(Partition(draw(label_arrays(size=n))) for _ in range(3))


class TestMeetLaws:
    @given(partition_triples())
    @settings(max_examples=80, deadline=None)
    def test_idempotent(self, parts):
        p, _, _ = parts
        assert p.meet(p) == p

    @given(partition_triples())
    @settings(max_examples=80, deadline=None)
    def test_commutative(self, parts):
        p, q, _ = parts
        assert p.meet(q) == q.meet(p)

    @given(partition_triples())
    @settings(max_examples=80, deadline=None)
    def test_associative(self, parts):
        p, q, s = parts
        assert p.meet(q).meet(s) == p.meet(q.meet(s))

    @given(partition_triples())
    @settings(max_examples=80, deadline=None)
    def test_refines_both_arguments(self, parts):
        p, q, _ = parts
        m = p.meet(q)
        assert m.is_refinement_of(p)
        assert m.is_refinement_of(q)

    @given(partition_triples())
    @settings(max_examples=60, deadline=None)
    def test_identity_and_absorbing_elements(self, parts):
        p, _, _ = parts
        trivial = Partition.trivial(p.n)
        singletons = Partition.singletons(p.n)
        assert p.meet(trivial) == p  # {V} is the meet identity
        assert p.meet(singletons) == singletons  # singletons absorb


class TestMeetImplementationsAgree:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_numpy_equals_hash_on_random_labels(self, data):
        n = data.draw(st.integers(0, 40))
        a = data.draw(label_arrays(size=n))
        b = data.draw(label_arrays(size=n))
        assert np.array_equal(meet_labels(a, b), meet_labels_hash(a, b))

    def test_empty(self):
        empty = np.asarray([], dtype=np.int64)
        assert meet_labels(empty, empty).size == 0
        assert meet_labels_hash(empty, empty).size == 0
        assert Partition(empty).meet(Partition(empty)).n_blocks == 0

    @given(st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_single_block(self, n):
        one = np.zeros(n, dtype=np.int64)
        assert np.array_equal(meet_labels(one, one), meet_labels_hash(one, one))
        assert Partition(one).meet(Partition(one)).n_blocks == 1

    @given(st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_all_singletons(self, n):
        fine = np.arange(n, dtype=np.int64)
        one = np.zeros(n, dtype=np.int64)
        assert np.array_equal(meet_labels(fine, one), meet_labels_hash(fine, one))
        assert Partition(fine).meet(Partition(one)) == Partition(fine)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_agreement_survives_relabeling(self, data):
        """Permuting input label ids never changes the canonical meet."""
        n = data.draw(st.integers(1, 30))
        a = data.draw(label_arrays(size=n))
        b = data.draw(label_arrays(size=n))
        # shift + reverse label ids: same blocks, different names
        a_relabeled = (a.max() - a) + data.draw(st.integers(0, 5))
        expected = Partition(meet_labels(a, b))
        assert Partition(meet_labels(a_relabeled, b)) == expected
        assert Partition(meet_labels_hash(a_relabeled, b)) == expected

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_partition_meet_methods_agree(self, data):
        n = data.draw(st.integers(0, 30))
        p = Partition(data.draw(label_arrays(size=n)))
        q = Partition(data.draw(label_arrays(size=n)))
        assert p.meet(q, method="numpy") == p.meet(q, method="hash")
