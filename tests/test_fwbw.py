"""Tests for the vectorised FW-BW SCC kernel (`scc/fwbw.py`) and the
block-restricted refinement mode it enables.

Three layers of evidence:

* differential — fwbw must produce the identical canonical partition as the
  reference backends on fixed-seed random graphs, including shapes chosen to
  force every internal path (trim cascades, deep decomposition, the
  coloring phase, domain compaction, the int32 index domain);
* property-based — on arbitrary small digraphs, the fwbw labels must be
  exactly the mutual-reachability equivalence classes (checked against an
  independently computed boolean transitive closure, not another SCC
  implementation);
* refinement regression — the block-restricted mode must fold to the same
  r-robust partition as full recomputation (the restriction is exact, not a
  heuristic), while masking a nonzero amount of per-round work once the
  running meet accumulates singletons.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import robust_scc_partition
from repro.diffusion import sample_live_edge_csr
from repro.errors import AlgorithmError
from repro.partition import Partition
from repro.scc import scc_labels
from repro.scc.fwbw import FwbwStats, fwbw_scc_labels

from .conftest import random_graph

REFERENCE_BACKENDS = ("tarjan", "kosaraju", "scipy")


def csr(n, tails, heads):
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    order = np.lexsort((heads, tails))
    tails, heads = tails[order], heads[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(tails, minlength=n), out=indptr[1:])
    return indptr, heads


def reachability(n, tails, heads):
    """Boolean transitive closure by repeated squaring (small n only)."""
    adj = np.eye(n, dtype=bool)
    adj[tails, heads] = True
    while True:
        nxt = adj @ adj
        if (nxt == adj).all():
            return adj
        adj = nxt


class TestDifferential:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_references_on_random_graphs(self, seed):
        g = random_graph(60, 200, seed=seed)
        ours = Partition(scc_labels(g.indptr, g.heads, backend="fwbw"))
        for backend in REFERENCE_BACKENDS:
            ref = Partition(scc_labels(g.indptr, g.heads, backend=backend))
            assert ours == ref, backend

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_on_live_edge_samples(self, seed):
        g = random_graph(300, 1500, seed=40 + seed)
        indptr, heads = sample_live_edge_csr(g, rng=seed)
        ours = Partition(scc_labels(indptr, heads, backend="fwbw"))
        ref = Partition(scc_labels(indptr, heads, backend="tarjan"))
        assert ours == ref

    @pytest.mark.parametrize("seed", range(6))
    def test_coloring_path_many_two_cycles(self, seed):
        # Dense reciprocal structure fragments FW-BW into many parts, which
        # is exactly what triggers the multistep coloring phase.
        rng = np.random.default_rng(seed)
        n = 400
        t = rng.integers(0, n, 900)
        h = rng.integers(0, n, 900)
        keep = t != h
        t, h = t[keep], h[keep]
        tails = np.concatenate([t, h])
        heads = np.concatenate([h, t])
        uniq = np.unique(tails * n + heads)
        indptr, heads = csr(n, uniq // n, uniq % n)
        ours = Partition(scc_labels(indptr, heads, backend="fwbw"))
        ref = Partition(scc_labels(indptr, heads, backend="tarjan"))
        assert ours == ref

    def test_deep_chain_forces_trim_cascade(self):
        n = 30_000
        tails = np.arange(n - 1)
        heads = np.arange(1, n)
        indptr, heads = csr(n, tails, heads)
        labels = scc_labels(indptr, heads, backend="fwbw")
        assert len(set(labels.tolist())) == n

    def test_long_cycle_single_component(self):
        n = 20_000
        tails = np.arange(n)
        heads = (np.arange(n) + 1) % n
        indptr, heads = csr(n, tails, heads)
        assert set(scc_labels(indptr, heads, backend="fwbw").tolist()) == {0}

    def test_large_graph_int32_domain(self):
        # Past the size gate the kernel runs on int32 indices; same answer.
        g = random_graph(40_000, 240_000, seed=7)
        ours = Partition(scc_labels(g.indptr, g.heads, backend="fwbw"))
        ref = Partition(scc_labels(g.indptr, g.heads, backend="scipy"))
        assert ours == ref

    def test_stats_shape(self):
        g = random_graph(100, 400, seed=3)
        labels, stats = fwbw_scc_labels(g.indptr, g.heads, return_stats=True)
        assert isinstance(stats, FwbwStats)
        assert stats.rounds >= 1
        assert stats.processed_edges > 0
        assert stats.masked_edges == 0  # no blocks given, nothing to mask
        assert labels.size == g.n


class TestProperty:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_labels_are_mutual_reachability_classes(self, data):
        n = data.draw(st.integers(1, 24), label="n")
        m = data.draw(st.integers(0, 80), label="m")
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=m, max_size=m,
            ),
            label="edges",
        )
        pairs = sorted({(u, v) for u, v in pairs if u != v})
        tails = [u for u, _ in pairs]
        heads = [v for _, v in pairs]
        indptr, h = csr(n, tails, heads)
        labels = fwbw_scc_labels(indptr, h)
        reach = reachability(n, np.asarray(tails, dtype=np.int64),
                             np.asarray(heads, dtype=np.int64))
        mutual = reach & reach.T
        same = labels[:, None] == labels[None, :]
        assert (same == mutual).all()

    def test_empty_graph(self):
        indptr = np.zeros(1, dtype=np.int64)
        labels = fwbw_scc_labels(indptr, np.empty(0, dtype=np.int64))
        assert labels.size == 0

    def test_edgeless_graph(self):
        indptr = np.zeros(6, dtype=np.int64)
        labels = fwbw_scc_labels(indptr, np.empty(0, dtype=np.int64))
        assert len(set(labels.tolist())) == 5


class TestRefinement:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("r", [3, 8])
    def test_refined_fold_matches_full_recomputation(self, seed, r):
        g = random_graph(80, 320, seed=seed, p_low=0.1, p_high=0.6)
        refined = robust_scc_partition(g, r, rng=seed, scc_backend="fwbw",
                                       refine=True)
        full = robust_scc_partition(g, r, rng=seed, scc_backend="fwbw",
                                    refine=False)
        tarjan = robust_scc_partition(g, r, rng=seed, scc_backend="tarjan")
        assert refined == full == tarjan

    def test_block_labels_exactness_on_adversarial_conduits(self):
        # The counterexample from docs/performance.md: u, v share a block, w
        # is a frozen singleton, and the only sample cycle through u and v
        # runs via w.  A naive same-block edge mask would split {u, v}; the
        # retirement rule must keep them together.
        u, w, v = 0, 1, 2
        indptr, heads = csr(3, [u, w, v], [w, v, u])
        blocks = np.array([0, 1, 0], dtype=np.int64)  # w is a singleton
        labels = fwbw_scc_labels(indptr, heads, block_labels=blocks)
        meet = Partition(labels).meet(Partition(blocks))
        assert meet.labels[u] == meet.labels[v]

    def test_frozen_only_input_short_circuits(self):
        # Every vertex a singleton block: labels are irrelevant to the meet,
        # so the kernel may retire everything; the result must still be a
        # partition whose meet with the blocks is all singletons.
        g = random_graph(50, 200, seed=11)
        blocks = np.arange(g.n, dtype=np.int64)
        labels, stats = fwbw_scc_labels(g.indptr, g.heads,
                                        block_labels=blocks,
                                        return_stats=True)
        meet = Partition(labels).meet(Partition(blocks))
        assert meet.n_blocks == g.n
        assert stats.frozen_vertices == g.n

    def test_masked_edges_reduce_processed_work(self):
        # Fold identical samples with and without the block restriction:
        # the restricted fold must process strictly fewer edges in total
        # and report the difference through masked_edges.
        g = random_graph(600, 3000, seed=5, p_low=0.05, p_high=0.4)
        rng = np.random.default_rng(0)
        samples = [sample_live_edge_csr(g, rng) for _ in range(10)]
        totals = {}
        for use_blocks in (True, False):
            partition = Partition.trivial(g.n)
            processed = masked = 0
            for i, (indptr, heads) in enumerate(samples):
                blocks = partition.labels if use_blocks and i else None
                labels, stats = fwbw_scc_labels(indptr, heads,
                                                block_labels=blocks,
                                                return_stats=True)
                processed += stats.processed_edges
                masked += stats.masked_edges
                partition = partition.meet(
                    Partition(labels, canonical=False))
            totals[use_blocks] = (processed, masked, partition)
        assert totals[True][2] == totals[False][2]
        assert totals[True][1] > 0  # refinement masked real work...
        assert totals[True][0] < totals[False][0]  # ...and processed less
        assert totals[False][1] == 0

    def test_counters_flow_through_obs(self):
        g = random_graph(600, 3000, seed=5, p_low=0.05, p_high=0.4)
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            robust_scc_partition(g, 10, rng=0, scc_backend="fwbw",
                                 refine=True)
        assert registry.counter("scc.frozen_vertices") > 0
        assert registry.counter("scc.masked_edges") > 0

    def test_refine_requires_fwbw(self):
        g = random_graph(20, 60, seed=0)
        with pytest.raises(AlgorithmError, match="refine"):
            robust_scc_partition(g, 2, rng=0, scc_backend="tarjan",
                                 refine=True)


class TestMeetFastPaths:
    def test_trivial_meet_returns_other(self):
        q = Partition(np.array([0, 1, 0, 2], dtype=np.int64))
        assert Partition.trivial(4).meet(q) is q
        assert q.meet(Partition.trivial(4)) is q

    def test_singletons_meet_returns_singletons(self):
        d = Partition.singletons(4)
        q = Partition(np.array([0, 1, 0, 2], dtype=np.int64))
        assert d.meet(q) is d
        assert q.meet(d) is d

    def test_fast_paths_match_hash_meet(self):
        # The short-circuits must agree with the reference hash meet.
        rng = np.random.default_rng(0)
        q = Partition(rng.integers(0, 5, 30).astype(np.int64))
        for special in (Partition.trivial(30), Partition.singletons(30)):
            assert special.meet(q) == q.meet(special, method="hash")

    def test_mismatched_sizes_still_raise(self):
        from repro.errors import PartitionError
        with pytest.raises(PartitionError):
            Partition.trivial(3).meet(Partition.trivial(4))
