"""Tests for dynamic updates (Algorithm 7).

The master property: after any sequence of insertions and deletions, the
incrementally maintained coarsening equals a from-scratch recomputation over
the same live-edge samples.
"""

import numpy as np
import pytest

from repro.core import Delta, DynamicCoarsener, coarsen_addressable
from repro.errors import CoarseningError
from repro.graph import InfluenceGraph

from .conftest import build_graph, random_graph


def assert_matches_reference(dyn: DynamicCoarsener) -> None:
    snap = dyn.snapshot()
    ref = dyn.reference_coarsening()
    assert snap.partition == ref.partition
    assert np.array_equal(snap.pi, ref.pi)
    assert snap.coarse == ref.coarse


class TestConstruction:
    def test_initial_state_matches_reference(self, two_cliques_graph):
        dyn = DynamicCoarsener(two_cliques_graph, r=4, rng=0)
        assert_matches_reference(dyn)

    def test_rejects_weighted_input(self):
        g = InfluenceGraph.from_edges(
            2, np.array([0]), np.array([1]), np.array([0.5]),
            weights=np.array([2, 2]),
        )
        with pytest.raises(CoarseningError):
            DynamicCoarsener(g, r=2, rng=0)

    def test_current_graph_round_trip(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=2, rng=0)
        assert dyn.current_graph() == paper_graph


class TestInsert:
    def test_insert_updates_graph(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=4, rng=0)
        dyn.insert_edge(0, 8, 0.25)
        g = dyn.current_graph()
        assert g.m == 14
        assert_matches_reference(dyn)

    def test_insert_duplicate_rejected(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=2, rng=0)
        with pytest.raises(CoarseningError, match="already"):
            dyn.insert_edge(0, 1, 0.5)

    def test_insert_self_loop_rejected(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=2, rng=0)
        with pytest.raises(CoarseningError):
            dyn.insert_edge(3, 3, 0.5)

    def test_insert_bad_probability_rejected(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=2, rng=0)
        with pytest.raises(CoarseningError):
            dyn.insert_edge(0, 8, 1.5)

    def test_low_probability_insert_prunes_scc_work(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=16, rng=0)
        before = dyn.stats.scc_recomputations
        dyn.insert_edge(0, 8, 0.01)
        # With p = 0.01, almost all 16 sample updates are coin-flip skips.
        assert dyn.stats.scc_recomputations - before <= 3
        assert_matches_reference(dyn)


class TestDelete:
    def test_delete_updates_graph(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=4, rng=0)
        dyn.delete_edge(0, 1)
        assert dyn.current_graph().m == 12
        assert_matches_reference(dyn)

    def test_delete_missing_rejected(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=2, rng=0)
        with pytest.raises(CoarseningError, match="not present"):
            dyn.delete_edge(0, 8)

    def test_insert_then_delete_roundtrip(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=4, rng=1)
        dyn.insert_edge(6, 0, 0.35)
        dyn.delete_edge(6, 0)
        assert dyn.current_graph() == paper_graph
        assert_matches_reference(dyn)

    def test_delete_bundled_edge_updates_q(self, two_cliques_graph):
        """Deleting one edge of a coarse bundle divides it out of q."""
        dyn = DynamicCoarsener(two_cliques_graph, r=4, rng=0)
        # insert a second bridge between the cliques, then delete the first
        dyn.insert_edge(2, 6, 0.3)
        dyn.delete_edge(1, 5)
        assert_matches_reference(dyn)

    def test_delete_probability_one_edge(self):
        g = build_graph(3, [(0, 1, 1.0), (0, 2, 0.5)])
        dyn = DynamicCoarsener(g, r=3, rng=0)
        dyn.delete_edge(0, 1)
        assert_matches_reference(dyn)


class TestRandomisedSequences:
    @pytest.mark.parametrize("seed", range(4))
    def test_long_mixed_sequence_matches_reference(self, seed):
        g = random_graph(15, 40, seed=seed, p_low=0.2, p_high=0.9)
        dyn = DynamicCoarsener(g, r=5, rng=seed)
        rng = np.random.default_rng(seed + 100)
        for step in range(25):
            existing = dyn.edge_list()
            if existing and rng.random() < 0.45:
                u, v = existing[rng.integers(len(existing))]
                dyn.delete_edge(u, v)
            else:
                u = int(rng.integers(15))
                v = int(rng.integers(15))
                if u == v or dyn.has_edge(u, v):
                    continue
                dyn.insert_edge(u, v, float(rng.uniform(0.1, 0.95)))
            if step % 5 == 4:
                assert_matches_reference(dyn)
        assert_matches_reference(dyn)
        assert dyn.stats.insertions + dyn.stats.deletions > 0

    def test_stats_accounting(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=8, rng=0)
        dyn.insert_edge(0, 8, 0.5)
        dyn.delete_edge(0, 8)
        s = dyn.stats
        assert s.insertions == 1
        assert s.deletions == 1
        assert s.scc_recomputations + s.scc_skipped == 2 * 8
        assert s.full_rebuilds + s.fast_updates == 2


class TestBundleRecompute:
    def test_delete_probability_one_edge_from_multi_edge_bundle(self):
        """Regression: deleting a p=1 edge whose coarse bundle has other
        members must recompute the bundle WITHOUT the deleted edge.

        Construct a reliable 2-block coarsening {0,1} and {2,3} with two
        parallel original edges 0->2 (p=1) and 1->3 (p=0.4) in the same
        coarse bundle; delete the p=1 edge and compare with a reference
        recomputation.
        """
        from repro.graph import GraphBuilder

        builder = GraphBuilder(n=4)
        builder.add_edges([0, 1, 2, 3], [1, 0, 3, 2], [1.0] * 4)  # two 2-cycles
        builder.add_edge(0, 2, 1.0)
        builder.add_edge(1, 3, 0.4)
        g = builder.build()
        dyn = DynamicCoarsener(g, r=4, rng=0)
        snap = dyn.snapshot()
        assert snap.coarse.n == 2  # the two p=1 cycles merged
        dyn.delete_edge(0, 2)
        assert_matches_reference(dyn)
        # the bundle must now carry exactly the surviving edge's probability
        q = {tuple(map(int, e[:2])): float(e[2])
             for e in zip(*dyn.snapshot().coarse.edge_arrays())}
        assert list(q.values()) == pytest.approx([0.4])

    @staticmethod
    def _two_triangles_with_bridge():
        """Two reliable 3-cycles linked by one probabilistic bridge.

        Every live-edge sample keeps all p=1 edges, so the coarsening is
        always the two triangle blocks with a single coarse bundle
        carrying the bridge — a fixed stage on which bundle arithmetic can
        be exercised in isolation (cross-block inserts never change SCCs).
        """
        return build_graph(6, [
            (0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0),
            (3, 4, 1.0), (4, 5, 1.0), (5, 3, 1.0),
            (0, 3, 0.4),
        ])

    @pytest.mark.parametrize("p", [0.7, 1.0, 0.3])
    def test_thousand_insert_delete_roundtrips_never_drift_q(self, p):
        """Regression: exact member tracking — q is recomputed from the
        bundle's member multiset, never divided out, so repeated
        insert/delete of the same edge is bit-for-bit idempotent even for
        p values (like 1.0) where division would be catastrophic."""
        g = self._two_triangles_with_bridge()
        dyn = DynamicCoarsener(g, r=4, rng=0)
        baseline = dyn.snapshot().coarse.probs.copy()
        for _ in range(1000):
            dyn.insert_edge(1, 4, p)
            dyn.delete_edge(1, 4)
        after = dyn.snapshot().coarse.probs
        assert np.array_equal(after, baseline)
        assert_matches_reference(dyn)

    def test_roundtrip_drift_free_under_addressable_coins(self):
        g = self._two_triangles_with_bridge()
        dyn = DynamicCoarsener(g, r=4, rng=0, coins="addressable")
        baseline = dyn.snapshot().coarse.digest()
        for _ in range(1000):
            dyn.insert_edge(2, 5, 0.7)
            dyn.delete_edge(2, 5)
        assert dyn.snapshot().coarse.digest() == baseline
        cold = coarsen_addressable(dyn.current_graph(), r=4, seed=0)
        assert dyn.snapshot().coarse.digest() == cold.coarse.digest()

    def test_bundle_becomes_saturated_and_recovers(self):
        """A p=1 member saturates q to exactly 1.0; removing it restores
        the exact prior value (impossible with multiply/divide tracking)."""
        g = self._two_triangles_with_bridge()
        dyn = DynamicCoarsener(g, r=4, rng=0)
        before = dyn.snapshot().coarse.probs.copy()
        dyn.insert_edge(1, 4, 1.0)
        assert dyn.snapshot().coarse.probs.max() == 1.0
        dyn.delete_edge(1, 4)
        assert np.array_equal(dyn.snapshot().coarse.probs, before)


class TestAddressableCoins:
    @pytest.mark.parametrize("seed", range(3))
    def test_initial_state_equals_cold_construction(self, seed):
        g = random_graph(20, 60, seed=seed, p_low=0.1, p_high=0.95)
        dyn = DynamicCoarsener(g, r=5, rng=seed, coins="addressable")
        cold = coarsen_addressable(g, r=5, seed=seed)
        snap = dyn.snapshot()
        assert snap.coarse.digest() == cold.coarse.digest()
        assert np.array_equal(snap.pi, cold.pi)
        assert snap.partition == cold.partition

    def test_mutations_track_cold_construction_bit_for_bit(self):
        g = random_graph(15, 40, seed=2, p_low=0.2, p_high=0.9)
        dyn = DynamicCoarsener(g, r=4, rng=7, coins="addressable")
        rng = np.random.default_rng(0)
        for _ in range(20):
            existing = dyn.edge_list()
            if existing and rng.random() < 0.45:
                u, v = existing[rng.integers(len(existing))]
                dyn.delete_edge(u, v)
            else:
                u, v = int(rng.integers(15)), int(rng.integers(15))
                if u == v or dyn.has_edge(u, v):
                    continue
                dyn.insert_edge(u, v, float(rng.uniform(0.1, 0.95)))
            cold = coarsen_addressable(dyn.current_graph(), r=4, seed=7)
            snap = dyn.snapshot()
            assert snap.coarse.digest() == cold.coarse.digest()
            assert np.array_equal(snap.pi, cold.pi)

    def test_requires_integer_seed(self, paper_graph):
        with pytest.raises(CoarseningError, match="integer seed"):
            DynamicCoarsener(paper_graph, r=2,
                             rng=np.random.default_rng(0),
                             coins="addressable")

    def test_unknown_coin_discipline_rejected(self, paper_graph):
        with pytest.raises(CoarseningError, match="coins"):
            DynamicCoarsener(paper_graph, r=2, rng=0, coins="laplace")


class TestBatchedDeltas:
    def test_batch_matches_sequential_application(self, paper_graph):
        batched = DynamicCoarsener(paper_graph, r=4, rng=3,
                                   coins="addressable")
        sequential = DynamicCoarsener(paper_graph, r=4, rng=3,
                                      coins="addressable")
        deltas = [
            Delta("insert", 0, 8, 0.6),
            Delta("delete", 0, 1),
            Delta("insert", 6, 0, 0.3),
        ]
        out = batched.apply_deltas(deltas)
        for d in deltas:
            if d.op == "insert":
                sequential.insert_edge(d.u, d.v, d.p)
            else:
                sequential.delete_edge(d.u, d.v)
        assert out["applied"] == 3
        assert batched.current_graph() == sequential.current_graph()
        assert (batched.snapshot().coarse.digest()
                == sequential.snapshot().coarse.digest())
        assert np.array_equal(batched.snapshot().pi, sequential.snapshot().pi)

    def test_batch_is_atomic_on_validation_failure(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=4, rng=0)
        before = dyn.current_graph()
        with pytest.raises(CoarseningError, match="already present"):
            dyn.apply_deltas([
                Delta("insert", 0, 8, 0.5),
                Delta("insert", 0, 1, 0.5),  # duplicate of an initial edge
            ])
        assert dyn.current_graph() == before
        assert dyn.stats.insertions == 0

    def test_batch_validates_against_batch_prefix(self, paper_graph):
        """A delete of an edge inserted earlier in the same batch is legal."""
        dyn = DynamicCoarsener(paper_graph, r=4, rng=0)
        dyn.apply_deltas([
            Delta("insert", 0, 8, 0.5),
            Delta("delete", 0, 8),
        ])
        assert dyn.current_graph() == paper_graph
        assert_matches_reference(dyn)

    def test_empty_batch_is_a_noop(self, paper_graph):
        dyn = DynamicCoarsener(paper_graph, r=4, rng=0)
        assert dyn.apply_deltas([]) == {"applied": 0, "fast": 0,
                                        "rebuilt": False,
                                        "coarse_changed": False}
        assert dyn.stats.insertions + dyn.stats.deletions == 0

    def test_delta_validation(self):
        with pytest.raises(CoarseningError, match="unknown delta op"):
            Delta("upsert", 0, 1, 0.5)
        with pytest.raises(CoarseningError, match="probability"):
            Delta("insert", 0, 1)
        with pytest.raises(CoarseningError, match="'u'/'v'"):
            Delta.from_json({"op": "insert", "u": "zero", "v": 1, "p": 0.5})
        d = Delta.from_json({"op": "delete", "u": 3, "v": 4})
        assert (d.op, d.u, d.v, d.p) == ("delete", 3, 4, None)
