"""Tests for r-robust SCC extraction (Definition 4.9, Theorem 4.11)."""

import numpy as np
import pytest

from repro.core import robust_scc_partition, robust_scc_refinement_sequence
from repro.diffusion import reachable_mask
from repro.errors import AlgorithmError
from repro.partition import Partition

from .conftest import build_graph, random_graph


class TestBasics:
    def test_r_zero_is_trivial_partition(self, paper_graph):
        assert robust_scc_partition(paper_graph, 0, rng=0) == Partition.trivial(9)

    def test_negative_r_rejected(self, paper_graph):
        with pytest.raises(AlgorithmError):
            robust_scc_partition(paper_graph, -1, rng=0)

    def test_deterministic_in_seed(self, paper_graph):
        a = robust_scc_partition(paper_graph, 8, rng=42)
        b = robust_scc_partition(paper_graph, 8, rng=42)
        assert a == b

    def test_deterministic_graph_r1_equals_scc(self):
        # With all probabilities 1, every sample is the full graph.
        g = build_graph(4, [(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0),
                            (1, 2, 1.0)])
        p = robust_scc_partition(g, 1, rng=0)
        assert p.n_blocks == 2
        assert p.labels[0] == p.labels[1]
        assert p.labels[2] == p.labels[3]

    def test_high_probability_cliques_merge(self, two_cliques_graph):
        p = robust_scc_partition(two_cliques_graph, 4, rng=0)
        # Each 0.95-probability 4-clique should robustly merge.
        assert p.labels[0] == p.labels[1] == p.labels[2] == p.labels[3]
        assert p.labels[4] == p.labels[5] == p.labels[6] == p.labels[7]
        assert p.labels[0] != p.labels[4]

    def test_isolated_vertices_are_singleton_robust_sccs(self):
        g = build_graph(5, [(0, 1, 0.5)])
        p = robust_scc_partition(g, 3, rng=0)
        assert p.n_blocks == 5


class TestDefinition:
    """Every r-robust SCC must be SC in *all* r sampled graphs (Def. 4.9)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_blocks_sc_in_every_sample(self, seed):
        g = random_graph(20, 80, seed=seed, p_low=0.3, p_high=0.95)
        partition, samples = robust_scc_partition(
            g, 4, rng=seed, keep_samples=True
        )
        assert len(samples) == 4
        for block in partition.non_singleton_blocks():
            for indptr, heads in samples:
                # every member must reach every other within the sample
                for v in block:
                    mask = reachable_mask(indptr, heads, np.array([v]))
                    assert mask[block].all(), "block not SC in a sample"

    @pytest.mark.parametrize("seed", range(5))
    def test_maximality_via_meet_characterisation(self, seed):
        """Theorem 4.11: P_r equals the meet of per-sample SCC partitions."""
        from repro.scc import scc_labels

        g = random_graph(18, 60, seed=seed, p_low=0.3, p_high=0.95)
        partition, samples = robust_scc_partition(
            g, 3, rng=seed, keep_samples=True
        )
        meet = Partition.trivial(g.n)
        for indptr, heads in samples:
            meet = meet.meet(Partition(scc_labels(indptr, heads)))
        assert partition == meet


class TestMonotonicity:
    def test_refinement_chain(self, two_cliques_graph):
        """P_1, P_2, ... only refine (Theorem 4.14's deterministic core)."""
        chain = robust_scc_refinement_sequence(two_cliques_graph, 8, rng=1)
        assert len(chain) == 8
        for finer, coarser in zip(chain[1:], chain[:-1]):
            assert finer.is_refinement_of(coarser)

    def test_block_counts_non_decreasing(self):
        g = random_graph(30, 120, seed=7, p_low=0.2, p_high=0.9)
        chain = robust_scc_refinement_sequence(g, 10, rng=3)
        counts = [p.n_blocks for p in chain]
        assert counts == sorted(counts)
