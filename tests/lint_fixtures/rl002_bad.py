"""RL002 violating fixture: ad-hoc randomness outside repro.rng."""

import random  # line 3: stdlib random

import numpy as np


def fresh_generator():
    return np.random.default_rng()  # line 9: ad-hoc generator


def global_seed():
    np.random.seed(42)  # line 13: global seeding


def raw_draw(graph, rng=None):
    return rng.random(graph.m)  # line 17: draw without ensure_rng


def shuffled(items):
    random.shuffle(items)
    return items
