"""RL005 violating fixture: wall clock used for durations."""

import time

from time import time as now  # line 5: from-import of time.time


def timed_run(fn):
    start = time.time()  # line 9: wall clock
    fn()
    return time.time() - start  # line 11: wall clock
