"""RL003 violating fixture: hash order leaking into ordered results."""


def loop_over_set(vertices):
    out = []
    for v in {vertices[0], vertices[1]}:  # line 6: set literal in for
        out.append(v)
    return out


def list_of_set(vertices):
    return list(set(vertices))  # line 12: ordered builder over set(...)


def tracked_name(vertices):
    chosen = set(vertices)
    for v in chosen:  # line 17: name assigned a set, then iterated
        yield v


def keys_to_array(np, table):
    return np.fromiter(table.keys(), dtype=np.int64)  # line 22: dict view


def comprehension(seen):
    return [v for v in set(seen)]  # line 26: listcomp over set(...)


def identity_sort(items):
    return sorted(items, key=id)  # line 30: id()-keyed sort
