"""RL006 violating fixture: exception swallowing."""


def swallow_everything(fn):
    try:
        fn()
    except:  # line 7: bare except
        return None


def swallow_silently(fn):
    try:
        fn()
    except Exception:  # line 14: broad catch, body is pass
        pass


def swallow_tuple(fn):
    try:
        fn()
    except (ValueError, Exception):  # line 21: Exception hidden in tuple
        ...
