"""RL002 clean fixture: randomness threaded through repro.rng."""

import numpy as np

from repro.rng import ensure_rng, spawn_rngs


def disciplined_draw(graph, rng=None):
    rng = ensure_rng(rng)
    return rng.random(graph.m)


def workers(rng, count: int):
    return [g.integers(0, 10) for g in spawn_rngs(rng, count)]


def passthrough(graph, rng=None):
    # Forwarding the raw parameter without drawing from it is fine.
    return disciplined_draw(graph, rng)


def typed(gen: np.random.Generator) -> float:
    # Draws from a non-'rng'-named, already-normalised generator are fine.
    return float(gen.random())
