"""RL005 clean fixture: monotonic clocks for durations."""

import time
from time import perf_counter


def timed_run(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def timed_run_2(fn):
    start = perf_counter()
    fn()
    return perf_counter() - start
