"""RL103 fixture: copy-on-publish.  The getter still returns the
attribute, but every post-init write *rebinds* it to a fresh object, so
published references are immutable snapshots."""

import threading


class Pool:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sets = []

    def snapshot(self) -> list:
        with self._lock:
            return self._sets

    def grow(self, item: object) -> None:
        with self._lock:
            self._sets = self._sets + [item]  # rebind, never mutate
