"""RL101 fixture: unguarded writes to guarded attributes.

``_items`` is pinned by an explicit annotation; ``_total`` has its guard
inferred from the majority of its write sites.  Both have exactly one
write that slips past the lock.
"""

import threading


class Tracker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items = []  #: guarded-by: _lock
        self._total = 0

    def add(self, value: int) -> None:
        with self._lock:
            self._items.append(value)
            self._total += value

    def add_fast(self, value: int) -> None:
        self._items.append(value)  # RL101: annotated guard not held

    def bump(self) -> None:
        with self._lock:
            self._total += 1

    def bump_racy(self) -> None:
        self._total += 1  # RL101: inferred guard (_lock) not held
