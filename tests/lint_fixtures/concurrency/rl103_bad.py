"""RL103 fixture: a locked getter returns ``self._sets`` by reference,
but ``grow`` later mutates the same list in place — readers that hold
the returned object see a torn update despite the lock."""

import threading


class Pool:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sets = []

    def snapshot(self) -> list:
        with self._lock:
            return self._sets  # published by reference

    def grow(self, item: object) -> None:
        with self._lock:
            self._sets.append(item)  # RL103: mutates published object
