"""RL104 fixture: threading primitives created outside ``__init__`` —
each call replaces the object other threads may already be blocked on."""

import threading


class Worker:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def reset(self) -> None:
        self._lock = threading.Lock()  # RL104: re-created in a method

    def wait_for_go(self) -> None:
        event = threading.Event()  # RL104: primitive in a method body
        event.wait(timeout=0.01)


def make_gate():
    return threading.Semaphore(2)  # RL104: primitive in a module function
