"""RL101 fixture: every guarded write holds its lock; init writes and
unguarded-by-design attributes are exempt."""

import threading


class Tracker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items = []  #: guarded-by: _lock
        self._total = 0
        self._label = "idle"  # never written under a lock: by design

    def add(self, value: int) -> None:
        with self._lock:
            self._items.append(value)
            self._total += value

    def rename(self, label: str) -> None:
        self._label = label

    def reset(self) -> None:
        with self._lock:
            self._items = []
            self._total = 0
