"""RL104 fixture: the allowed creation contexts — module scope, class
body, and ``__init__``."""

import threading

_MODULE_LOCK = threading.Lock()


class Worker:
    _CLASS_GATE = threading.Semaphore(4)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = threading.Event()

    def signal(self) -> None:
        self._ready.set()
