"""RL102 fixture: two methods acquire the same pair of locks in opposite
orders — a classic ABBA deadlock.  One side uses nested ``with`` blocks,
the other the parenthesized multi-item form."""

import threading


class Transfer:
    def __init__(self) -> None:
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.moved = 0

    def forward(self) -> None:
        with self._a:
            with self._b:
                self.moved += 1

    def backward(self) -> None:
        with (self._b, self._a):  # RL102: inverts forward()'s order
            self.moved -= 1
