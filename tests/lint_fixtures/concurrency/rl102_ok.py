"""RL102 fixture: both methods take the locks in the same global order,
so the static acquisition graph is acyclic."""

import threading


class Transfer:
    def __init__(self) -> None:
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.moved = 0

    def forward(self) -> None:
        with self._a:
            with self._b:
                self.moved += 1

    def backward(self) -> None:
        with (self._a, self._b):
            self.moved -= 1
