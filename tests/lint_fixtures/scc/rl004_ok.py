"""RL004 clean fixture: every kernel allocation pins its dtype."""

import numpy as np


def allocate(n):
    frontier = np.empty(n, dtype=np.int32)
    labels = np.zeros(n, dtype=np.int64)
    order = np.arange(n, dtype=np.int64)
    fill = np.full(n, -1, dtype=np.int32)
    mask = np.asarray([0] * n)  # asarray infers from data: out of scope
    return frontier, labels, order, fill, mask
