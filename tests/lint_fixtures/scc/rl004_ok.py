"""RL004 clean fixture: every kernel allocation pins its dtype."""

import numpy as np


def allocate(n):
    imax = np.iinfo(np.int32).max  # the size gate RL004 requires for int32
    idx = np.int32 if n < imax else np.int64
    frontier = np.empty(n, dtype=idx)
    labels = np.zeros(n, dtype=np.int64)
    order = np.arange(n, dtype=np.int64)
    fill = np.full(n, -1, dtype=np.int32)
    mask = np.asarray([0] * n)  # asarray infers from data: out of scope
    return frontier, labels, order, fill, mask
