"""RL004 violating fixture (lives under ``scc/`` to be in rule scope)."""

import numpy as np


def allocate(n):
    frontier = np.empty(n)  # line 7: no dtype
    labels = np.zeros(n)  # line 8: no dtype
    order = np.arange(n)  # line 9: no dtype
    fill = np.full(n, -1)  # line 10: no dtype
    return frontier, labels, order, fill


def narrow(n):
    idx = np.int32 if n < 100_000 else np.int64  # line 15: no iinfo gate
    return np.zeros(n, dtype=idx)
