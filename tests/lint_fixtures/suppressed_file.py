# reprolint: disable-file=RL005 - fixture: whole-file wall-clock waiver
"""File-level suppression fixture."""

import time


def a():
    return time.time()


def b():
    return time.time()
