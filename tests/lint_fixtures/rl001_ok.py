"""RL001 clean fixture: only sanctioned dependencies."""

import math

import numpy as np


def fine():
    return math.sqrt(float(np.int64(4)))
