"""RL006 clean fixture: narrow catches, handled broad catches."""


def narrow(fn):
    try:
        fn()
    except ValueError:
        return None


def broad_but_handled(fn, log):
    try:
        fn()
    except Exception as exc:
        log.warning("run failed: %s", exc)
        raise
