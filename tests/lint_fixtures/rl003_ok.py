"""RL003 clean fixture: canonical orders only."""


def loop_sorted(vertices):
    out = []
    for v in sorted({vertices[0], vertices[1]}):
        out.append(v)
    return out


def list_of_sorted(vertices):
    return list(sorted(set(vertices)))


def membership_only(vertices, candidates):
    # Sets used for membership / difference never leak an order.
    uncovered = set(vertices)
    uncovered.difference_update(candidates)
    return len(uncovered)


def keys_sorted(np, table):
    return np.fromiter(sorted(table.keys()), dtype=np.int64)


def items_loop(table):
    # dict .items()/.values() iteration is insertion-ordered: allowed.
    return [f"{k}={v}" for k, v in table.items()]


def value_sort(items):
    return sorted(items, key=len)
