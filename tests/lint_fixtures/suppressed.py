"""Suppression fixture: every violation here carries a justified waiver."""

import networkx  # reprolint: disable=RL001 - fixture exercising suppression

import numpy as np


def fresh():
    return np.random.default_rng()  # reprolint: disable=RL002 - fixture


def multiline(table):
    return np.fromiter(  # reprolint: disable=RL003 - canonicalised later
        table.keys(),
        dtype=np.int64,
    )


def multiline_tail_comment(table):
    return np.fromiter(
        table.keys(),
        dtype=np.int64,
    )  # reprolint: disable=RL003 - comment on the statement's last line


def several(items):
    return list(set(items)), sorted(items, key=id)  # reprolint: disable=RL003,RL003


def everything(fn):
    try:
        fn()
    except:  # reprolint: disable=all - fixture
        return networkx
