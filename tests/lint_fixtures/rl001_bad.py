"""RL001 violating fixture: oracle imports in library-looking code."""

import networkx  # line 3: plain import

from scipy.sparse import csr_array  # line 5: from-import


def lazy_oracle():
    import pandas as pd  # line 9: function-local import still counts

    return pd, networkx, csr_array
