"""Tests for TIM+, IRIE, and snapshot (PMC-style) greedy."""

import numpy as np
import pytest

from repro.algorithms import (
    IRIEMaximizer,
    SnapshotGreedyMaximizer,
    TIMPlusMaximizer,
)
from repro.analysis import exact_influence
from repro.estimators import make_estimator
from repro.errors import AlgorithmError
from repro.graph import GraphBuilder

from .conftest import build_graph


def star_graph(leaves: int = 8, p: float = 0.9):
    builder = GraphBuilder(n=leaves + 1)
    for leaf in range(1, leaves + 1):
        builder.add_edge(0, leaf, p)
    return builder.build()


MAXIMIZERS = [
    lambda: TIMPlusMaximizer(eps=0.3, rng=0, max_samples=30_000),
    lambda: IRIEMaximizer(),
    lambda: SnapshotGreedyMaximizer(n_snapshots=80, rng=0),
]


class TestPlanted:
    @pytest.mark.parametrize("make", MAXIMIZERS)
    def test_hub_found_on_star(self, make):
        result = make().select(star_graph(), 1)
        assert result.seeds.tolist() == [0]

    @pytest.mark.parametrize("make", MAXIMIZERS)
    def test_two_hubs(self, make):
        builder = GraphBuilder(n=20)
        for hub, leaves in ((0, range(2, 10)), (1, range(10, 18))):
            for leaf in leaves:
                builder.add_edge(hub, leaf, 0.9)
        builder.add_edge(18, 19, 0.1)
        result = make().select(builder.build(), 2)
        assert sorted(result.seeds.tolist()) == [0, 1]

    @pytest.mark.parametrize("make", MAXIMIZERS)
    def test_quality_on_paper_graph(self, make, paper_graph):
        seeds = make().select(paper_graph, 2).seeds
        value = exact_influence(paper_graph, seeds)
        best = max(
            exact_influence(paper_graph, np.array([a, b]))
            for a in range(9) for b in range(a + 1, 9)
        )
        assert value >= 0.75 * best

    @pytest.mark.parametrize("make", MAXIMIZERS)
    def test_parameter_validation(self, make):
        g = star_graph()
        with pytest.raises(AlgorithmError):
            make().select(g, 0)
        with pytest.raises(AlgorithmError):
            make().select(g, g.n + 1)


class TestTIMPlus:
    def test_rejects_bad_eps(self):
        with pytest.raises(AlgorithmError):
            TIMPlusMaximizer(eps=0.0)

    def test_kpt_at_least_trivial_bound(self):
        g = star_graph(leaves=10, p=0.5)
        tim = TIMPlusMaximizer(eps=0.3, rng=0, max_samples=20_000)
        result = tim.select(g, 1)
        assert result.extras["kpt"] >= g.total_weight / g.n

    def test_works_on_weighted_graphs(self, two_cliques_graph):
        from repro.core import coarsen_influence_graph

        coarse = coarsen_influence_graph(two_cliques_graph, r=4, rng=0).coarse
        result = TIMPlusMaximizer(eps=0.3, rng=1, max_samples=20_000).select(
            coarse, 1
        )
        assert coarse.weights[result.seeds[0]] == 4


class TestIRIE:
    def test_rejects_bad_alpha(self):
        with pytest.raises(AlgorithmError):
            IRIEMaximizer(alpha=0.0)
        with pytest.raises(AlgorithmError):
            IRIEMaximizer(iterations=0)

    def test_rank_reflects_probabilities(self):
        # 0 -> 1 strong, 2 -> 3 weak: IRIE must prefer 0
        g = build_graph(4, [(0, 1, 0.9), (2, 3, 0.05)])
        result = IRIEMaximizer().select(g, 1)
        assert result.seeds.tolist() == [0]

    def test_discount_avoids_redundant_seeds(self):
        # 0 -> 1 -> 2 chain with strong edges: the second seed must not be
        # vertex 1 (already covered by 0); it must pick the isolated 3.
        g = build_graph(4, [(0, 1, 0.95), (1, 2, 0.95)])
        result = IRIEMaximizer().select(g, 2)
        assert result.seeds[0] == 0
        assert result.seeds[1] == 3


class TestSnapshotGreedy:
    def test_rejects_bad_snapshots(self):
        with pytest.raises(AlgorithmError):
            SnapshotGreedyMaximizer(n_snapshots=0)

    def test_estimate_matches_exact_with_many_snapshots(self, paper_graph):
        result = SnapshotGreedyMaximizer(n_snapshots=4_000, rng=0).select(
            paper_graph, 1
        )
        exact = exact_influence(paper_graph, result.seeds)
        assert result.estimated_influence == pytest.approx(exact, rel=0.05)

    def test_matches_mc_greedy_quality(self, two_cliques_graph):
        judge = make_estimator("mc", n_samples=5_000, rng=9)
        result = SnapshotGreedyMaximizer(n_snapshots=200, rng=0).select(
            two_cliques_graph, 1
        )
        # the upstream clique reaches everything; any of its members is
        # optimal
        assert result.seeds[0] in (0, 1, 2, 3)
        assert judge.estimate(two_cliques_graph, result.seeds) > 4.0

    def test_deterministic_given_seed(self, paper_graph):
        a = SnapshotGreedyMaximizer(50, rng=3).select(paper_graph, 2)
        b = SnapshotGreedyMaximizer(50, rng=3).select(paper_graph, 2)
        assert np.array_equal(a.seeds, b.seeds)
