"""Unit tests for the CSR influence-graph substrate."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import InfluenceGraph

from .conftest import build_graph, random_graph


class TestConstruction:
    def test_from_edges_sorts_into_csr(self):
        g = InfluenceGraph.from_edges(
            3, np.array([2, 0, 1]), np.array([0, 1, 2]), np.array([0.5, 0.4, 0.3])
        )
        assert g.n == 3
        assert g.m == 3
        assert g.tails().tolist() == [0, 1, 2]
        assert g.heads.tolist() == [1, 2, 0]
        assert g.probs.tolist() == [0.4, 0.3, 0.5]

    def test_empty_graph(self):
        g = InfluenceGraph.empty(5)
        assert g.n == 5
        assert g.m == 0
        assert g.out_degree().tolist() == [0] * 5

    def test_zero_vertices(self):
        g = InfluenceGraph.empty(0)
        assert g.n == 0
        assert g.total_weight == 0

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(GraphFormatError):
            InfluenceGraph.from_edges(
                2, np.array([0]), np.array([1, 0]), np.array([0.5])
            )

    def test_rejects_out_of_range_head(self):
        with pytest.raises(GraphFormatError):
            InfluenceGraph.from_edges(
                2, np.array([0]), np.array([5]), np.array([0.5])
            )

    def test_rejects_out_of_range_tail(self):
        with pytest.raises(GraphFormatError):
            InfluenceGraph.from_edges(
                2, np.array([-1]), np.array([1]), np.array([0.5])
            )

    def test_rejects_zero_probability(self):
        with pytest.raises(GraphFormatError):
            InfluenceGraph.from_edges(
                2, np.array([0]), np.array([1]), np.array([0.0])
            )

    def test_rejects_probability_above_one(self):
        with pytest.raises(GraphFormatError):
            InfluenceGraph.from_edges(
                2, np.array([0]), np.array([1]), np.array([1.5])
            )

    def test_accepts_probability_exactly_one(self):
        g = InfluenceGraph.from_edges(
            2, np.array([0]), np.array([1]), np.array([1.0])
        )
        assert g.probs[0] == 1.0

    def test_rejects_self_loop(self):
        with pytest.raises(GraphFormatError):
            InfluenceGraph.from_edges(
                2, np.array([1]), np.array([1]), np.array([0.5])
            )

    def test_rejects_duplicate_edges(self):
        with pytest.raises(GraphFormatError):
            InfluenceGraph.from_edges(
                2, np.array([0, 0]), np.array([1, 1]), np.array([0.5, 0.6])
            )

    def test_rejects_bad_weights_shape(self):
        with pytest.raises(GraphFormatError):
            InfluenceGraph.from_edges(
                2, np.array([0]), np.array([1]), np.array([0.5]),
                weights=np.array([1, 2, 3]),
            )

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(GraphFormatError):
            InfluenceGraph.from_edges(
                2, np.array([0]), np.array([1]), np.array([0.5]),
                weights=np.array([1, 0]),
            )


class TestAccessors:
    def test_degrees(self, paper_graph):
        assert paper_graph.out_degree(1) == 3  # 1 -> 0, 2, 3
        assert paper_graph.in_degree()[3] == 2  # from 1 and 2
        assert int(np.sum(paper_graph.out_degree())) == paper_graph.m

    def test_out_edges_slice(self, paper_graph):
        heads, probs = paper_graph.out_edges(1)
        assert sorted(heads.tolist()) == [0, 2, 3]
        assert len(probs) == 3

    def test_iter_edges_matches_arrays(self, paper_graph):
        triplets = list(paper_graph.iter_edges())
        tails, heads, probs = paper_graph.edge_arrays()
        assert len(triplets) == paper_graph.m
        for i, (u, v, p) in enumerate(triplets):
            assert (u, v) == (tails[i], heads[i])
            assert p == pytest.approx(probs[i])

    def test_weights_default_to_ones(self, paper_graph):
        assert not paper_graph.is_weighted
        assert paper_graph.weights.tolist() == [1] * 9
        assert paper_graph.total_weight == 9

    def test_explicit_weights(self):
        g = InfluenceGraph.from_edges(
            3, np.array([0]), np.array([1]), np.array([0.5]),
            weights=np.array([3, 1, 2]),
        )
        assert g.is_weighted
        assert g.total_weight == 6

    def test_repr_mentions_sizes(self, paper_graph):
        assert "n=9" in repr(paper_graph)
        assert "m=13" in repr(paper_graph)


class TestReverse:
    def test_reverse_flips_edges(self, paper_graph):
        rev = paper_graph.reverse()
        fwd = set(zip(*paper_graph.edge_arrays()[:2]))
        bwd = set(zip(*rev.edge_arrays()[:2]))
        assert {(v, u) for (u, v) in fwd} == bwd

    def test_reverse_is_cached_and_involutive(self, paper_graph):
        rev = paper_graph.reverse()
        assert rev.reverse() is paper_graph
        assert paper_graph.reverse() is rev

    def test_reverse_preserves_probabilities(self):
        g = build_graph(3, [(0, 1, 0.3), (1, 2, 0.7)])
        rev = g.reverse()
        pairs = {
            (u, v): p for u, v, p in zip(*rev.edge_arrays())
        }
        assert pairs[(1, 0)] == pytest.approx(0.3)
        assert pairs[(2, 1)] == pytest.approx(0.7)

    def test_reverse_of_random_graph_preserves_degree_sums(self):
        g = random_graph(30, 100, seed=3)
        rev = g.reverse()
        assert np.array_equal(np.sort(g.in_degree()), np.sort(rev.out_degree()))


class TestDerivedGraphs:
    def test_with_probabilities(self, paper_graph):
        new = paper_graph.with_probabilities(np.full(paper_graph.m, 0.5))
        assert new.m == paper_graph.m
        assert (new.probs == 0.5).all()
        assert (paper_graph.probs != 0.5).any()  # original untouched

    def test_induced_subgraph_paper_c1(self, paper_graph):
        sub = paper_graph.induced_subgraph(np.array([0, 1, 2]))
        assert sub.n == 3
        assert sub.m == 4  # the four intra-C1 edges
        pairs = set(zip(*sub.edge_arrays()[:2]))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 0)}

    def test_induced_subgraph_relabels_in_order(self, paper_graph):
        sub = paper_graph.induced_subgraph(np.array([4, 5]))
        pairs = {(u, v): p for u, v, p in zip(*sub.edge_arrays())}
        assert pairs[(0, 1)] == pytest.approx(0.5)  # 4 -> 5
        assert pairs[(1, 0)] == pytest.approx(0.6)  # 5 -> 4

    def test_induced_subgraph_keeps_weights(self):
        g = InfluenceGraph.from_edges(
            3, np.array([0]), np.array([1]), np.array([0.5]),
            weights=np.array([3, 1, 2]),
        )
        sub = g.induced_subgraph(np.array([2, 0]))
        assert sub.weights.tolist() == [2, 3]


class TestEquality:
    def test_equal_graphs(self, paper_graph):
        t, h, p = paper_graph.edge_arrays()
        clone = InfluenceGraph.from_edges(9, t, h, p)
        assert paper_graph == clone

    def test_different_probabilities_not_equal(self, paper_graph):
        other = paper_graph.with_probabilities(np.full(paper_graph.m, 0.5))
        assert paper_graph != other

    def test_not_equal_to_other_types(self, paper_graph):
        assert paper_graph != "graph"
