"""Additional property-based tests: stores, samplers, simulators, dynamics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicCoarsener
from repro.diffusion import (
    reachable_mask,
    sample_live_edge_csr,
    simulate_ic_once,
)
from repro.graph import GraphBuilder
from repro.scc import semi_external_scc_labels, tarjan_scc_labels
from repro.partition import Partition
from repro.storage import PairStore, TripletStore


@st.composite
def graphs(draw, max_n: int = 10, max_m: int = 30):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                  st.floats(0.05, 1.0, allow_nan=False)),
        min_size=m, max_size=m,
    ))
    builder = GraphBuilder(n=n)
    for u, v, p in edges:
        builder.add_edge(u, v, p)
    return builder.build()


class TestStoreRoundTrips:
    @given(graphs(), st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_triplet_store_round_trip(self, tmp_path_factory, g, chunk):
        path = tmp_path_factory.mktemp("store") / "g.trip"
        store = TripletStore.from_graph(g, path, chunk_edges=chunk)
        assert store.to_graph() == g

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    max_size=40),
           st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_pair_store_preserves_order(self, tmp_path_factory, pairs,
                                        chunk):
        path = tmp_path_factory.mktemp("store") / "p.pairs"
        store = PairStore.create(path, n=10)
        if pairs:
            store.append(np.array([p[0] for p in pairs]),
                         np.array([p[1] for p in pairs]))
        tails, heads = store.read_all()
        assert tails.tolist() == [p[0] for p in pairs]
        assert heads.tolist() == [p[1] for p in pairs]


class TestSamplerProperties:
    @given(graphs(), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_live_edges_subset_of_original(self, g, seed):
        indptr, heads = sample_live_edge_csr(g, rng=seed)
        assert indptr[-1] <= g.m
        tails = np.repeat(np.arange(g.n), np.diff(indptr))
        original = set(zip(*(a.tolist() for a in g.edge_arrays()[:2])))
        assert set(zip(tails.tolist(), heads.tolist())) <= original

    @given(graphs(), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_simulation_bounded_by_reachability(self, g, seed):
        """Activated set ⊆ deterministically reachable set, ⊇ seeds."""
        seeds = np.array([0])
        active = simulate_ic_once(g, seeds, rng=seed)
        reach = reachable_mask(g.indptr, g.heads, seeds)
        assert active[0]
        assert (~active | reach).all()  # active implies reachable


class TestSemiExternalProperties:
    @given(graphs(max_n=12, max_m=36))
    @settings(max_examples=25, deadline=None)
    def test_matches_tarjan(self, tmp_path_factory, g):
        path = tmp_path_factory.mktemp("scc") / "g.pairs"
        store = PairStore.create(path, n=g.n)
        tails, heads, _ = g.edge_arrays()
        if tails.size:
            store.append(tails, heads)
        semi = Partition(semi_external_scc_labels(store, chunk_edges=5))
        ref = Partition(tarjan_scc_labels(g.indptr, g.heads))
        assert semi == ref

    def test_long_chain_few_rounds(self, tmp_path):
        """The trim phase must resolve a pure chain without per-vertex
        FB rounds (the regression that motivated it)."""
        n = 400
        store = PairStore.create(tmp_path / "chain.pairs", n=n)
        store.append(np.arange(n - 1), np.arange(1, n))
        labels, stats = semi_external_scc_labels(store, return_stats=True)
        assert len(set(labels.tolist())) == n
        assert stats.rounds <= 3
        assert stats.stream_passes < 2 * n  # peel depth, not n rounds x passes


class TestDynamicProperty:
    @given(st.integers(0, 4), st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_insert_delete_inverse(self, r, seed):
        builder = GraphBuilder(n=6)
        builder.add_edges([0, 1, 2], [1, 2, 3], [0.5, 0.6, 0.7])
        g = builder.build()
        dyn = DynamicCoarsener(g, r=r, rng=seed)
        before = dyn.snapshot()
        dyn.insert_edge(4, 5, 0.4)
        dyn.delete_edge(4, 5)
        after = dyn.snapshot()
        # graph restored; the coarse graph must match the reference exactly
        assert dyn.current_graph() == g
        ref = dyn.reference_coarsening()
        assert after.partition == ref.partition
        assert after.coarse == ref.coarse
        # and weights conserved throughout
        assert before.coarse.total_weight == after.coarse.total_weight == 6
