"""Tests for the r-sweep tuning helper."""

import pytest

from repro.core import r_sweep
from repro.errors import AlgorithmError


class TestRSweep:
    def test_monotone_sizes(self, two_cliques_graph):
        points = r_sweep(two_cliques_graph, (1, 2, 4, 8), rng=0)
        edges = [p.coarse_edges for p in points]
        vertices = [p.coarse_vertices for p in points]
        assert edges == sorted(edges)
        assert vertices == sorted(vertices)

    def test_ratios_bounded(self, paper_graph):
        for p in r_sweep(paper_graph, (1, 4), rng=0):
            assert 0 < p.vertex_ratio <= 1.0
            assert 0 <= p.edge_ratio <= 1.0

    def test_duplicates_and_order_normalised(self, paper_graph):
        points = r_sweep(paper_graph, (4, 1, 4), rng=0)
        assert [p.r for p in points] == [1, 4]

    def test_deterministic(self, two_cliques_graph):
        a = r_sweep(two_cliques_graph, (2, 8), rng=5)
        b = r_sweep(two_cliques_graph, (2, 8), rng=5)
        assert [(p.r, p.coarse_edges) for p in a] == [
            (p.r, p.coarse_edges) for p in b
        ]

    def test_rejects_bad_input(self, paper_graph):
        with pytest.raises(AlgorithmError):
            r_sweep(paper_graph, ())
        with pytest.raises(AlgorithmError):
            r_sweep(paper_graph, (0, 2))
