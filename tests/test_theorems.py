"""Validation of the paper's theorems on small graphs.

Lemma 4.3 and Theorems 4.6-4.15 are checked either *exactly* (via live-edge
enumeration on tiny graphs) or deterministically along a shared-sample
refinement chain, so none of these tests carries statistical flake risk
beyond fixed-seed Monte-Carlo with wide tolerances.
"""

import numpy as np
import pytest

from repro.analysis import exact_influence, exact_reliability, reliability_product
from repro.core import coarsen, robust_scc_refinement_sequence
from repro.core.result import CoarsenResult, CoarsenStats
from repro.graph import InfluenceGraph
from repro.partition import Partition

from .conftest import build_graph, random_graph


def tiny_graph(seed: int, n: int = 6, m: int = 10) -> InfluenceGraph:
    """Random tiny graph with a guaranteed reciprocated pair (0 <-> 1)."""
    g = random_graph(n, m - 2, seed=seed, p_low=0.2, p_high=0.9)
    tails, heads, probs = g.edge_arrays()
    from repro.graph import GraphBuilder

    builder = GraphBuilder(n=n)
    builder.add_edges(tails, heads, probs)
    builder.add_edges([0, 1], [1, 0], [0.6, 0.7])
    return builder.build()


def coarsen_by_blocks(graph, blocks):
    partition = Partition.from_blocks(blocks, graph.n)
    coarse, pi = coarsen(graph, partition)
    return coarse, pi, partition


class TestLemma43:
    """Inf_I(S) == Inf_H(pi(S)) where I contracts intra-block probs to 1."""

    @pytest.mark.parametrize("seed", range(6))
    def test_intermediate_graph_equivalence(self, seed):
        g = tiny_graph(seed)
        # pick a random SC-in-deterministic-graph pair to merge: use a
        # reciprocated pair if one exists, else skip
        tails, heads, probs = g.edge_arrays()
        pairs = set(zip(tails.tolist(), heads.tolist()))
        recip = [(u, v) for (u, v) in pairs if (v, u) in pairs and u < v]
        if not recip:
            pytest.skip("no reciprocated pair in this sample")
        u, v = recip[0]
        blocks = [[u, v]] + [[w] for w in range(g.n) if w not in (u, v)]
        coarse, pi, partition = coarsen_by_blocks(g, blocks)

        # intermediate graph I: same structure, intra-block probs = 1
        new_probs = probs.copy()
        intra = (pi[tails] == pi[heads])
        new_probs[intra] = 1.0
        intermediate = g.with_probabilities(new_probs)

        for s in range(g.n):
            inf_i = exact_influence(intermediate, np.array([s]))
            inf_h = exact_influence(coarse, np.unique(pi[np.array([s])]))
            assert inf_i == pytest.approx(inf_h, abs=1e-9)


class TestTheorem46:
    """Inf_G <= Inf_H(pi(.)) <= Inf_G / prod Rel(G[C_j]) — exactly."""

    @pytest.mark.parametrize("seed", range(6))
    def test_sandwich_bounds(self, seed):
        g = tiny_graph(seed)
        tails, heads, _ = g.edge_arrays()
        pairs = set(zip(tails.tolist(), heads.tolist()))
        recip = [(u, v) for (u, v) in pairs if (v, u) in pairs and u < v]
        if not recip:
            pytest.skip("no reciprocated pair in this sample")
        u, v = recip[0]
        blocks = [[u, v]] + [[w] for w in range(g.n) if w not in (u, v)]
        coarse, pi, partition = coarsen_by_blocks(g, blocks)
        rel = reliability_product(g, partition, exact_edge_limit=16, rng=0)
        for s in range(g.n):
            inf_g = exact_influence(g, np.array([s]))
            inf_h = exact_influence(coarse, np.unique(pi[np.array([s])]))
            assert inf_h >= inf_g - 1e-9
            assert inf_h <= inf_g / rel + 1e-9


class TestTheorem47and48:
    """Coarser partition => smaller graph and larger influence."""

    def test_size_monotonicity(self, paper_graph):
        fine = Partition.from_blocks(
            [[0, 1, 2], [3], [4, 5], [6], [7], [8]], 9
        )
        coarse_p = Partition.from_blocks(
            [[0, 1, 2], [3], [4, 5], [6], [7, 8]], 9
        )
        assert fine.is_refinement_of(coarse_p)
        h_fine, _ = coarsen(paper_graph, fine)
        h_coarse, _ = coarsen(paper_graph, coarse_p)
        assert h_fine.n >= h_coarse.n
        assert h_fine.m >= h_coarse.m

    def test_influence_monotonicity_exact(self, paper_graph):
        fine = Partition.from_blocks(
            [[0, 1, 2], [3], [4], [5], [6], [7], [8]], 9
        )
        coarse_p = Partition.from_blocks(
            [[0, 1, 2], [3], [4, 5], [6], [7, 8]], 9
        )
        h1, pi1 = coarsen(paper_graph, fine)
        h2, pi2 = coarsen(paper_graph, coarse_p)
        for s in range(9):
            inf1 = exact_influence(h1, np.unique(pi1[np.array([s])]))
            inf2 = exact_influence(h2, np.unique(pi2[np.array([s])]))
            assert inf1 <= inf2 + 1e-9

    def test_singleton_partition_recovers_exact_influence(self, paper_graph):
        h, pi = coarsen(paper_graph, Partition.singletons(9))
        for s in (0, 4, 8):
            assert exact_influence(h, np.array([pi[s]])) == pytest.approx(
                exact_influence(paper_graph, np.array([s]))
            )


class TestTheorem414and415:
    """Monotonicity in r along a shared-sample chain."""

    def test_sizes_non_decreasing_in_r(self, two_cliques_graph):
        chain = robust_scc_refinement_sequence(two_cliques_graph, 10, rng=0)
        graphs = [coarsen(two_cliques_graph, p)[0] for p in chain]
        ns = [h.n for h in graphs]
        ms = [h.m for h in graphs]
        assert ns == sorted(ns)
        assert ms == sorted(ms)
        assert ns[-1] <= two_cliques_graph.n
        assert ms[-1] <= two_cliques_graph.m

    def test_influence_non_increasing_in_r(self, two_cliques_graph):
        chain = robust_scc_refinement_sequence(two_cliques_graph, 6, rng=0)
        seeds = np.array([0])
        values = []
        for p in chain:
            h, pi = coarsen(two_cliques_graph, p)
            values.append(exact_influence(h, np.unique(pi[seeds])))
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-9
        # Lower bound against G via Monte Carlo (G has too many edges to
        # enumerate exactly): coarse influence never drops below Inf_G.
        from repro.diffusion import estimate_influence

        inf_g = estimate_influence(two_cliques_graph, seeds, 20_000, rng=1)
        assert values[-1] >= inf_g * 0.97


class TestTheorem412:
    """Pr[V' inside some r-robust SCC] >= Rel(G[V'])^r."""

    def test_containment_probability_bound(self, paper_graph):
        from repro.core import robust_scc_partition

        sub = paper_graph.induced_subgraph(np.array([0, 1, 2]))
        rel = exact_reliability(sub)
        r = 2
        rng = np.random.default_rng(0)
        trials, hits = 300, 0
        for _ in range(trials):
            p = robust_scc_partition(paper_graph, r, rng=rng)
            labels = p.labels
            if labels[0] == labels[1] == labels[2]:
                hits += 1
        bound = rel ** r
        # allow 5 sigma of binomial noise below the bound
        sigma = (bound * (1 - bound) / trials) ** 0.5
        assert hits / trials >= bound - 5 * sigma


class TestPaperWorkedNumbers:
    def test_rel_of_c1_regression_anchor(self, paper_graph):
        """Exact Rel of the fixture's C1 triangle (paper's own figure labels
        are not fully specified in the text; 0.432 is our fixture's exact
        value, playing the role of the paper's 0.88848)."""
        sub = paper_graph.induced_subgraph(np.array([0, 1, 2]))
        assert exact_reliability(sub) == pytest.approx(0.432, abs=1e-9)
