"""Tests for repro.serve: cache, pool, service, and the HTTP endpoint."""

from __future__ import annotations

import json
import pathlib
import socket
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.core import coarsen_influence_graph
from repro.errors import AlgorithmError, BudgetExceededError
from repro.serve import (
    InfluenceService,
    ModelCache,
    ModelKey,
    SamplePool,
    ServiceConfig,
)
from repro.serve.cache import result_nbytes
from repro.serve.http import make_server

from .conftest import random_graph


def make_key(tag: str = "a", r: int = 4) -> ModelKey:
    return ModelKey(graph_digest=tag, r=r, seed=0,
                    scc_backend="fwbw", executor="serial")


@pytest.fixture
def graph():
    return random_graph(120, 500, seed=3)


@pytest.fixture
def model(graph):
    return coarsen_influence_graph(graph, r=4, rng=0)


class TestModelKey:
    def test_content_addressing(self, graph):
        g2 = random_graph(120, 500, seed=3)  # same content, new object
        a = ModelKey.for_graph(graph, 4, 0, "fwbw", "serial")
        b = ModelKey.for_graph(g2, 4, 0, "fwbw", "serial")
        assert a == b
        assert a.token() == b.token()

    def test_any_parameter_changes_the_key(self, graph):
        base = ModelKey.for_graph(graph, 4, 0, "fwbw", "serial")
        assert ModelKey.for_graph(graph, 5, 0, "fwbw", "serial") != base
        assert ModelKey.for_graph(graph, 4, 1, "fwbw", "serial") != base
        assert ModelKey.for_graph(graph, 4, 0, "tarjan", "serial") != base
        other = random_graph(120, 500, seed=4)
        assert ModelKey.for_graph(other, 4, 0, "fwbw", "serial") != base

    def test_digest_is_cached_and_stable(self, graph):
        assert graph.digest() == graph.digest()
        assert graph.digest() is graph.digest()  # cached string


class TestModelCache:
    def test_lru_eviction_order(self, model):
        cache = ModelCache(max_models=2)
        k1, k2, k3 = make_key("a"), make_key("b"), make_key("c")
        cache.put(k1, model)
        cache.put(k2, model)
        assert cache.get(k1) is model  # k1 is now most recent
        cache.put(k3, model)           # k2 is LRU -> evicted
        assert cache.keys() == [k1, k3]
        assert cache.get(k2) is None

    def test_byte_budget_evicts_lru_first(self, model):
        per_model = result_nbytes(model)
        cache = ModelCache(max_models=10, max_bytes=2 * per_model)
        keys = [make_key(t) for t in "abc"]
        for key in keys:
            cache.put(key, model)
        assert len(cache) == 2
        assert cache.keys() == keys[1:]
        assert cache.nbytes() <= 2 * per_model

    def test_single_oversized_model_is_admitted(self, model):
        cache = ModelCache(max_models=4, max_bytes=1)
        cache.put(make_key("a"), model)
        assert len(cache) == 1  # never evict down to empty

    def test_counters(self, model):
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            cache = ModelCache(max_models=1)
            cache.get(make_key("a"))
            cache.put(make_key("a"), model)
            cache.get(make_key("a"))
            cache.put(make_key("b"), model)
        assert registry.counter("serve.cache.miss") == 1
        assert registry.counter("serve.cache.hit") == 1
        assert registry.counter("serve.cache.evict") == 1

    def test_warm_start_round_trip(self, tmp_path, graph, model):
        warm = tmp_path / "warm"
        a = ModelCache(max_models=2, warm_dir=warm)
        key = ModelKey.for_graph(graph, 4, 0, "fwbw", "serial")
        path = a.store_warm(key, model)
        assert path is not None
        # A fresh cache (fresh process, conceptually) warm-loads it.
        b = ModelCache(max_models=2, warm_dir=warm)
        loaded = b.get(key)
        assert loaded is not None
        assert loaded.coarse == model.coarse
        assert np.array_equal(loaded.pi, model.pi)

    def test_warm_archive_with_wrong_key_is_ignored(self, tmp_path, graph,
                                                    model):
        warm = tmp_path / "warm"
        a = ModelCache(max_models=2, warm_dir=warm)
        key = ModelKey.for_graph(graph, 4, 0, "fwbw", "serial")
        path = a.store_warm(key, model)
        other = make_key("forged", r=9)
        (warm / (other.token() + ".npz")).write_bytes(
            pathlib.Path(path).read_bytes()
        )
        b = ModelCache(max_models=2, warm_dir=warm)
        assert b.get(other) is None  # stamped key does not match

    def test_corrupt_warm_archive_degrades_to_miss(self, tmp_path, graph):
        warm = tmp_path / "warm"
        warm.mkdir()
        key = ModelKey.for_graph(graph, 4, 0, "fwbw", "serial")
        (warm / (key.token() + ".npz")).write_bytes(b"not an archive")
        cache = ModelCache(max_models=2, warm_dir=warm)
        assert cache.get(key) is None


class TestSamplePool:
    def test_grow_only_and_reuse(self, model):
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            pool = SamplePool(model.coarse, rng=0)
            assert pool.ensure(100) == 100
            assert pool.size == 100
            assert pool.ensure(50) == 50   # pure reuse, no growth
            assert pool.size == 100
            assert pool.ensure(150) == 150
        assert registry.counter("serve.pool.reuse") >= 150
        assert registry.counter("serve.pool.drawn") == 150

    def test_prefix_scoring_matches_pool_size(self, model):
        """The prefix estimate is identical whether or not the pool has
        grown past it — the coalescing correctness property."""
        seeds = np.array([0, 1])
        small = SamplePool(model.coarse, rng=7)
        small.ensure(400)
        v_small = small.estimator(400).estimate(model.coarse, seeds)
        big = SamplePool(model.coarse, rng=7)
        big.ensure(2_000)  # same stream, grown further
        v_prefix = big.estimator(400).estimate(model.coarse, seeds)
        assert v_small == v_prefix

    def test_deadline_already_passed_stops_growth(self, model):
        pool = SamplePool(model.coarse, rng=0, chunk_sets=8)
        pool.ensure(16)
        achieved = pool.ensure(10_000, deadline=0.0)  # monotonic() > 0
        assert achieved == 16  # kept what it had, drew nothing new

    def test_maximizer_is_deterministic(self, model):
        pool = SamplePool(model.coarse, rng=1)
        a = pool.maximizer(500).select(model.coarse, 3)
        b = pool.maximizer(500).select(model.coarse, 3)
        assert a.seeds.tolist() == b.seeds.tolist()
        assert a.estimated_influence == b.estimated_influence

    def test_maximizer_rejects_foreign_graph(self, model, graph):
        pool = SamplePool(model.coarse, rng=1)
        with pytest.raises(AlgorithmError):
            pool.maximizer(100).select(graph, 2)


class TestInfluenceService:
    def test_batched_equals_sequential_bitwise(self, graph):
        seed_sets = [[0], [1, 2], [3, 4, 5], [0], [7]]
        config = ServiceConfig(r=4, n_samples=2_000, min_samples=64)
        with InfluenceService(config) as svc:
            batched = svc.estimate_many(graph, seed_sets)
        with InfluenceService(config) as svc:
            sequential = [svc.estimate(graph, s) for s in seed_sets]
        assert [q.value for q in batched] == [q.value for q in sequential]
        assert not any(q.degraded for q in batched)

    def test_model_is_cached_across_queries(self, graph):
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            with InfluenceService(ServiceConfig(r=4, n_samples=500,
                                                min_samples=64)) as svc:
                svc.estimate(graph, [0])
                svc.estimate(graph, [1])
                svc.maximize(graph, 2)
        assert registry.counter("serve.cache.miss") == 1
        assert registry.counter("serve.cache.hit") == 2

    def test_concurrent_queries_coalesce_and_match(self, graph):
        """Many threads against one service return exactly the values a
        sequential run returns, despite sharing one pool."""
        seed_sets = [[i] for i in range(12)]
        config = ServiceConfig(r=4, n_samples=1_000, min_samples=64,
                               max_workers=4)
        with InfluenceService(config) as svc:
            expected = [svc.estimate(graph, s).value for s in seed_sets]
        with InfluenceService(config) as svc:
            values = [None] * len(seed_sets)
            errors = []

            def worker(i):
                try:
                    values[i] = svc.estimate(graph, seed_sets[i]).value
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(seed_sets))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        assert values == expected

    def test_backpressure_rejects_past_the_queue(self, graph):
        config = ServiceConfig(r=4, n_samples=500, min_samples=64,
                               max_workers=1, max_pending=0)
        with InfluenceService(config) as svc:
            svc.model_for(graph)  # build outside the measured path
            with pytest.raises(BudgetExceededError):
                # Batch of 3 against capacity 1 -> rejected on admission.
                svc.estimate_many(graph, [[0], [1], [2]])
            # The failed batch released its slots once its one admitted
            # query drained; the service keeps working.
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    assert svc.estimate(graph, [0]).value > 0
                    break
                except BudgetExceededError:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)

    def test_deadline_degrades_with_report(self, graph):
        config = ServiceConfig(r=4, n_samples=200_000, min_samples=64,
                               chunk_samples=64, deadline_seconds=1e-9,
                               report_samples=50)
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            with InfluenceService(config) as svc:
                result = svc.estimate(graph, [0])
        assert result.degraded
        assert result.n_samples < result.requested_samples
        assert result.n_samples >= 64  # the min_samples floor always lands
        assert result.report is not None
        assert result.report.estimation_eps <= 1.0
        assert registry.counter("serve.deadline.degraded") == 1

    def test_batched_deadline_degrades_every_query(self, graph):
        # The batched path must account degradation per query: each entry
        # of the batch gets its own serve.deadline.degraded increment and
        # its own achieved-accuracy report.
        seed_sets = [[0], [1, 2], [3], [4, 5, 6]]
        config = ServiceConfig(r=4, n_samples=200_000, min_samples=64,
                               chunk_samples=64, deadline_seconds=1e-9,
                               report_samples=50)
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            with InfluenceService(config) as svc:
                results = svc.estimate_many(graph, seed_sets)
        assert len(results) == len(seed_sets)
        assert all(r.degraded for r in results)
        assert all(r.n_samples >= 64 for r in results)
        assert all(r.report is not None for r in results)
        assert registry.counter("serve.deadline.degraded") == len(seed_sets)
        # Degraded batched answers are still the deterministic prefix
        # values: re-asking with the achieved size reproduces them.
        with InfluenceService(ServiceConfig(
                r=4, n_samples=200_000, min_samples=64,
                chunk_samples=64)) as svc:
            for seeds, result in zip(seed_sets, results):
                again = svc.estimate(graph, seeds,
                                     n_samples=result.n_samples)
                assert again.value == result.value

    def test_maximize_deterministic_and_valid(self, graph):
        config = ServiceConfig(r=4, n_samples=2_000, min_samples=64)
        with InfluenceService(config) as svc:
            a = svc.maximize(graph, 3)
            b = svc.maximize(graph, 3)
        assert a.seeds.tolist() == b.seeds.tolist()
        assert len(set(a.seeds.tolist())) == 3
        assert all(0 <= s < graph.n for s in a.seeds)

    def test_warm_dir_round_trip(self, tmp_path, graph):
        config = ServiceConfig(r=4, n_samples=500, min_samples=64,
                               warm_dir=str(tmp_path / "warm"))
        with InfluenceService(config) as svc:
            first = svc.estimate(graph, [0])
            assert svc.persist(graph) is not None
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            with InfluenceService(config) as svc:
                again = svc.estimate(graph, [0])
        assert registry.counter("serve.cache.warm_hit") == 1
        assert again.value == first.value

    def test_stats_shape(self, graph):
        with InfluenceService(ServiceConfig(r=4, n_samples=500,
                                            min_samples=64)) as svc:
            svc.estimate(graph, [0])
            stats = svc.stats()
        assert stats["models"] == 1
        assert stats["model_bytes"] > 0
        assert list(stats["pools"].values()) == [500]
        json.dumps(stats)  # must be JSON-able for /stats


class TestHTTP:
    @pytest.fixture
    def served(self, graph):
        config = ServiceConfig(r=4, n_samples=500, min_samples=64)
        service = InfluenceService(config)
        server = make_server(service, graph, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{server.server_address[1]}", service
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def _post(self, url, body):
        req = urllib.request.Request(
            url, data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())

    def test_round_trip(self, served, graph):
        base, service = served
        with urllib.request.urlopen(base + "/healthz") as resp:
            assert json.loads(resp.read()) == {"status": "ok"}
        status, body = self._post(base + "/estimate", {"seeds": [0, 1]})
        assert status == 200
        expected = service.estimate(graph, [0, 1])
        assert body["value"] == expected.value
        status, body = self._post(base + "/maximize", {"k": 2})
        assert status == 200
        assert len(body["seeds"]) == 2
        with urllib.request.urlopen(base + "/stats") as resp:
            assert json.loads(resp.read())["models"] == 1

    def test_error_mapping(self, served):
        base, _ = served
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._post(base + "/estimate", {"not_seeds": [0]})
        assert exc.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._post(base + "/estimate", {"seeds": []})
        assert exc.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._post(base + "/nope", {"seeds": [0]})
        assert exc.value.code == 404

    def test_malformed_content_length_is_bad_request(self, served):
        # Regression: int() on the attacker-controlled Content-Length
        # header used to sit outside the handler's error mapping, turning
        # a malformed header into an unhandled 500.  It must be a clean
        # 400 with a JSON error body — and because the body was never
        # consumed, the desynced keep-alive connection must close instead
        # of parsing body bytes as the next request line.
        base, _ = served
        host, port = base.removeprefix("http://").split(":")
        with socket.create_connection((host, int(port)), timeout=5) as conn:
            conn.settimeout(5)
            conn.sendall(
                b"POST /estimate HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: banana\r\n"
                b"\r\n"
                b'{"seeds": [0]}'
            )
            raw = b""
            while True:  # server closes the connection -> read to EOF
                chunk = conn.recv(4096)
                if not chunk:
                    break
                raw += chunk
        status_line = raw.split(b"\r\n", 1)[0]
        assert b" 400 " in status_line
        body = json.loads(raw.partition(b"\r\n\r\n")[2])
        assert "Content-Length" in body["error"]
