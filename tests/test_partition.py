"""Tests for partitions and the meet operation (Appendix B)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition import Partition, meet_labels, meet_labels_hash


class TestConstruction:
    def test_canonicalises_labels(self):
        p = Partition(np.array([5, 5, 2, 2, 9]))
        assert p.labels.tolist() == [0, 0, 1, 1, 2]

    def test_trivial_and_singletons(self):
        assert Partition.trivial(4).n_blocks == 1
        assert Partition.singletons(4).n_blocks == 4

    def test_from_blocks(self):
        p = Partition.from_blocks([[0, 2], [1], [3, 4]], 5)
        assert p.n_blocks == 3
        assert p.labels[0] == p.labels[2]

    def test_from_blocks_rejects_overlap(self):
        with pytest.raises(PartitionError, match="overlap"):
            Partition.from_blocks([[0, 1], [1, 2]], 3)

    def test_from_blocks_rejects_gap(self):
        with pytest.raises(PartitionError, match="cover"):
            Partition.from_blocks([[0], [2]], 3)

    def test_rejects_negative_labels(self):
        with pytest.raises(PartitionError):
            Partition(np.array([0, -1]))

    def test_rejects_2d(self):
        with pytest.raises(PartitionError):
            Partition(np.zeros((2, 2), dtype=np.int64))

    def test_empty_partition(self):
        p = Partition(np.empty(0, dtype=np.int64))
        assert p.n == 0
        assert p.n_blocks == 0


class TestQueries:
    def test_block_sizes_and_members(self):
        p = Partition(np.array([0, 0, 1, 0, 2]))
        assert p.block_sizes().tolist() == [3, 1, 1]
        assert p.members_of(0).tolist() == [0, 1, 3]

    def test_blocks_cover_everything(self):
        p = Partition(np.array([1, 0, 1, 2, 0]))
        blocks = p.blocks()
        assert sorted(np.concatenate(blocks).tolist()) == [0, 1, 2, 3, 4]
        for b in blocks:
            assert len(set(p.labels[b].tolist())) == 1

    def test_non_singleton_blocks(self):
        p = Partition(np.array([0, 0, 1, 2, 2, 2]))
        blocks = p.non_singleton_blocks()
        assert sorted(len(b) for b in blocks) == [2, 3]


class TestMeet:
    def test_meet_basic(self):
        p = Partition(np.array([0, 0, 0, 1, 1]))
        q = Partition(np.array([0, 1, 1, 1, 1]))
        m = p.meet(q)
        assert m.n_blocks == 3
        assert m.labels[1] == m.labels[2]
        assert m.labels[3] == m.labels[4]
        assert m.labels[0] not in (m.labels[1], m.labels[3])

    def test_hash_and_numpy_agree(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            a = rng.integers(0, 6, size=50)
            b = rng.integers(0, 6, size=50)
            assert np.array_equal(meet_labels(a, b), meet_labels_hash(a, b))

    def test_meet_with_trivial_is_identity(self):
        p = Partition(np.array([0, 1, 0, 2]))
        assert p.meet(Partition.trivial(4)) == p

    def test_meet_with_singletons_is_singletons(self):
        p = Partition(np.array([0, 1, 0, 2]))
        assert p.meet(Partition.singletons(4)) == Partition.singletons(4)

    def test_meet_idempotent(self):
        p = Partition(np.array([0, 1, 0, 2, 1]))
        assert p.meet(p) == p

    def test_meet_commutative(self):
        rng = np.random.default_rng(6)
        a = Partition(rng.integers(0, 4, size=30))
        b = Partition(rng.integers(0, 4, size=30))
        assert a.meet(b) == b.meet(a)

    def test_meet_associative(self):
        rng = np.random.default_rng(7)
        a = Partition(rng.integers(0, 4, size=30))
        b = Partition(rng.integers(0, 4, size=30))
        c = Partition(rng.integers(0, 4, size=30))
        assert a.meet(b).meet(c) == a.meet(b.meet(c))

    def test_meet_is_finer_than_both(self):
        rng = np.random.default_rng(8)
        a = Partition(rng.integers(0, 5, size=40))
        b = Partition(rng.integers(0, 5, size=40))
        m = a.meet(b)
        assert m.is_refinement_of(a)
        assert m.is_refinement_of(b)

    def test_meet_shape_mismatch(self):
        with pytest.raises(PartitionError):
            Partition.trivial(3).meet(Partition.trivial(4))

    def test_unknown_method(self):
        with pytest.raises(PartitionError):
            Partition.trivial(3).meet(Partition.trivial(3), method="bogus")

    def test_hash_method_through_partition(self):
        a = Partition(np.array([0, 0, 1, 1]))
        b = Partition(np.array([0, 1, 0, 1]))
        assert a.meet(b, method="hash") == a.meet(b, method="numpy")


class TestRefinement:
    def test_refinement_relation(self):
        fine = Partition(np.array([0, 1, 2, 3]))
        coarse = Partition(np.array([0, 0, 1, 1]))
        assert fine.is_refinement_of(coarse)
        assert not coarse.is_refinement_of(fine)

    def test_every_partition_refines_trivial(self):
        rng = np.random.default_rng(9)
        p = Partition(rng.integers(0, 7, size=25))
        assert p.is_refinement_of(Partition.trivial(25))

    def test_self_refinement(self):
        p = Partition(np.array([0, 1, 1]))
        assert p.is_refinement_of(p)


class TestEquality:
    def test_same_blocks_different_label_names_are_equal(self):
        assert Partition(np.array([3, 3, 7])) == Partition(np.array([0, 0, 5]))

    def test_hashable(self):
        a = Partition(np.array([0, 0, 1]))
        b = Partition(np.array([2, 2, 4]))
        assert len({a, b}) == 1

    def test_repr(self):
        assert "blocks=2" in repr(Partition(np.array([0, 1, 1])))
