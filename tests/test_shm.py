"""Tests for the shared-memory graph broadcast (repro.graph.shm)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import InfluenceGraph, SharedGraph
from repro.graph.shm import (
    _ATTACHED,
    SharedModel,
    attach_shared_graph,
    attach_shared_model,
    detach_shared_graph,
    detach_shared_graphs,
)

from .conftest import random_graph


class TestPublishAttach:
    def test_round_trip_equality(self, two_cliques_graph):
        with SharedGraph.publish(two_cliques_graph) as shared:
            view = shared.graph()
            assert view == two_cliques_graph
            assert view.n == two_cliques_graph.n
            assert view.m == two_cliques_graph.m

    def test_views_are_zero_copy_and_read_only(self, two_cliques_graph):
        with SharedGraph.publish(two_cliques_graph) as shared:
            view = shared.graph()
            # Same physical pages, not a pickle round trip: the arrays'
            # memory comes from the segment, not from fresh allocations.
            assert view.indptr.base is not None
            assert not view.indptr.flags.writeable
            assert not view.heads.flags.writeable
            assert not view.probs.flags.writeable
            with pytest.raises(ValueError):
                view.heads[0] = 0

    def test_weighted_graph_round_trips(self):
        g = InfluenceGraph.from_edges(
            3,
            np.array([0, 1]), np.array([1, 2]), np.array([0.5, 0.5]),
            weights=np.array([3, 1, 2]),
        )
        with SharedGraph.publish(g) as shared:
            view = shared.graph()
            assert view.is_weighted
            assert view.weights.tolist() == [3, 1, 2]
            assert view == g

    def test_edgeless_graph_round_trips(self):
        g = InfluenceGraph.empty(5)
        with SharedGraph.publish(g) as shared:
            assert shared.graph() == g

    def test_spec_nbytes_matches_csr_payload(self, two_cliques_graph):
        with SharedGraph.publish(two_cliques_graph) as shared:
            g = two_cliques_graph
            expected = 8 * (g.n + 1) + 16 * g.m  # int64 indptr/heads, f64 probs
            assert shared.spec.nbytes == expected

    def test_attach_is_cached_per_process(self, two_cliques_graph):
        with SharedGraph.publish(two_cliques_graph) as shared:
            a = attach_shared_graph(shared.spec)
            b = attach_shared_graph(shared.spec)
            assert a is b
            assert a == two_cliques_graph
        detach_shared_graphs()
        assert shared.spec.name not in _ATTACHED

    def test_attached_view_survives_publisher_unlink(self, two_cliques_graph):
        # POSIX semantics: unlink removes the name; existing mappings live on.
        shared = SharedGraph.publish(two_cliques_graph)
        view = attach_shared_graph(shared.spec)
        shared.unlink()
        assert view == two_cliques_graph
        detach_shared_graphs()

    def test_explicit_detach_evicts_cache(self, two_cliques_graph):
        with SharedGraph.publish(two_cliques_graph) as shared:
            attach_shared_graph(shared.spec)
            assert shared.spec.name in _ATTACHED
            assert detach_shared_graph(shared.spec.name)
            assert shared.spec.name not in _ATTACHED
            # Idempotent: a second detach is a no-op.
            assert not detach_shared_graph(shared.spec.name)
            # Re-attach works while the segment still exists.
            assert attach_shared_graph(shared.spec) == two_cliques_graph
        assert shared.spec.name not in _ATTACHED  # unlink evicted it

    def test_segment_name_reuse_gets_fresh_mapping(self, two_cliques_graph):
        # The two-pool reuse scenario: a long-lived process attaches pool
        # A's segment, pool A is torn down, and pool B's segment happens
        # to reuse the same OS name.  Without unlink-time eviction the
        # cache would serve A's dead mapping for B's spec.
        first = SharedGraph.publish(two_cliques_graph)
        name = first.spec.name
        stale = attach_shared_graph(first.spec)
        assert stale == two_cliques_graph
        first.unlink()
        assert name not in _ATTACHED
        other = random_graph(12, 40, seed=3)
        second = SharedGraph.publish(other, name=name)
        try:
            fresh = attach_shared_graph(second.spec)
            assert fresh == other
            assert fresh != two_cliques_graph
        finally:
            second.unlink()


class TestSharedModel:
    def test_model_round_trip_and_spec(self, two_cliques_graph):
        with SharedModel.publish("tok123", two_cliques_graph) as shared:
            spec = shared.spec
            assert spec.token == "tok123"
            assert shared.nbytes == spec.graph.nbytes
            view = attach_shared_model(spec)
            assert view == two_cliques_graph
        # unlink evicted the publisher-process cache entry too
        assert spec.graph.name not in _ATTACHED
        with pytest.raises(GraphFormatError):
            attach_shared_model(spec)


class TestLifecycle:
    def test_unlink_is_idempotent(self, two_cliques_graph):
        shared = SharedGraph.publish(two_cliques_graph)
        shared.unlink()
        shared.unlink()

    def test_graph_after_unlink_raises(self, two_cliques_graph):
        shared = SharedGraph.publish(two_cliques_graph)
        shared.unlink()
        with pytest.raises(GraphFormatError, match="already unlinked"):
            shared.graph()

    def test_attach_after_unlink_raises(self, two_cliques_graph):
        shared = SharedGraph.publish(two_cliques_graph)
        spec = shared.spec
        shared.unlink()
        with pytest.raises(GraphFormatError, match="does not exist"):
            attach_shared_graph(spec)

    def test_context_manager_unlinks_on_error(self, two_cliques_graph):
        with pytest.raises(RuntimeError):
            with SharedGraph.publish(two_cliques_graph) as shared:
                spec = shared.spec
                raise RuntimeError("boom")
        with pytest.raises(GraphFormatError):
            attach_shared_graph(spec)

    def test_large_graph_round_trip(self):
        g = random_graph(2_000, 10_000, seed=7, p_low=0.1, p_high=0.9)
        with SharedGraph.publish(g) as shared:
            view = attach_shared_graph(shared.spec)
            assert np.array_equal(view.indptr, g.indptr)
            assert np.array_equal(view.heads, g.heads)
            assert np.array_equal(view.probs, g.probs)
        detach_shared_graphs()
