"""Self-tests for the runtime lock sanitizer (:mod:`repro.sanitize`).

The acceptance bar: a *seeded* discipline violation (an ABBA inversion,
a self-deadlock, publication under a pool lock) must be detected and
reported with a witness, while the real serving layer — run under the
installed sanitizer — stays clean.  The threaded suites get the same
treatment automatically via the autouse fixture in ``conftest.py``.
"""

import threading

import pytest

from repro.errors import ReproError
from repro.sanitize import (
    LockDisciplineError,
    LockSanitizer,
    SanitizedLock,
    current_sanitizer,
    install_sanitizer,
    uninstall_sanitizer,
)
from repro.serve import InfluenceService, ModelKey, SamplePool, ServiceConfig

from .conftest import random_graph


def make_pair() -> "tuple[LockSanitizer, SanitizedLock, SanitizedLock]":
    sanitizer = LockSanitizer()
    return sanitizer, sanitizer.make_lock("A"), sanitizer.make_lock("B")


class TestInversionDetection:
    def test_seeded_abba_inversion_is_caught(self):
        sanitizer, a, b = make_pair()
        with a:
            with b:
                pass
        with b:
            with a:  # closes the cycle A -> B -> A
                pass
        kinds = [v.kind for v in sanitizer.violations]
        assert kinds == ["inversion"]
        with pytest.raises(LockDisciplineError) as excinfo:
            sanitizer.assert_clean()
        report = str(excinfo.value)
        assert "inversion" in report
        assert "A -> B" in report and "B -> A" in report

    def test_cross_thread_inversion_is_caught_without_deadlocking(self):
        # Thread one establishes A -> B, thread two (run strictly after,
        # so nothing can actually deadlock) acquires B -> A.  The graph
        # is global, so the inversion is still visible.
        sanitizer, a, b = make_pair()

        def order_ab():
            with a:
                with b:
                    pass

        def order_ba():
            with b:
                with a:
                    pass

        for target in (order_ab, order_ba):
            worker = threading.Thread(target=target)
            worker.start()
            worker.join()
        assert [v.kind for v in sanitizer.violations] == ["inversion"]

    def test_consistent_order_is_clean(self):
        sanitizer, a, b = make_pair()
        for _ in range(3):
            with a:
                with b:
                    pass
        sanitizer.assert_clean()
        assert sanitizer.edges() == [
            ("A", "B", sanitizer.edges()[0][2]),
        ]

    def test_three_lock_cycle_is_caught(self):
        sanitizer = LockSanitizer()
        a, b, c = (sanitizer.make_lock(n) for n in "ABC")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:  # A -> B -> C -> A
                pass
        assert [v.kind for v in sanitizer.violations] == ["inversion"]

    def test_peer_site_nesting_is_flagged(self):
        # Two locks sharing a creation site (two instances of one class)
        # can never have a consistent pairwise order.
        sanitizer = LockSanitizer()
        first = sanitizer.make_lock("Peer._lock")
        second = sanitizer.make_lock("Peer._lock")
        with first:
            with second:
                pass
        assert [v.kind for v in sanitizer.violations] == ["inversion"]


class TestSelfDeadlock:
    def test_plain_lock_reacquire_raises_instead_of_hanging(self):
        sanitizer = LockSanitizer()
        lock = sanitizer.make_lock("L")
        lock.acquire()
        try:
            with pytest.raises(LockDisciplineError):
                lock.acquire()
        finally:
            lock.release()
        assert [v.kind for v in sanitizer.violations] == ["self-deadlock"]

    def test_rlock_reacquire_is_fine(self):
        sanitizer = LockSanitizer()
        lock = sanitizer.make_lock("R", reentrant=True)
        with lock:
            with lock:
                pass
        sanitizer.assert_clean()

    def test_error_type_is_a_repro_error(self):
        assert issubclass(LockDisciplineError, ReproError)


class TestInstallation:
    def test_install_patches_and_uninstall_restores(self):
        original_lock, original_rlock = threading.Lock, threading.RLock
        sanitizer = install_sanitizer()
        try:
            assert current_sanitizer() is sanitizer
            assert threading.Lock is not original_lock
            assert threading.RLock is not original_rlock
            # Locks made by non-repro code stay real.
            assert not isinstance(threading.Lock(), SanitizedLock)
        finally:
            uninstall_sanitizer(sanitizer)
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock
        assert current_sanitizer() is None

    def test_second_install_is_rejected(self):
        sanitizer = install_sanitizer(patch_threading=False,
                                      patch_publish=False)
        try:
            with pytest.raises(LockDisciplineError):
                install_sanitizer()
        finally:
            uninstall_sanitizer(sanitizer)

    def test_repro_locks_are_wrapped(self):
        sanitizer = install_sanitizer()
        try:
            pool = SamplePool(random_graph(30, 90, seed=1), rng=0)
            assert isinstance(pool._lock, SanitizedLock)
            assert pool._lock.module == "repro.serve.pool"
            assert "pool" in pool._lock.site
        finally:
            uninstall_sanitizer(sanitizer)


class TestPublishGuard:
    def test_seeded_publish_under_pool_lock_is_caught(self):
        graph = random_graph(30, 90, seed=1)
        sanitizer = install_sanitizer()
        try:
            from repro.core import coarsen_influence_graph

            pool = SamplePool(graph, rng=0)
            svc = InfluenceService(ServiceConfig(r=4, n_samples=200,
                                                 min_samples=64))
            try:
                key = ModelKey.for_graph(graph, 4, 0, "fwbw", "serial")
                model = coarsen_influence_graph(graph, r=4, rng=0)
                with pool._lock:  # the discipline breach under test
                    svc.cache.put(key, model)
            finally:
                svc.close()
            kinds = [v.kind for v in sanitizer.violations]
            assert kinds == ["held-across-publish"]
            with pytest.raises(LockDisciplineError) as excinfo:
                sanitizer.assert_clean()
            assert "ModelCache.put" in str(excinfo.value)
        finally:
            uninstall_sanitizer(sanitizer)

    def test_real_service_workload_is_clean(self):
        graph = random_graph(60, 200, seed=2)
        sanitizer = install_sanitizer()
        try:
            config = ServiceConfig(r=4, n_samples=500, min_samples=64)
            with InfluenceService(config) as svc:
                svc.estimate(graph, [0])
                svc.estimate(graph, [1, 2])
                svc.maximize(graph, 2)
            sanitizer.assert_clean()
            # The workload must actually have exercised sanitized locks.
            assert sanitizer.edges()
        finally:
            uninstall_sanitizer(sanitizer)


class TestReport:
    def test_report_dumps_order_witness(self):
        sanitizer, a, b = make_pair()
        with a:
            with b:
                pass
        report = sanitizer.report()
        assert "0 violations" in report
        assert "A -> B" in report

    def test_violations_are_deduplicated(self):
        sanitizer, a, b = make_pair()
        with a:
            with b:
                pass
        for _ in range(5):
            with b:
                with a:
                    pass
        assert len(sanitizer.violations) == 1
