"""Tests for result/stat dataclasses and their derived properties."""

import numpy as np
import pytest

from repro.core import CoarsenResult, CoarsenStats, coarsen_influence_graph
from repro.errors import CoarseningError

from .conftest import build_graph


class TestCoarsenStats:
    def test_ratios(self):
        stats = CoarsenStats(
            input_vertices=100, input_edges=400,
            output_vertices=40, output_edges=100,
        )
        assert stats.vertex_reduction_ratio == pytest.approx(0.4)
        assert stats.edge_reduction_ratio == pytest.approx(0.25)

    def test_zero_input_is_safe(self):
        stats = CoarsenStats()
        assert stats.vertex_reduction_ratio == 1.0
        assert stats.edge_reduction_ratio == 1.0

    def test_total_seconds(self):
        stats = CoarsenStats(first_stage_seconds=1.5, second_stage_seconds=0.5)
        assert stats.total_seconds == pytest.approx(2.0)

    def test_extras_dict_is_per_instance(self):
        a, b = CoarsenStats(), CoarsenStats()
        a.extras["x"] = 1
        assert "x" not in b.extras


class TestCoarsenResultHelpers:
    def _result(self) -> CoarsenResult:
        g = build_graph(4, [(0, 1, 0.99), (1, 0, 0.99), (2, 3, 0.1)])
        return coarsen_influence_graph(g, r=2, rng=0)

    def test_map_seeds_deduplicates(self):
        res = self._result()
        if res.partition.labels[0] != res.partition.labels[1]:
            import pytest as _pytest

            _pytest.skip("pair did not merge for this seed")
        mapped = res.map_seeds(np.array([0, 1]))
        assert mapped.size == 1

    def test_pull_back_is_member_of_block(self):
        res = self._result()
        for coarse_vertex in range(res.coarse.n):
            back = res.pull_back(np.array([coarse_vertex]), rng=1)
            assert res.pi[back[0]] == coarse_vertex

    def test_pull_back_covers_all_members_eventually(self):
        res = self._result()
        blocks = res.partition.non_singleton_blocks()
        if not blocks:
            import pytest as _pytest

            _pytest.skip("no merged block")
        block = blocks[0]
        label = res.pi[block[0]]
        rng = np.random.default_rng(0)
        seen = {
            int(res.pull_back(np.array([label]), rng=rng)[0])
            for _ in range(100)
        }
        assert seen == set(block.tolist())

    def test_map_seeds_rejects_out_of_range(self):
        res = self._result()
        with pytest.raises(CoarseningError):
            res.map_seeds(np.array([-1]))
