"""Tests for RNG plumbing — the backbone of every determinism guarantee."""

import numpy as np

from repro.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        a, b = ensure_rng(None), ensure_rng(None)
        assert isinstance(a, np.random.Generator)
        assert a is not b

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_generator_passed_through_unchanged(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_threading_one_generator_preserves_stream(self):
        gen = np.random.default_rng(5)
        first = ensure_rng(gen).random()
        second = ensure_rng(gen).random()
        reference = np.random.default_rng(5)
        assert first == reference.random()
        assert second == reference.random()


class TestSpawnRngs:
    def test_count_and_independence(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4
        draws = [c.random() for c in children]
        assert len(set(draws)) == 4  # astronomically unlikely to collide

    def test_deterministic_in_parent_seed(self):
        a = [c.random() for c in spawn_rngs(3, 3)]
        b = [c.random() for c in spawn_rngs(3, 3)]
        assert a == b

    def test_different_parents_differ(self):
        a = [c.random() for c in spawn_rngs(1, 2)]
        b = [c.random() for c in spawn_rngs(2, 2)]
        assert a != b
