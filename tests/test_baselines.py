"""Tests for the COARSENET and SPINE baseline reimplementations."""

import numpy as np
import pytest

from repro.baselines import Cascade, coarsenet, generate_cascades, spine
from repro.errors import AlgorithmError

from .conftest import build_graph, random_graph


class TestCoarsenet:
    def test_reaches_target_ratio(self):
        g = random_graph(60, 300, seed=0, p_low=0.1, p_high=0.6)
        res = coarsenet(g, target_edge_ratio=0.5)
        assert res.stats.edge_reduction_ratio <= 0.55
        assert res.coarse.n < g.n

    def test_weight_conservation(self):
        g = random_graph(40, 200, seed=1)
        res = coarsenet(g, target_edge_ratio=0.4)
        assert res.coarse.total_weight == g.n

    def test_pi_consistent_with_partition(self):
        g = random_graph(40, 200, seed=2)
        res = coarsenet(g, target_edge_ratio=0.5)
        assert np.array_equal(res.pi, res.partition.labels)
        assert res.pi.max() + 1 == res.coarse.n

    def test_ratio_one_is_identity(self, paper_graph):
        res = coarsenet(paper_graph, target_edge_ratio=1.0)
        assert res.coarse.m == paper_graph.m
        assert res.coarse.n == paper_graph.n

    def test_rejects_bad_ratio(self, paper_graph):
        with pytest.raises(AlgorithmError):
            coarsenet(paper_graph, target_edge_ratio=0.0)

    def test_handles_dag(self):
        # power iteration degenerates on DAGs (eigenvalue 0); must not crash
        g = build_graph(5, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (3, 4, 0.5)])
        res = coarsenet(g, target_edge_ratio=0.5)
        assert res.coarse.m <= 2


class TestCascades:
    def test_cascade_steps_contiguous(self):
        g = random_graph(30, 120, seed=3, p_low=0.3, p_high=0.9)
        cascades = generate_cascades(g, 20, rng=0)
        assert len(cascades) == 20
        for c in cascades:
            steps = c.steps[c.steps >= 0]
            assert steps.min() == 0
            # activation steps form a contiguous range
            assert set(steps.tolist()) == set(range(steps.max() + 1))

    def test_single_seed_per_cascade(self):
        g = random_graph(20, 60, seed=4)
        for c in generate_cascades(g, 10, rng=1):
            assert int((c.steps == 0).sum()) == 1


class TestSpine:
    def _setup(self, seed=0):
        g = random_graph(25, 100, seed=seed, p_low=0.3, p_high=0.9)
        cascades = generate_cascades(g, 30, rng=seed)
        return g, cascades

    def test_respects_budget(self):
        g, cascades = self._setup()
        sparse, stats = spine(g, 40, cascades)
        assert sparse.m <= 40
        assert stats["kept_edges"] == sparse.m

    def test_kept_edges_subset_of_original(self):
        g, cascades = self._setup(1)
        sparse, _ = spine(g, 30, cascades)
        original = set(zip(*g.edge_arrays()[:2]))
        assert set(zip(*sparse.edge_arrays()[:2])) <= original

    def test_phase1_covers_events_when_budget_allows(self):
        g, cascades = self._setup(2)
        sparse, stats = spine(g, g.m, cascades)
        assert stats["uncovered_events"] == 0

    def test_likelihood_greedy_prefers_explanatory_edges(self):
        """An edge that explains observed propagation beats one that never
        fires in any cascade."""
        g = build_graph(4, [(0, 1, 0.9), (2, 3, 0.9)])
        # one cascade where 0 activated 1; vertices 2, 3 never active
        cascade = Cascade(steps=np.array([0, 1, -1, -1]))
        sparse, _ = spine(g, 1, [cascade])
        assert set(zip(*sparse.edge_arrays()[:2])) == {(0, 1)}

    def test_rejects_bad_budget(self):
        g, cascades = self._setup(3)
        with pytest.raises(AlgorithmError):
            spine(g, 0, cascades)

    def test_empty_cascades_pick_nothing_meaningful(self):
        g, _ = self._setup(4)
        sparse, stats = spine(g, 10, [])
        # no events => nothing to explain => early stop with no edges
        assert stats["events"] == 0
        assert sparse.m == 0
