"""Batched multi-sample SCC kernel (`scc/multi.py`) and the backend registry.

Four layers of evidence:

* differential — every row of ``multi_scc_labels`` must be the identical
  canonical partition as a per-sample ``fwbw``/``tarjan`` run on the masked
  subgraph, on fixed-seed random batches, adversarial shapes (chain of
  cycles, the conduit counterexample), mask-degenerate rounds (all-keep /
  all-drop), and the int32 union domain a batch of small samples crosses;
* property-based — on arbitrary small digraph batches, each row's labels
  must be exactly the mutual-reachability classes of that round's masked
  subgraph (checked against a boolean transitive closure, not another SCC
  implementation);
* fold equivalence — ``robust_scc_partition(..., scc_backend="multi")``
  must be **bit-for-bit** the per-sample path: same partition, same kept
  samples, same ``pi``, same coarse-graph digest, across refine modes;
* registry — one :class:`repro.scc.BackendSpec` table drives the backend
  menu, so choices, capabilities, and error messages cannot drift.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import coarsen_addressable, robust_scc_partition
from repro.core.dynamic import Delta, DynamicCoarsener
from repro.errors import AlgorithmError
from repro.partition import Partition
from repro.scc import (
    MULTI_REFINE_CHUNK,
    SCC_BACKENDS,
    BackendSpec,
    MultiStats,
    available_backends,
    backend_spec,
    multi_chunk_cap,
    multi_scc_labels,
    scc_labels,
)

from .conftest import random_graph

from .test_fwbw import csr, reachability


def masked_csr(indptr, heads, keep_row):
    """The live-edge CSR a single keep-mask row selects (reference path)."""
    n = indptr.size - 1
    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    t, h = tails[keep_row], heads[keep_row]
    sub = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(t, minlength=n), out=sub[1:])
    return sub, np.ascontiguousarray(h, dtype=np.int64)


def random_keep(m, r, seed, density=0.5):
    return np.random.default_rng(seed).random((r, m)) < density


def _core_periphery_graph(n=240, core=10, seed=0):
    """Five p=1 two-cycles surrounded by a sparse low-probability mesh."""
    from repro.graph.influence_graph import InfluenceGraph

    rng = np.random.default_rng(seed)
    pairs = {}
    for i in range(0, core, 2):
        pairs[(i, i + 1)] = 1.0
        pairs[(i + 1, i)] = 1.0
    for v in range(core, n):
        for _ in range(4):
            u = int(rng.integers(0, n))
            if u != v:
                pairs.setdefault((v, u), 0.25)
                pairs.setdefault((u, v), 0.25)
    keys = sorted(pairs)
    return InfluenceGraph.from_edges(
        n,
        np.array([k[0] for k in keys]),
        np.array([k[1] for k in keys]),
        np.array([pairs[k] for k in keys]),
    )


def assert_rows_match(indptr, heads, keep, rows, backend="fwbw", blocks=None):
    """Each batched row == the per-sample reference on the masked CSR."""
    for i in range(keep.shape[0]):
        sip, sh = masked_csr(indptr, heads, keep[i])
        ref = Partition(scc_labels(sip, sh, backend=backend))
        got = Partition(rows[i])
        if blocks is None:
            assert got == ref, i
        else:
            b = Partition(blocks)
            assert got.meet(b) == ref.meet(b), i


class TestDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_per_sample_on_random_batches(self, seed):
        g = random_graph(60, 240, seed=seed)
        keep = random_keep(g.m, r=5, seed=seed, density=0.6)
        rows = multi_scc_labels(g.indptr, g.heads, keep)
        assert rows.shape == (5, g.n)
        assert_rows_match(g.indptr, g.heads, keep, rows, backend="fwbw")
        assert_rows_match(g.indptr, g.heads, keep, rows, backend="tarjan")

    def test_chain_of_cycles(self):
        # k 3-cycles linked in a chain: trimming never fires, every round
        # must be decided by pivots/coloring; drop one intra-cycle edge per
        # round so rows genuinely differ.
        k = 40
        tails, heads = [], []
        for c in range(k):
            b = 3 * c
            tails += [b, b + 1, b + 2]
            heads += [b + 1, b + 2, b]
            if c + 1 < k:
                tails.append(b + 2)
                heads.append(b + 3)
        indptr, h = csr(3 * k, tails, heads)
        m = h.size
        keep = np.ones((6, m), dtype=bool)
        for i in range(1, 6):
            keep[i, (7 * i) % m] = False
        rows = multi_scc_labels(indptr, h, keep)
        assert_rows_match(indptr, h, keep, rows, backend="tarjan")

    def test_all_keep_and_all_drop_rounds(self):
        g = random_graph(50, 220, seed=3)
        keep = np.ones((4, g.m), dtype=bool)
        keep[1] = False  # all-drop: every vertex its own SCC
        keep[3] = random_keep(g.m, 1, seed=9)[0]
        rows = multi_scc_labels(g.indptr, g.heads, keep)
        base = Partition(scc_labels(g.indptr, g.heads, backend="tarjan"))
        assert Partition(rows[0]) == base
        assert Partition(rows[2]) == base
        assert Partition(rows[1]).n_blocks == g.n
        assert_rows_match(g.indptr, g.heads, keep, rows, backend="tarjan")

    def test_empty_batch_and_empty_graph(self):
        indptr = np.zeros(6, dtype=np.int64)
        none = multi_scc_labels(indptr, np.empty(0, dtype=np.int64),
                                np.empty((0, 0), dtype=bool))
        assert none.shape == (0, 5)
        empty = multi_scc_labels(np.zeros(1, dtype=np.int64),
                                 np.empty(0, dtype=np.int64),
                                 np.ones((3, 0), dtype=bool))
        assert empty.shape == (3, 0)

    def test_single_row_equals_scc_labels_dispatch(self):
        g = random_graph(80, 300, seed=1)
        via_dispatch = Partition(scc_labels(g.indptr, g.heads,
                                            backend="multi"))
        ref = Partition(scc_labels(g.indptr, g.heads, backend="tarjan"))
        assert via_dispatch == ref

    def test_int32_union_domain(self):
        # Each sample alone sits below the 256k size gate; the union of
        # eight crosses it, so the batch runs on int32 indices.
        g = random_graph(20_000, 60_000, seed=7)
        keep = random_keep(g.m, r=8, seed=7, density=0.5)
        rows = multi_scc_labels(g.indptr, g.heads, keep)
        for i in (0, 3, 7):
            sip, sh = masked_csr(g.indptr, g.heads, keep[i])
            assert Partition(rows[i]) == Partition(
                scc_labels(sip, sh, backend="fwbw"))

    def test_keep_shape_validation(self):
        g = random_graph(10, 30, seed=0)
        with pytest.raises(ValueError, match="boolean matrix"):
            multi_scc_labels(g.indptr, g.heads,
                             np.ones(g.m, dtype=bool))
        with pytest.raises(ValueError, match="one column per"):
            multi_scc_labels(g.indptr, g.heads,
                             np.ones((2, g.m + 1), dtype=bool))

    def test_stats_shape_and_occupancy(self):
        g = random_graph(100, 400, seed=3)
        keep = random_keep(g.m, r=6, seed=3)
        rows, stats = multi_scc_labels(g.indptr, g.heads, keep,
                                       return_stats=True)
        assert isinstance(stats, MultiStats)
        assert stats.samples == 6
        assert stats.rounds >= 1
        assert stats.processed_edges > 0
        assert stats.masked_edges == 0  # no blocks given
        # Occupancy: every kernel round serves between 1 and r live rounds.
        assert stats.rounds <= stats.occupancy <= stats.rounds * 6
        assert 0 <= stats.retired_rounds < 6
        assert rows.shape == (6, g.n)

    def test_uneven_rounds_retire_early(self):
        # Round 0 is edgeless (trimmed away in kernel round one); round 1
        # keeps two disjoint cycles, so its single initial part needs a
        # second kernel round for the cycle the first pivot missed.  Early
        # retirement must report the vanished round while the survivor
        # finishes.
        n = 200
        half = n // 2
        left = np.arange(half)
        right = half + np.arange(half)
        tails = np.concatenate([left, right])
        heads = np.concatenate([(left + 1) % half,
                                half + (right - half + 1) % half])
        indptr, h = csr(n, tails, heads)
        keep = np.stack([np.zeros(n, dtype=bool), np.ones(n, dtype=bool)])
        rows, stats = multi_scc_labels(indptr, h, keep, return_stats=True)
        assert Partition(rows[0]).n_blocks == n
        assert Partition(rows[1]).n_blocks == 2
        assert stats.rounds >= 2
        assert stats.retired_rounds == 1
        assert stats.occupancy < stats.rounds * 2


class TestProperty:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_rows_are_mutual_reachability_classes(self, data):
        n = data.draw(st.integers(1, 16), label="n")
        m = data.draw(st.integers(0, 50), label="m")
        r = data.draw(st.integers(1, 4), label="r")
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                min_size=m, max_size=m,
            ),
            label="edges",
        )
        pairs = sorted({(u, v) for u, v in pairs if u != v})
        tails = np.asarray([u for u, _ in pairs], dtype=np.int64)
        heads_in = np.asarray([v for _, v in pairs], dtype=np.int64)
        indptr, h = csr(n, tails, heads_in)
        keep = np.asarray(
            data.draw(
                st.lists(
                    st.lists(st.booleans(), min_size=h.size, max_size=h.size),
                    min_size=r, max_size=r,
                ),
                label="keep",
            ),
            dtype=bool,
        ).reshape(r, h.size)
        rows = multi_scc_labels(indptr, h, keep)
        base_tails = np.repeat(np.arange(n, dtype=np.int64),
                               np.diff(indptr))
        for i in range(r):
            reach = reachability(n, base_tails[keep[i]], h[keep[i]])
            mutual = reach & reach.T
            same = rows[i][:, None] == rows[i][None, :]
            assert (same == mutual).all(), i


class TestRefinement:
    def test_conduit_counterexample_per_round(self):
        # u, v share a block; w is a frozen singleton; the only cycle runs
        # u -> w -> v -> u.  A round keeping all three edges must keep
        # {u, v} together; a round dropping the conduit edge must not.
        u, w, v = 0, 1, 2
        indptr, h = csr(3, [u, w, v], [w, v, u])
        blocks = np.array([0, 1, 0], dtype=np.int64)
        keep = np.array([[True, True, True],
                         [True, False, True]])
        rows = multi_scc_labels(indptr, h, keep, block_labels=blocks)
        meet0 = Partition(rows[0]).meet(Partition(blocks))
        meet1 = Partition(rows[1]).meet(Partition(blocks))
        assert meet0.labels[u] == meet0.labels[v]
        assert meet1.labels[u] != meet1.labels[v]

    def test_blocks_tile_across_rounds(self):
        g = random_graph(60, 240, seed=5)
        blocks = robust_scc_partition(g, 2, rng=0).labels
        keep = random_keep(g.m, r=4, seed=5)
        rows = multi_scc_labels(g.indptr, g.heads, keep, block_labels=blocks)
        assert_rows_match(g.indptr, g.heads, keep, rows, backend="tarjan",
                          blocks=blocks)

    def test_frozen_and_masked_counters_flow_through_obs(self, monkeypatch):
        # A stable core of p=1 two-cycles plus a low-probability periphery:
        # the periphery singletonises (freezes) in the first refinement
        # chunk while the core blocks survive, so later chunks retire
        # frozen-only parts and mask their live out-edges.  Pin the chunk
        # width — the adaptive cap would fold this small graph in one
        # chunk, and masking needs a later chunk to exist.
        import repro.core.robust_scc as robust_scc_module
        monkeypatch.setattr(robust_scc_module, "multi_chunk_cap",
                            lambda m: 4)
        g = _core_periphery_graph()
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            robust_scc_partition(g, 12, rng=3, scc_backend="multi",
                                 refine=True)
        assert registry.counter("scc.frozen_vertices") > 0
        assert registry.counter("scc.masked_edges") > 0
        assert registry.counter("scc.multi.runs") > 0
        assert registry.counter("scc.multi.samples") == 12
        assert registry.counter("scc.multi.occupancy") > 0

    def test_all_singleton_blocks_short_circuit(self):
        g = random_graph(50, 200, seed=11)
        blocks = np.arange(g.n, dtype=np.int64)
        keep = np.ones((3, g.m), dtype=bool)
        rows, stats = multi_scc_labels(g.indptr, g.heads, keep,
                                       block_labels=blocks,
                                       return_stats=True)
        assert stats.frozen_vertices == 3 * g.n
        for i in range(3):
            meet = Partition(rows[i]).meet(Partition(blocks))
            assert meet.n_blocks == g.n


class TestFoldEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("r", [1, 3, 9])
    def test_robust_partition_bit_for_bit(self, seed, r):
        g = random_graph(80, 320, seed=seed, p_low=0.1, p_high=0.6)
        for refine in (None, False, True):
            a = robust_scc_partition(g, r, rng=seed, scc_backend="fwbw",
                                     refine=refine)
            b = robust_scc_partition(g, r, rng=seed, scc_backend="multi",
                                     refine=refine)
            assert np.array_equal(a.labels, b.labels), (refine,)

    @pytest.mark.parametrize("seed", range(3))
    def test_kept_samples_identical(self, seed):
        g = random_graph(50, 200, seed=seed)
        pa, sa = robust_scc_partition(g, 5, rng=seed, scc_backend="fwbw",
                                      keep_samples=True)
        pb, sb = robust_scc_partition(g, 5, rng=seed, scc_backend="multi",
                                      keep_samples=True)
        assert np.array_equal(pa.labels, pb.labels)
        assert len(sa) == len(sb) == 5
        for (ia, ha), (ib, hb) in zip(sa, sb):
            assert np.array_equal(ia, ib)
            assert np.array_equal(ha, hb)

    @pytest.mark.parametrize("seed", range(3))
    def test_coarse_graph_digest_identical(self, seed):
        g = random_graph(60, 260, seed=seed)
        a = coarsen_addressable(g, r=6, seed=seed, scc_backend="fwbw")
        b = coarsen_addressable(g, r=6, seed=seed, scc_backend="multi")
        assert np.array_equal(a.pi, b.pi)
        assert a.coarse.digest() == b.coarse.digest()

    def test_r_zero_is_trivial(self):
        g = random_graph(20, 60, seed=0)
        assert robust_scc_partition(g, 0, rng=0,
                                    scc_backend="multi").n_blocks == 1

    def test_chunk_cap_policy(self):
        # Wider on smaller graphs (amortisation), floor on big ones, and
        # always at least the refinement chunk.
        assert multi_chunk_cap(100_000) == MULTI_REFINE_CHUNK
        assert multi_chunk_cap(1) > multi_chunk_cap(1_000)
        assert multi_chunk_cap(0) >= MULTI_REFINE_CHUNK
        caps = [multi_chunk_cap(m) for m in (10, 100, 1_000, 10_000, 100_000)]
        assert caps == sorted(caps, reverse=True)

    @pytest.mark.parametrize("cap", [1, 2, 5, 100])
    def test_fold_invariant_to_chunk_width(self, cap, monkeypatch):
        # Chunking is a performance knob only: any width must produce the
        # same labels, because masks are drawn in fold order regardless.
        import repro.core.robust_scc as robust_scc_module
        g = random_graph(70, 280, seed=2, p_low=0.2, p_high=0.7)
        baseline = robust_scc_partition(g, 7, rng=1, scc_backend="multi")
        monkeypatch.setattr(robust_scc_module, "multi_chunk_cap",
                            lambda m: cap)
        chunked = robust_scc_partition(g, 7, rng=1, scc_backend="multi")
        assert np.array_equal(baseline.labels, chunked.labels)


class TestDynamicBatched:
    def test_coarsener_matches_fwbw_across_batches(self):
        g = random_graph(40, 170, seed=2, p_low=0.1, p_high=0.8)
        da = DynamicCoarsener(g, r=6, rng=3, scc_backend="fwbw",
                              coins="addressable")
        db = DynamicCoarsener(g, r=6, rng=3, scc_backend="multi",
                              coins="addressable")
        batches = [
            [Delta("insert", 0, 25, 0.7), Delta("insert", 25, 0, 0.7)],
            [Delta("delete", 0, 25)],
            [Delta("insert", 1, 30, 0.6), Delta("insert", 30, 2, 0.6),
             Delta("insert", 2, 1, 0.6)],
        ]
        for batch in batches:
            da.apply_deltas(batch)
            db.apply_deltas(batch)
            ra, rb = da.snapshot(), db.snapshot()
            assert np.array_equal(ra.pi, rb.pi)
            assert ra.coarse.digest() == rb.coarse.digest()
        sa, sb = da.stats, db.stats
        # The deferral bookkeeping is backend-independent: both paths
        # account one skip-or-recompute per (delta, sample) event.
        assert (sa.scc_recomputations + sa.scc_skipped
                == sb.scc_recomputations + sb.scc_skipped)


class TestBackendRegistry:
    def test_menu_is_registry_derived(self):
        assert SCC_BACKENDS == available_backends()
        assert "multi" in SCC_BACKENDS
        assert "semi-external" not in SCC_BACKENDS
        assert "semi-external" in available_backends(streaming=True)

    def test_specs_expose_capabilities(self):
        assert backend_spec("multi").supports_batch
        assert backend_spec("multi").supports_block_labels
        assert backend_spec("fwbw").supports_block_labels
        assert not backend_spec("tarjan").supports_batch
        assert backend_spec("scipy").optional
        assert backend_spec("semi-external").streaming
        assert isinstance(backend_spec("fwbw"), BackendSpec)

    def test_unknown_backend_lists_full_menu(self):
        with pytest.raises(AlgorithmError, match="semi-external"):
            backend_spec("fwbw-typo")

    def test_streaming_backend_fails_early_in_scc_labels(self):
        g = random_graph(10, 30, seed=0)
        with pytest.raises(AlgorithmError, match="sublinear"):
            scc_labels(g.indptr, g.heads, backend="semi-external")

    def test_refine_error_names_capable_backends(self):
        g = random_graph(10, 30, seed=0)
        with pytest.raises(AlgorithmError, match="multi"):
            robust_scc_partition(g, 2, rng=0, scc_backend="kosaraju",
                                 refine=True)
