"""Tests for the dataset registry, generators and probability settings."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    apply_setting,
    assign_exponential,
    assign_trivalency,
    assign_uniform,
    assign_weighted_cascade,
    collaboration_graph,
    core_fringe_graph,
    list_datasets,
    load_dataset,
    powerlaw_social_graph,
    rmat_graph,
    web_graph,
)
from repro.errors import AlgorithmError
from repro.scc import scc_labels

from .conftest import build_graph


class TestProbabilitySettings:
    def test_uniform(self, paper_graph):
        g = assign_uniform(paper_graph, 0.25)
        assert (g.probs == 0.25).all()

    def test_uniform_rejects_bad_p(self, paper_graph):
        with pytest.raises(AlgorithmError):
            assign_uniform(paper_graph, 0.0)

    def test_trivalency_values(self, paper_graph):
        g = assign_trivalency(paper_graph, rng=0)
        assert set(np.round(g.probs, 6).tolist()) <= {0.1, 0.01, 0.001}

    def test_exponential_range_and_mean(self):
        g = build_graph(2, [(0, 1, 0.5)])
        big = powerlaw_social_graph(500, out_degree=4, rng=0)
        e = assign_exponential(big, rng=0, mean=0.1)
        assert (e.probs > 0).all() and (e.probs <= 1).all()
        assert e.probs.mean() == pytest.approx(0.1, abs=0.01)

    def test_weighted_cascade(self, paper_graph):
        g = assign_weighted_cascade(paper_graph)
        indeg = paper_graph.in_degree()
        for u, v, p in zip(*g.edge_arrays()):
            assert p == pytest.approx(1.0 / indeg[v])

    def test_apply_setting_dispatch(self, paper_graph):
        for name in ("exp", "tri", "uc", "wc"):
            g = apply_setting(paper_graph, name, rng=0)
            assert g.m == paper_graph.m
        with pytest.raises(AlgorithmError):
            apply_setting(paper_graph, "bogus")

    def test_settings_preserve_topology(self, paper_graph):
        g = apply_setting(paper_graph, "exp", rng=0)
        assert np.array_equal(g.indptr, paper_graph.indptr)
        assert np.array_equal(g.heads, paper_graph.heads)


class TestGenerators:
    def test_core_fringe_structure(self):
        g = core_fringe_graph(50, 100, core_out_degree=8, rng=0)
        assert g.n == 150
        # deterministic core must be strongly connected (has a cycle)
        labels = scc_labels(g.indptr, g.heads)
        assert len(set(labels[:50].tolist())) == 1

    def test_core_fringe_rejects_tiny_core(self):
        with pytest.raises(AlgorithmError):
            core_fringe_graph(1, 5, rng=0)

    def test_powerlaw_degree_tail(self):
        g = powerlaw_social_graph(2_000, out_degree=4, rng=0)
        indeg = g.in_degree()
        # preferential attachment: max in-degree far above the mean
        assert indeg.max() > 10 * indeg.mean()

    def test_powerlaw_rich_club_densifies(self):
        plain = powerlaw_social_graph(1_000, out_degree=4, rng=0)
        clubbed = powerlaw_social_graph(
            1_000, out_degree=4, rich_club_fraction=0.05,
            rich_club_degree=30, rng=0,
        )
        assert clubbed.m > plain.m

    def test_powerlaw_rejects_small_n(self):
        with pytest.raises(AlgorithmError):
            powerlaw_social_graph(4, out_degree=8, rng=0)

    def test_rmat_sizes(self):
        g = rmat_graph(8, edge_factor=4, rng=0)
        assert g.n == 256
        assert 0 < g.m <= 4 * 256

    def test_rmat_rejects_bad_quadrants(self):
        with pytest.raises(AlgorithmError):
            rmat_graph(4, quadrants=(0.5, 0.5, 0.5, 0.5), rng=0)

    def test_web_graph_portal_core(self):
        g = web_graph(30, pages_per_host=10, portal_core_size=10,
                      portal_core_degree=8, rng=0)
        assert g.n == 300
        # portal core (front pages of first 10 hosts) strongly connected
        core = np.arange(10) * 10
        labels = scc_labels(g.indptr, g.heads)
        assert len(set(labels[core].tolist())) == 1

    def test_collaboration_graph_is_symmetric(self):
        g = collaboration_graph(50, rng=0)
        pairs = set(zip(*g.edge_arrays()[:2]))
        assert all((v, u) in pairs for (u, v) in pairs)

    def test_generators_deterministic(self):
        a = powerlaw_social_graph(300, out_degree=3, rng=7)
        b = powerlaw_social_graph(300, out_degree=3, rng=7)
        assert a == b


class TestRegistry:
    def test_all_thirteen_paper_datasets_present(self):
        assert len(DATASETS) == 13
        assert "ameblo" in DATASETS
        assert "twitter-2010" in DATASETS

    def test_tier_filters(self):
        assert set(list_datasets(tier="small")) <= set(list_datasets())
        small_medium = list_datasets(max_tier="medium")
        assert "com-orkut" not in small_medium
        assert "soc-pokec" in small_medium

    def test_load_small_datasets(self):
        for name in list_datasets(tier="small"):
            g = load_dataset(name, "exp", seed=0)
            assert g.n > 100
            assert g.m > 100
            assert (g.probs > 0).all() and (g.probs <= 1).all()

    def test_load_deterministic(self):
        a = load_dataset("soc-slashdot", "tri", seed=3)
        b = load_dataset("soc-slashdot", "tri", seed=3)
        assert a == b

    def test_same_topology_across_settings(self):
        a = load_dataset("wiki-talk", "uc", seed=0)
        b = load_dataset("wiki-talk", "wc", seed=0)
        assert np.array_equal(a.heads, b.heads)
        assert not np.allclose(a.probs, b.probs)

    def test_unknown_dataset(self):
        with pytest.raises(AlgorithmError, match="unknown dataset"):
            load_dataset("no-such-graph")


class TestCalibration:
    """The registry's generator parameters are calibrated against Table 3;
    these tests pin the *qualitative* calibration so a parameter edit that
    destroys the paper-shape gets caught without running the full bench."""

    def test_dense_core_analogues_reduce_most(self):
        from repro.core import coarsen_influence_graph

        orkut = load_dataset("com-orkut", "exp", seed=0)
        slashdot = load_dataset("soc-slashdot", "exp", seed=0)
        r_orkut = coarsen_influence_graph(orkut, r=16, rng=0)
        r_slash = coarsen_influence_graph(slashdot, r=16, rng=0)
        # orkut-class graphs reduce to a few percent of edges; ordinary
        # social graphs to roughly a third (Table 3's spread)
        assert r_orkut.stats.edge_reduction_ratio < 0.10
        assert 0.2 < r_slash.stats.edge_reduction_ratio < 0.5

    def test_wc_setting_defeats_coarsening(self):
        from repro.core import coarsen_influence_graph

        g = load_dataset("soc-slashdot", "wc", seed=0)
        res = coarsen_influence_graph(g, r=16, rng=0)
        assert res.stats.edge_reduction_ratio > 0.95

    def test_undirected_analogues_are_symmetric(self):
        for name in ("ca-hepph", "com-youtube"):
            g = load_dataset(name, "uc", seed=0)
            pairs = set(zip(*g.edge_arrays()[:2]))
            assert all((v, u) in pairs for (u, v) in pairs), name
