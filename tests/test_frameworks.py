"""Tests for the estimation/maximization frameworks (Algorithms 3, 4)."""

import numpy as np
import pytest

from repro.algorithms import DegreeHeuristic, RISMaximizer
from repro.estimators import make_estimator
from repro.analysis import exact_influence
from repro.core import (
    coarsen,
    coarsen_influence_graph,
    estimate_on_coarse,
    maximize_on_coarse,
)
from repro.errors import AlgorithmError
from repro.partition import Partition


class _ExactEstimator:
    """Exact-influence oracle for tiny graphs (test double)."""

    def estimate(self, graph, seeds):
        return exact_influence(graph, seeds)


class TestEstimationFramework:
    def test_paper_example_exact_on_both_sides(
        self, paper_graph, paper_partition_blocks
    ):
        """Theorem 4.6 lower half: Inf_H(pi(S)) >= Inf_G(S), checked exactly."""
        partition = Partition.from_blocks(paper_partition_blocks, 9)
        coarse, pi = coarsen(paper_graph, partition)
        from repro.core.result import CoarsenResult, CoarsenStats

        result = CoarsenResult(
            coarse=coarse, pi=pi, partition=partition, stats=CoarsenStats()
        )
        for seed in range(9):
            seeds = np.array([seed])
            inf_g = exact_influence(paper_graph, seeds)
            inf_h = estimate_on_coarse(result, seeds, _ExactEstimator())
            assert inf_h >= inf_g - 1e-9

    def test_estimation_close_on_robust_coarsening(self, two_cliques_graph):
        from repro.diffusion import estimate_influence

        result = coarsen_influence_graph(two_cliques_graph, r=8, rng=0)
        seeds = np.array([0])
        inf_g = estimate_influence(two_cliques_graph, seeds, 20_000, rng=3)
        est = estimate_on_coarse(
            result, seeds, make_estimator("mc", n_samples=20_000, rng=1)
        )
        # cliques are near-deterministic, so coarse estimate tracks closely
        assert est == pytest.approx(inf_g, rel=0.05)

    def test_rejects_empty_seed_set(self, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=2, rng=0)
        with pytest.raises(AlgorithmError):
            estimate_on_coarse(result, np.array([], dtype=np.int64),
                               make_estimator("mc", n_samples=10, rng=0))

    def test_seed_set_inside_one_block_deduplicates(self, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        est_one = estimate_on_coarse(
            result, np.array([0]), make_estimator("mc", n_samples=5_000, rng=2)
        )
        est_all = estimate_on_coarse(
            result, np.array([0, 1, 2, 3]), make_estimator("mc", n_samples=5_000, rng=2)
        )
        # same coarse seed set => statistically identical estimates
        assert est_one == pytest.approx(est_all, rel=0.05)


class TestMaximizationFramework:
    def test_pull_back_property(self, two_cliques_graph):
        """pi(S_out) must equal the coarse solution T (Algorithm 4)."""
        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        out = maximize_on_coarse(result, 2, DegreeHeuristic(), rng=0)
        coarse_seeds = out.extras["coarse_seeds"]
        assert set(result.pi[out.seeds].tolist()) == set(coarse_seeds.tolist())

    def test_selects_high_influence_block(self, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        out = maximize_on_coarse(
            result, 1, RISMaximizer(n_samples=2_000, rng=1), rng=0
        )
        # The upstream clique {0..3} reaches everything via the bridge, so
        # the single seed must be one of its members.
        assert out.seeds[0] in (0, 1, 2, 3)

    def test_rejects_nonpositive_k(self, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=2, rng=0)
        with pytest.raises(AlgorithmError):
            maximize_on_coarse(result, 0, DegreeHeuristic())

    def test_estimated_influence_passed_through(self, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        out = maximize_on_coarse(
            result, 1, RISMaximizer(n_samples=1_000, rng=2), rng=0
        )
        assert out.estimated_influence > 0

    def test_deterministic_pull_back_with_seed(self, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        a = maximize_on_coarse(result, 2, DegreeHeuristic(), rng=7)
        b = maximize_on_coarse(result, 2, DegreeHeuristic(), rng=7)
        assert np.array_equal(a.seeds, b.seeds)
