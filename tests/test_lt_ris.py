"""Tests for Linear Threshold RR sets and LT sketch-based maximization."""

import numpy as np
import pytest

from repro.algorithms import DSSAMaximizer, RISMaximizer
from repro.estimators import make_estimator
from repro.datasets import assign_weighted_cascade
from repro.diffusion import RRSampler, estimate_influence_lt
from repro.errors import AlgorithmError
from repro.graph import GraphBuilder

from .conftest import build_graph, random_graph


def wc(graph):
    return assign_weighted_cascade(graph)


class TestLTRRSets:
    def test_unknown_model_rejected(self, paper_graph):
        with pytest.raises(AlgorithmError):
            RRSampler(paper_graph, rng=0, model="sir")

    def test_lt_weights_validated(self):
        g = build_graph(3, [(0, 2, 0.8), (1, 2, 0.7)])  # mass 1.5 into v2
        with pytest.raises(AlgorithmError):
            RRSampler(g, rng=0, model="lt")

    def test_rr_set_is_a_path_containing_root(self):
        g = wc(random_graph(20, 60, seed=0))
        sampler = RRSampler(g, rng=1, model="lt")
        for _ in range(30):
            root = sampler.sample_root()
            rr = sampler.sample(root=root)
            assert root in rr
            assert len(set(rr.tolist())) == rr.size

    def test_unbiasedness_against_lt_simulation(self):
        """W * Pr[v in RR] must equal Inf_LT({v}) (the LT-RIS identity)."""
        g = wc(build_graph(4, [(0, 1, 1.0), (1, 2, 0.5), (3, 2, 0.5),
                               (2, 3, 1.0)]))
        sampler = RRSampler(g, rng=0, model="lt")
        hits = sum(0 in sampler.sample() for _ in range(30_000))
        sketch_estimate = g.n * hits / 30_000
        sim_estimate = estimate_influence_lt(g, np.array([0]), 30_000, rng=1)
        assert sketch_estimate == pytest.approx(sim_estimate, rel=0.05)


class TestLTMaximization:
    def _lt_star(self):
        # hub 0 is every leaf's only in-neighbour => WC weight 1.0 per edge
        builder = GraphBuilder(n=9)
        for leaf in range(1, 9):
            builder.add_edge(0, leaf, 0.9)
        return wc(builder.build())

    def test_ris_finds_hub_under_lt(self):
        g = self._lt_star()
        result = RISMaximizer(n_samples=2_000, rng=0, model="lt").select(g, 1)
        assert result.seeds.tolist() == [0]
        # deterministic star: hub influence is exactly 9 under LT/WC
        assert result.estimated_influence == pytest.approx(9.0, rel=0.1)

    def test_dssa_runs_under_lt(self):
        g = wc(random_graph(40, 150, seed=3))
        result = DSSAMaximizer(eps=0.25, delta=0.1, rng=0, model="lt").select(
            g, 3
        )
        assert result.seeds.size == 3

    def test_ris_estimator_under_lt_matches_simulation(self):
        g = wc(random_graph(15, 45, seed=5))
        est = make_estimator("ris", n_samples=30_000, rng=0, model="lt")
        seeds = np.array([0, 3])
        sim = estimate_influence_lt(g, seeds, 20_000, rng=1)
        assert est.estimate(g, seeds) == pytest.approx(sim, rel=0.07)
