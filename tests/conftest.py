"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.graph import GraphBuilder, InfluenceGraph


def build_graph(n: int, edges: list[tuple[int, int, float]]) -> InfluenceGraph:
    """Build a graph from an explicit edge list (test convenience)."""
    builder = GraphBuilder(n=n)
    for u, v, p in edges:
        builder.add_edge(u, v, p)
    return builder.build()


def random_graph(
    n: int, m: int, seed: int, p_low: float = 0.05, p_high: float = 0.9
) -> InfluenceGraph:
    """A random simple digraph with uniform random probabilities."""
    rng = np.random.default_rng(seed)
    tails = rng.integers(0, n, size=3 * m)
    heads = rng.integers(0, n, size=3 * m)
    probs = rng.uniform(p_low, p_high, size=3 * m)
    builder = GraphBuilder(n=n, combine_duplicates=True)
    builder.add_edges(tails, heads, probs)
    graph = builder.build()
    if graph.m > m:  # trim deterministically to ~m edges
        keep = np.zeros(graph.m, dtype=bool)
        keep[rng.choice(graph.m, size=m, replace=False)] = True
        t, h, p = graph.edge_arrays()
        graph = InfluenceGraph.from_edges(n, t[keep], h[keep], p[keep])
    return graph


@pytest.fixture
def paper_graph() -> InfluenceGraph:
    """The 9-vertex influence graph of Figure 1.

    Vertices are 0-indexed (paper's v1..v9 -> 0..8).  Probabilities follow
    the paper's worked example where the text states them: the two C1 -> v4
    edges have p = 0.3 and 0.2, so ``q(c1, c2) = 0.44`` (Example 4.2).  The
    remaining labels are not given in the text, so C1's internal edges carry
    0.6/0.7/0.8/0.9 — for which ``Rel(G[C1]) = 0.432`` exactly (asserted as
    a regression anchor in test_theorems).
    """
    edges = [
        (0, 1, 0.6), (1, 0, 0.7), (1, 2, 0.8), (2, 0, 0.9),
        (1, 3, 0.3), (2, 3, 0.2),
        (3, 4, 0.4), (4, 5, 0.5), (5, 4, 0.6),
        (5, 6, 0.3), (6, 7, 0.2), (7, 8, 0.4), (8, 7, 0.5),
    ]
    return build_graph(9, edges)


@pytest.fixture
def paper_partition_blocks() -> list[list[int]]:
    """The coarsened partition of Example 4.2: {C1..C5}."""
    return [[0, 1, 2], [3], [4, 5], [6], [7, 8]]


@pytest.fixture(autouse=True)
def _lock_sanitizer(request):
    """Run every threaded suite under the runtime lock sanitizer.

    Tests marked ``parallel``, ``dynamic``, or ``shard`` exercise the
    serving layer concurrently; the sanitizer (:mod:`repro.sanitize`)
    records their actual lock-acquisition orders and fails the test on an
    inversion, self-deadlock, or publish-while-holding-pool/cache-lock.
    (Shard workers additionally install their own sanitizer when the
    parent has one — see :mod:`repro.serve.shard`.)  Opt out with
    ``REPRO_SANITIZE=0`` (e.g. while bisecting an unrelated failure).
    """
    threaded = (request.node.get_closest_marker("parallel") is not None
                or request.node.get_closest_marker("dynamic") is not None
                or request.node.get_closest_marker("shard") is not None)
    if not threaded or os.environ.get("REPRO_SANITIZE", "1") == "0":
        yield
        return
    from repro.sanitize import (
        current_sanitizer,
        install_sanitizer,
        uninstall_sanitizer,
    )
    if current_sanitizer() is not None:  # a self-test already installed one
        yield
        return
    sanitizer = install_sanitizer()
    try:
        yield
        sanitizer.assert_clean()
    finally:
        uninstall_sanitizer(sanitizer)


@pytest.fixture
def two_cliques_graph() -> InfluenceGraph:
    """Two high-probability 4-cliques joined by one weak bridge.

    Both cliques coarsen to single vertices at moderate r; the bridge
    survives as a coarse edge.
    """
    builder = GraphBuilder(n=8)
    for base in (0, 4):
        for i in range(4):
            for j in range(4):
                if i != j:
                    builder.add_edge(base + i, base + j, 0.98)
    builder.add_edge(1, 5, 0.2)
    return builder.build()
