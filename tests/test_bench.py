"""Tests for the benchmark harness (measurement, budgets, rendering)."""

import numpy as np
import pytest

from repro.bench import (
    Budget,
    format_seconds,
    measure,
    render_series,
    render_table,
    run_budgeted,
    save_json,
)


class TestMeasure:
    def test_measures_result_and_time(self):
        run = measure(lambda: sum(range(1000)))
        assert run.result == 499500
        assert run.seconds >= 0
        assert run.peak_bytes >= 0

    def test_captures_allocation_peak(self):
        def alloc():
            return np.zeros(1_000_000)  # 8 MB

        run = measure(alloc)
        assert run.peak_mb > 7

    def test_exception_stops_tracing_cleanly(self):
        with pytest.raises(ValueError):
            measure(lambda: (_ for _ in ()).throw(ValueError("boom")))
        # a subsequent measure still works
        assert measure(lambda: 1).result == 1


class TestBudgets:
    def test_ok_run(self):
        out = run_budgeted(lambda: 42, Budget(max_bytes=1 << 30))
        assert out.ok
        assert out.run.result == 42

    def test_skip_on_estimated_oom(self):
        out = run_budgeted(
            lambda: pytest.fail("must not run"),
            Budget(max_bytes=100),
            estimated_bytes=1_000,
        )
        assert out.status == "skipped-oom"
        assert out.time_cell() == "OOM"
        assert out.memory_cell() == "OOM"

    def test_skip_on_estimated_timeout(self):
        out = run_budgeted(
            lambda: pytest.fail("must not run"),
            Budget(max_seconds=1.0),
            estimated_seconds=100.0,
        )
        assert out.status == "skipped-timeout"
        assert out.time_cell() == "TIMEOUT"

    def test_post_hoc_oom(self):
        out = run_budgeted(lambda: np.zeros(1_000_000), Budget(max_bytes=1000))
        assert out.status == "oom"

    def test_no_budget_always_ok(self):
        assert run_budgeted(lambda: "x").ok

    def test_track_memory_off(self):
        out = run_budgeted(lambda: 7, track_memory=False)
        assert out.ok
        assert out.run.peak_bytes == 0


class TestRendering:
    def test_format_seconds(self):
        assert format_seconds(0.0123) == "12.3 ms"
        assert format_seconds(2.5) == "2.50 s"
        assert format_seconds(1262.3) == "1,262.30 s"

    def test_render_table_alignment(self):
        text = render_table(
            "Table X", ["dataset", "time"], [["a", "1 s"], ["bbbb", "20 s"]]
        )
        lines = text.splitlines()
        assert lines[0] == "Table X"
        assert "dataset" in lines[2]
        assert len(lines) == 6

    def test_render_series(self):
        text = render_series(
            "Figure Y", "r", [1, 2], {"time": [0.1, 0.2], "mem": [5, 6]}
        )
        assert "Figure Y" in text
        assert "time" in text and "mem" in text

    def test_save_json(self, tmp_path):
        import json

        path = tmp_path / "out" / "data.json"
        save_json({"a": 1, "arr": [1, 2]}, str(path))
        assert json.loads(path.read_text()) == {"a": 1, "arr": [1, 2]}


class TestAsciiPlot:
    def test_renders_title_axes_and_legend(self):
        from repro.bench import ascii_plot

        text = ascii_plot(
            [1, 2, 4, 8], {"lin": [1, 2, 4, 8], "const": [3, 3, 3, 3]},
            title="demo", log_x=True,
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "o lin" in lines[-1]
        assert "x const" in lines[-1]
        assert "|" in lines[1]

    def test_marker_positions_monotone_series(self):
        from repro.bench import ascii_plot

        text = ascii_plot([0, 1, 2], {"s": [0.0, 1.0, 2.0]}, width=30,
                          height=9)
        rows = [l for l in text.splitlines() if "|" in l]
        cols = [row.index("o") for row in rows if "o" in row]
        # text rows run top (y_max) to bottom (y_min), so an increasing
        # series appears right-to-left going down
        assert cols == sorted(cols, reverse=True)

    def test_degenerate_inputs(self):
        from repro.bench import ascii_plot

        assert ascii_plot([], {}, title="t") == "t"
        flat = ascii_plot([1, 2], {"s": [5.0, 5.0]})
        assert "o" in flat
