"""Tests for the Monte-Carlo influence estimator against exact oracles."""

import numpy as np
import pytest

from repro.estimators import make_estimator
from repro.analysis import exact_influence
from repro.errors import AlgorithmError
from repro.graph import InfluenceGraph

from .conftest import build_graph, random_graph


class TestMonteCarloEstimator:
    def test_matches_exact_on_paper_graph(self, paper_graph):
        est = make_estimator("mc", n_samples=30_000, rng=0)
        for seed in (0, 3, 6):
            exact = exact_influence(paper_graph, np.array([seed]))
            got = est.estimate(paper_graph, np.array([seed]))
            assert got == pytest.approx(exact, rel=0.03)

    def test_matches_exact_on_random_tiny_graphs(self):
        for seed in range(4):
            g = random_graph(7, 12, seed=seed, p_low=0.2, p_high=0.8)
            est = make_estimator("mc", n_samples=20_000, rng=seed)
            exact = exact_influence(g, np.array([0]))
            assert est.estimate(g, np.array([0])) == pytest.approx(exact, rel=0.05)

    def test_weighted_graph_estimate(self):
        g = InfluenceGraph.from_edges(
            2, np.array([0]), np.array([1]), np.array([0.5]),
            weights=np.array([10, 6]),
        )
        est = make_estimator("mc", n_samples=40_000, rng=1)
        # 10 + 0.5 * 6 = 13
        assert est.estimate(g, np.array([0])) == pytest.approx(13.0, rel=0.03)

    def test_stats_accumulate_across_estimates(self, paper_graph):
        est = make_estimator("mc", n_samples=100, rng=0)
        est.estimate(paper_graph, np.array([0]))
        est.estimate(paper_graph, np.array([1]))
        assert est.stats.simulations == 200
        assert est.stats.examined_edges > 0

    def test_rejects_nonpositive_simulations(self):
        with pytest.raises(AlgorithmError):
            make_estimator("mc", n_samples=0)

    def test_full_seed_set_gives_total_weight(self, paper_graph):
        est = make_estimator("mc", n_samples=10, rng=0)
        assert est.estimate(paper_graph, np.arange(9)) == pytest.approx(9.0)

    def test_deterministic_given_seed(self, paper_graph):
        a = make_estimator("mc", n_samples=500, rng=9).estimate(paper_graph, np.array([0]))
        b = make_estimator("mc", n_samples=500, rng=9).estimate(paper_graph, np.array([0]))
        assert a == b
