"""Tests for k-core decomposition and the core–fringe split."""

import numpy as np
import pytest

from repro.analysis.structure import core_fringe_split, core_numbers
from repro.datasets import core_fringe_graph

from .conftest import build_graph, random_graph


class TestCoreNumbers:
    def test_path_graph_is_1_core(self):
        g = build_graph(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)])
        assert core_numbers(g).tolist() == [1, 1, 1, 1]

    def test_bidirected_triangle(self):
        edges = [(u, v, 0.5) for u in range(3) for v in range(3) if u != v]
        g = build_graph(3, edges)
        # each vertex has undirected multidegree 4 (two in + two out)
        assert core_numbers(g).tolist() == [4, 4, 4]

    def test_clique_with_pendant(self):
        edges = [(u, v, 0.5) for u in range(4) for v in range(4) if u != v]
        edges.append((0, 4, 0.5))
        g = build_graph(5, edges)
        numbers = core_numbers(g)
        assert numbers[4] == 1
        assert (numbers[:4] >= 6).all()

    def test_isolated_vertices_are_0_core(self):
        g = build_graph(3, [(0, 1, 0.5)])
        assert core_numbers(g)[2] == 0

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        for seed in range(5):
            raw = random_graph(25, 80, seed=seed)
            tails, heads, _ = raw.edge_arrays()
            # networkx core_number needs a simple graph: keep one directed
            # edge per undirected pair so our multidegree equals nx's degree
            pairs = sorted({
                (min(u, v), max(u, v))
                for u, v in zip(tails.tolist(), heads.tolist())
            })
            g = build_graph(raw.n, [(u, v, 0.5) for u, v in pairs])
            nx_graph = nx.Graph()
            nx_graph.add_nodes_from(range(raw.n))
            nx_graph.add_edges_from(pairs)
            expected = nx.core_number(nx_graph)
            got = core_numbers(g)
            assert {v: int(got[v]) for v in range(raw.n)} == expected


class TestCoreFringeSplit:
    def test_synthetic_core_fringe_graph_recovered(self):
        g = core_fringe_graph(40, 200, core_out_degree=10, rng=0)
        core, fringe = core_fringe_split(g)
        # the generator's dense core (vertices 0..39) must land in the core
        assert set(range(40)) <= set(core.tolist())
        # the split is a partition
        assert len(core) + len(fringe) == g.n

    def test_explicit_threshold(self):
        g = build_graph(4, [(0, 1, 0.5), (1, 0, 0.5), (2, 3, 0.5)])
        core, fringe = core_fringe_split(g, k=2)
        assert set(core.tolist()) == {0, 1}
