"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import read_edge_list, write_edge_list

from .conftest import build_graph


@pytest.fixture
def edge_list(tmp_path):
    g = build_graph(6, [
        (0, 1, 0.9), (1, 0, 0.9), (1, 2, 0.5), (2, 3, 0.4),
        (3, 4, 0.4), (4, 5, 0.3),
    ])
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    return str(path)


class TestDatasets:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ameblo" in out
        assert "soc-slashdot" in out


class TestInfo:
    def test_edge_list_input(self, edge_list, capsys):
        assert main(["info", edge_list]) == 0
        out = capsys.readouterr().out
        assert "vertices: 6" in out
        assert "edges:    6" in out

    def test_dataset_input(self, capsys):
        assert main(["info", "dataset:wiki-talk:uc:1"]) == 0
        out = capsys.readouterr().out
        assert "vertices: 6,000" in out

    def test_undirected_flag(self, edge_list, capsys):
        assert main(["info", edge_list, "--undirected"]) == 0
        assert "edges:    10" in capsys.readouterr().out  # 6 + reverses - dups


class TestCoarsen:
    def test_basic(self, edge_list, capsys):
        assert main(["coarsen", edge_list, "-r", "4", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "|W| =" in out
        assert "|F| =" in out

    def test_output_files(self, edge_list, tmp_path, capsys):
        out_path = str(tmp_path / "coarse.txt")
        assert main(
            ["coarsen", edge_list, "-r", "4", "--seed", "0", "-o", out_path]
        ) == 0
        coarse = read_edge_list(out_path)
        assert coarse.n >= 1
        mapping = np.loadtxt(out_path + ".mapping", dtype=np.int64)
        assert mapping.size == 6

    def test_bounds_report(self, edge_list, capsys):
        assert main(
            ["coarsen", edge_list, "-r", "2", "--seed", "0", "--bounds"]
        ) == 0
        out = capsys.readouterr().out
        assert "reliability factor" in out
        assert "Theorem 6.1" in out

    def test_parallel_flags(self, edge_list, capsys):
        assert main(
            ["coarsen", edge_list, "-r", "4", "--seed", "0",
             "--executor", "thread", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "parallel: executor=thread workers=2" in out
        assert "meet tree depth 1" in out

    def test_workers_clamp_reported(self, edge_list, capsys):
        assert main(
            ["coarsen", edge_list, "-r", "2", "--seed", "0",
             "--executor", "serial", "--workers", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "workers=2 (clamped from 8)" in out

    def test_workers_alone_defaults_to_thread_executor(self, edge_list,
                                                       capsys):
        assert main(
            ["coarsen", edge_list, "-r", "4", "--seed", "0",
             "--workers", "2"]
        ) == 0
        assert "executor=thread" in capsys.readouterr().out

    def test_parallel_executors_agree_on_output_files(self, edge_list,
                                                      tmp_path, capsys):
        """serial and thread executors write identical coarse graph and
        mapping for the same (r, workers, seed) — the cross-executor
        determinism contract surfaced at the CLI level."""
        serial = str(tmp_path / "serial.txt")
        threaded = str(tmp_path / "thread.txt")
        for executor, path in (("serial", serial), ("thread", threaded)):
            assert main(["coarsen", edge_list, "-r", "4", "--seed", "0",
                         "--executor", executor, "--workers", "2",
                         "-o", path]) == 0
        assert read_edge_list(serial) == read_edge_list(threaded)
        assert np.array_equal(
            np.loadtxt(serial + ".mapping", dtype=np.int64),
            np.loadtxt(threaded + ".mapping", dtype=np.int64))


class TestEstimate:
    def test_plain(self, edge_list, capsys):
        assert main(
            ["estimate", edge_list, "--seeds", "0", "--simulations", "500"]
        ) == 0
        assert "Inf([0])" in capsys.readouterr().out

    def test_coarsened(self, edge_list, capsys):
        assert main(
            ["estimate", edge_list, "--seeds", "0,1", "--simulations", "500",
             "--coarsen", "-r", "4"]
        ) == 0
        assert "via coarse graph" in capsys.readouterr().out

    def test_bad_seed_list(self, edge_list, capsys):
        assert main(["estimate", edge_list, "--seeds", "0,banana"]) == 2
        assert "error" in capsys.readouterr().err

    def test_out_of_range_seed(self, edge_list, capsys):
        assert main(["estimate", edge_list, "--seeds", "99"]) == 2


class TestMaximize:
    @pytest.mark.parametrize("algorithm", ["degree", "ris", "dssa"])
    def test_algorithms(self, edge_list, capsys, algorithm):
        assert main(
            ["maximize", edge_list, "-k", "2", "--algorithm", algorithm,
             "--simulations", "500", "--eps", "0.25", "--seed", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "seeds:" in out
        seeds = out.splitlines()[0].split(":")[1].strip().split(",")
        assert len(seeds) == 2

    def test_coarsened(self, edge_list, capsys):
        assert main(
            ["maximize", edge_list, "-k", "1", "--algorithm", "degree",
             "--coarsen", "-r", "4", "--seed", "0"]
        ) == 0
        assert "via coarse graph" in capsys.readouterr().out


class TestMaximizeLT:
    def test_lt_model_on_wc_weights(self, tmp_path, capsys):
        from repro.datasets import assign_weighted_cascade
        from .conftest import build_graph

        g = assign_weighted_cascade(build_graph(6, [
            (0, 1, 0.9), (0, 2, 0.9), (0, 3, 0.9), (4, 5, 0.5),
        ]))
        path = tmp_path / "wc.txt"
        write_edge_list(g, path)
        assert main(["maximize", str(path), "-k", "1", "--algorithm", "ris",
                     "--model", "lt", "--simulations", "1000",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "seeds: 0"

    def test_lt_with_coarsen_rejected(self, edge_list, capsys):
        assert main(["maximize", edge_list, "-k", "1", "--model", "lt",
                     "--coarsen"]) == 2
        assert "IC-only" in capsys.readouterr().err

    def test_lt_with_celf_rejected(self, edge_list, capsys):
        assert main(["maximize", edge_list, "-k", "1", "--model", "lt",
                     "--algorithm", "celf"]) == 2
