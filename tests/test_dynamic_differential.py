"""Stateful differential proof: dynamic serving == cold rebuild, always.

A Hypothesis :class:`RuleBasedStateMachine` drives a live
:class:`~repro.serve.DynamicModel` through random insert / delete /
estimate / maximize steps and, after *every* step, checks the maintained
model against a cold :func:`repro.core.coarsen_addressable` of the
mutated graph with the same seed:

* ``H`` bit-for-bit (CSR digest covers heads, probs and vertex weights —
  i.e. every coarse edge bundle probability),
* ``pi`` element-for-element and the partition itself,
* query answers equal to those of a *fresh* service over the mutated
  graph (so the whole pool/estimator path agrees, not just the model),
* pruning accounting: every mutation touches each of the ``r`` samples
  exactly once — as a coin-flip skip, a structure-preserving pruned hit
  (counted inside ``scc_skipped``, broken out as ``scc_pruned``), or an
  SCC recomputation — so
  ``scc_skipped + scc_recomputations == r * (insertions + deletions)``.

The suite carries ``@pytest.mark.dynamic``; CI runs it in a dedicated
job with a bounded example budget (the settings below keep a full run in
seconds, not minutes).
"""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core import coarsen_addressable
from repro.serve import InfluenceService, ServiceConfig
from .conftest import random_graph

pytestmark = pytest.mark.dynamic

N_VERTICES = 10
_CONFIG = dict(r=3, seed=11, sampler="addressable", n_samples=512,
               min_samples=64, max_workers=2)


class DynamicDifferentialMachine(RuleBasedStateMachine):
    """Random mutations + queries, cold-rebuild-checked after every step."""

    def __init__(self) -> None:
        super().__init__()
        self.service = InfluenceService(ServiceConfig(**_CONFIG))
        # A fresh service per machine would also work for the query oracle,
        # but sharing one keeps the run inside the example budget; its cache
        # never aliases the dynamic lineage because keys are content
        # addresses of distinct graphs.
        self.oracle = InfluenceService(ServiceConfig(**_CONFIG))
        self.dynamic = None
        self.edges: "dict[tuple[int, int], float]" = {}

    @initialize(seed=st.integers(min_value=0, max_value=5))
    def attach(self, seed: int) -> None:
        graph = random_graph(N_VERTICES, 22, seed=seed, p_low=0.2, p_high=1.0)
        tails, heads, probs = graph.edge_arrays()
        self.edges = {
            (int(u), int(v)): float(p) for u, v, p in zip(tails, heads, probs)
        }
        self.dynamic = self.service.attach_dynamic(graph)

    # -- mutations -----------------------------------------------------

    @rule(data=st.data(),
          p=st.floats(min_value=0.05, max_value=1.0,
                      allow_nan=False, allow_infinity=False))
    def insert(self, data, p: float) -> None:
        absent = sorted(
            (u, v)
            for u in range(N_VERTICES) for v in range(N_VERTICES)
            if u != v and (u, v) not in self.edges
        )
        if not absent:
            return
        u, v = data.draw(st.sampled_from(absent), label="new edge")
        out = self.dynamic.insert_edge(u, v, p)
        self.edges[(u, v)] = p
        assert out["applied"] == 1
        assert out["epoch"] == self.dynamic.epoch

    @rule(data=st.data())
    def delete(self, data) -> None:
        if not self.edges:
            return
        u, v = data.draw(st.sampled_from(sorted(self.edges)), label="victim")
        out = self.dynamic.delete_edge(u, v)
        del self.edges[(u, v)]
        assert out["applied"] == 1

    # -- queries -------------------------------------------------------

    @rule(data=st.data())
    def estimate(self, data) -> None:
        seeds = data.draw(
            st.lists(st.integers(min_value=0, max_value=N_VERTICES - 1),
                     min_size=1, max_size=3, unique=True),
            label="seeds",
        )
        epoch, result = self.dynamic.estimate(seeds)
        assert epoch == self.dynamic.epoch
        expected = self.oracle.estimate(self.dynamic.graph, seeds)
        assert result.value == expected.value

    @rule(k=st.integers(min_value=1, max_value=3))
    def maximize(self, k: int) -> None:
        epoch, result = self.dynamic.maximize(k)
        expected = self.oracle.maximize(self.dynamic.graph, k)
        assert list(result.seeds) == list(expected.seeds)
        assert result.estimated_influence == expected.estimated_influence

    # -- the differential invariant ------------------------------------

    @invariant()
    def dynamic_equals_cold_rebuild(self) -> None:
        if self.dynamic is None:
            return
        graph = self.dynamic.graph
        # The mirror and the served graph must agree exactly.
        tails, heads, probs = graph.edge_arrays()
        served = {
            (int(u), int(v)): float(p) for u, v, p in zip(tails, heads, probs)
        }
        assert served == self.edges
        cold = coarsen_addressable(graph, r=_CONFIG["r"],
                                   seed=_CONFIG["seed"])
        model = self.dynamic.model
        assert model.coarse.digest() == cold.coarse.digest()
        assert np.array_equal(model.pi, cold.pi)
        assert model.partition == cold.partition

    @invariant()
    def pruning_counters_consistent(self) -> None:
        if self.dynamic is None:
            return
        stats = self.dynamic._coarsener.stats
        mutations = stats.insertions + stats.deletions
        assert (stats.scc_skipped + stats.scc_recomputations
                == _CONFIG["r"] * mutations)
        assert stats.scc_pruned <= stats.scc_skipped
        assert stats.full_rebuilds <= mutations

    def teardown(self) -> None:
        self.service.close()
        self.oracle.close()


DynamicDifferentialMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None,
)
TestDynamicDifferential = DynamicDifferentialMachine.TestCase
