"""Live-graph serving: epochs, pools, caches, archives, HTTP.

Covers the serving half of the dynamic story (the model-level equivalence
proof lives in ``test_dynamic_differential.py``):

* the epoch protocol — mutations advance a content-addressed epoch
  without cold rebuilds, and queries racing updates always observe
  self-consistent ``(epoch, result)`` pairs;
* :class:`~repro.serve.SamplePool` lifecycle under mutation — retained
  (same object, same prefix) when the coarse model survives a delta,
  prefix-invalidated when it does not, and rebound after cache eviction
  with bit-identical answers;
* warm archives of mutated models — reload at the right epoch, and
  stale-epoch (forged) archives degrade to a miss, never a wrong model;
* the HTTP mutation surface — ``/insert_edge`` / ``/delete_edge`` /
  ``/apply_deltas`` round trips, error mapping, and ``--readonly``.
"""

import json
import os
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.core import coarsen_addressable
from repro.errors import AlgorithmError
from repro.graph import GraphBuilder
from repro.serve import InfluenceService, ServiceConfig
from repro.serve.http import make_server

from .conftest import build_graph, random_graph

pytestmark = pytest.mark.dynamic


def _config(**overrides) -> ServiceConfig:
    base = dict(r=4, seed=5, sampler="addressable", n_samples=400,
                min_samples=64, max_workers=2)
    base.update(overrides)
    return ServiceConfig(**base)


def _ring_graph(n: int = 12, p: float = 0.6):
    """A directed ring — every chord (i, i+2) is known-absent."""
    return build_graph(n, [(i, (i + 1) % n, p) for i in range(n)])


class TestEpochProtocol:
    def test_attach_requires_addressable_sampler(self):
        g = _ring_graph()
        with InfluenceService(ServiceConfig(r=4, sampler="stream")) as svc:
            with pytest.raises(AlgorithmError, match="addressable"):
                svc.attach_dynamic(g)

    def test_addressable_sampler_requires_serial_executor(self):
        with pytest.raises(ValueError, match="serial"):
            ServiceConfig(sampler="addressable", executor="process")

    def test_mutations_never_cold_rebuild(self):
        """The acceptance-criterion path: warm mutations skip model builds."""
        g = _ring_graph()
        registry = obs.MetricsRegistry()
        with InfluenceService(_config()) as svc:
            dynamic = svc.attach_dynamic(g)
            dynamic.estimate([0])  # warm the pool
            with obs.use_metrics(registry):
                out = dynamic.insert_edge(0, 2, 0.5)
                _, result = dynamic.estimate([0])
            assert out["epoch"] == 1
            assert result.value > 0
        # The mutated-epoch query hit the model the mutation published:
        # zero cache misses means zero cold coarsenings after attach.
        assert registry.counter("serve.cache.miss") == 0
        assert registry.counter("serve.cache.hit") >= 1
        assert registry.counter("serve.dynamic.deltas") == 1

    def test_concurrent_readers_see_consistent_epoch_result_pairs(self):
        g = _ring_graph()
        config = _config(max_models=32, n_samples=256)
        epoch_graphs = {}
        observed = []
        observed_lock = threading.Lock()
        stop = threading.Event()
        with InfluenceService(config) as svc:
            dynamic = svc.attach_dynamic(g)
            epoch_graphs[0] = dynamic.graph

            def reader():
                while not stop.is_set():
                    epoch, result = dynamic.estimate([0, 1])
                    with observed_lock:
                        observed.append((epoch, result.value))

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for t in threads:
                t.start()
            # The single writer: insert then delete each chord in turn.
            for i in range(5):
                out = dynamic.insert_edge(i, (i + 2) % 12, 0.5)
                epoch_graphs[out["epoch"]] = dynamic.graph
                out = dynamic.delete_edge(i, (i + 2) % 12)
                epoch_graphs[out["epoch"]] = dynamic.graph
            stop.set()
            for t in threads:
                t.join()
        assert observed
        # Every (epoch, value) pair must be exactly the answer a fresh
        # service gives for that epoch's graph — a torn read (epoch e
        # paired with epoch e±1's model) would break this bit-for-bit.
        expected = {}
        with InfluenceService(config) as oracle:
            for epoch, value in observed:
                if epoch not in expected:
                    expected[epoch] = oracle.estimate(
                        epoch_graphs[epoch], [0, 1]).value
                assert value == expected[epoch], f"torn read at epoch {epoch}"

    def test_batched_equals_sequential_after_epoch_bump(self):
        g = _ring_graph()
        seed_sets = [[0], [1, 2], [3], [4, 5, 6]]
        with InfluenceService(_config()) as svc:
            dynamic = svc.attach_dynamic(g)
            dynamic.insert_edge(0, 2, 0.7)
            dynamic.delete_edge(0, 2)
            dynamic.insert_edge(1, 3, 0.4)
            graph = dynamic.graph
            batched = svc.estimate_many(graph, seed_sets)
            sequential = [svc.estimate(graph, s) for s in seed_sets]
        assert [r.value for r in batched] == [r.value for r in sequential]


class TestPoolLifecycle:
    def test_pool_retained_when_coarse_model_survives(self):
        # A reliable 3-cycle {0,1,2} plus a pendant vertex: inserting the
        # chord 0->2 (p=1) lands inside the block — every sample's SCCs,
        # hence H and pi, are unchanged, so the pool must be retained.
        g = build_graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0),
                            (0, 3, 0.5)])
        registry = obs.MetricsRegistry()
        with InfluenceService(_config()) as svc:
            dynamic = svc.attach_dynamic(g)
            model_before = dynamic.model
            _, before = dynamic.estimate([0])
            pool_before = svc._pools[dynamic.key.for_state("pool")]
            with obs.use_metrics(registry):
                out = dynamic.insert_edge(0, 2, 1.0)
            assert out["model_retained"] is True
            assert dynamic.model is model_before
            assert svc._pools[dynamic.key.for_state("pool")] is pool_before
            _, after = dynamic.estimate([0])
            assert after.value == before.value
        assert registry.counter("serve.dynamic.pool.retained") == 1
        assert registry.counter("serve.dynamic.pool.invalidated_prefix") == 0

    def test_pool_prefix_invalidated_on_structural_change(self):
        # Two reliable 2-cycles bridged both ways: one strongly-connected
        # block.  Deleting one bridge direction splits it — the coarse
        # graph changes, so the old pool's prefix must be invalidated.
        g = build_graph(4, [(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0),
                            (3, 2, 1.0), (0, 2, 1.0), (2, 0, 1.0)])
        registry = obs.MetricsRegistry()
        with InfluenceService(_config()) as svc:
            dynamic = svc.attach_dynamic(g)
            assert dynamic.model.coarse.n == 1
            dynamic.estimate([0])
            pool_size = svc._pools[dynamic.key.for_state("pool")].size
            assert pool_size > 0
            with obs.use_metrics(registry):
                out = dynamic.delete_edge(2, 0)
            assert out["model_retained"] is False
            assert dynamic.model.coarse.n == 2
            # The new epoch still answers, from a fresh lazily-built pool.
            _, result = dynamic.estimate([0])
            with InfluenceService(_config()) as oracle:
                assert result.value == oracle.estimate(dynamic.graph,
                                                       [0]).value
        assert registry.counter(
            "serve.dynamic.pool.invalidated_prefix") == pool_size
        assert registry.counter("serve.dynamic.pool.retained") == 0

    def test_eviction_rebuilds_identical_model_and_rebinds_pool(self):
        g = _ring_graph()
        registry = obs.MetricsRegistry()
        with InfluenceService(_config(max_models=2)) as svc:
            dynamic = svc.attach_dynamic(g)
            dynamic.insert_edge(0, 2, 0.6)  # epoch 1
            _, before = dynamic.estimate([0, 1])
            digest_before = dynamic.model.coarse.digest()
            # Evict the epoch-1 model by serving two unrelated graphs.
            svc.estimate(random_graph(10, 20, seed=7), [0])
            svc.estimate(random_graph(10, 20, seed=8), [0])
            assert dynamic.key not in svc.cache
            with obs.use_metrics(registry):
                _, after = dynamic.estimate([0, 1])
        # The miss proves a rebuild happened; addressable coins make it
        # bit-identical, so the rebound pool returns the same answer.
        assert registry.counter("serve.cache.miss") == 1
        assert after.value == before.value
        assert dynamic.model.coarse.digest() == digest_before


class TestWarmArchives:
    def test_mutated_model_reloads_at_its_epoch(self, tmp_path):
        g = _ring_graph()
        config = _config(warm_dir=str(tmp_path))
        registry = obs.MetricsRegistry()
        with InfluenceService(config) as svc:
            dynamic = svc.attach_dynamic(g)
            dynamic.insert_edge(0, 2, 0.5)
            dynamic.insert_edge(1, 3, 0.3)  # epoch 2
            mutated = dynamic.graph
            path = svc.persist(mutated)
            assert path is not None and os.path.exists(path)
            _, expected = dynamic.estimate([0, 1])
        with InfluenceService(config) as fresh:
            with obs.use_metrics(registry):
                result = fresh.estimate(mutated, [0, 1])
        assert registry.counter("serve.cache.warm_hit") == 1
        assert result.value == expected.value

    def test_stale_epoch_archive_degrades_to_miss(self, tmp_path):
        config = _config(warm_dir=str(tmp_path))
        registry = obs.MetricsRegistry()
        with InfluenceService(config) as svc:
            g0 = _ring_graph()
            dynamic = svc.attach_dynamic(g0)
            path0 = svc.persist(g0)  # archive of epoch 0
            dynamic.insert_edge(0, 2, 0.5)
            g1 = dynamic.graph
            token1 = svc.key_for(g1).token()
        # Forge a stale-epoch archive: epoch 0's payload under epoch 1's
        # content address (as a corrupted sync or truncated write might).
        os.rename(path0, os.path.join(str(tmp_path), token1 + ".npz"))
        with InfluenceService(config) as fresh:
            with obs.use_metrics(registry):
                model = fresh.model_for(g1)
        # The stamped key inside the archive disagrees with the probe key,
        # so the forgery is a plain miss — and the rebuilt model is the
        # true epoch-1 model, not the stale epoch-0 one.
        assert registry.counter("serve.cache.warm_hit") == 0
        assert registry.counter("serve.cache.miss") == 1
        cold = coarsen_addressable(g1, r=config.r, seed=config.seed)
        assert model.coarse.digest() == cold.coarse.digest()


class TestHTTPDynamic:
    @pytest.fixture
    def served(self):
        g = _ring_graph()
        service = InfluenceService(_config())
        dynamic = service.attach_dynamic(g)
        server = make_server(service, g, port=0, dynamic=dynamic)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{server.server_address[1]}", dynamic
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def _post(self, url, body):
        req = urllib.request.Request(
            url, data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())

    def test_mutation_round_trip(self, served):
        base, dynamic = served
        status, body = self._post(base + "/estimate", {"seeds": [0, 1]})
        assert status == 200 and body["epoch"] == 0
        status, body = self._post(base + "/insert_edge",
                                  {"u": 0, "v": 2, "p": 0.5})
        assert status == 200
        assert body["epoch"] == 1 and body["applied"] == 1
        status, body = self._post(base + "/delete_edge", {"u": 0, "v": 2})
        assert status == 200 and body["epoch"] == 2
        status, body = self._post(base + "/apply_deltas", {"deltas": [
            {"op": "insert", "u": 3, "v": 5, "p": 0.4},
            {"op": "insert", "u": 5, "v": 3, "p": 0.4},
        ]})
        assert status == 200
        assert body["epoch"] == 3 and body["applied"] == 2
        status, body = self._post(base + "/estimate", {"seeds": [0, 1]})
        assert status == 200 and body["epoch"] == 3
        with urllib.request.urlopen(base + "/stats") as resp:
            stats = json.loads(resp.read())
        assert stats["dynamic"][0]["epoch"] == 3
        assert stats["dynamic"][0]["m"] == dynamic.graph.m

    def test_bad_mutations_map_to_400(self, served):
        base, _ = served
        for payload, route in [
            ({"u": 0, "v": 1, "p": 0.5}, "/insert_edge"),   # duplicate
            ({"u": 0, "v": 0, "p": 0.5}, "/insert_edge"),   # self-loop
            ({"u": 0, "v": 2, "p": 1.5}, "/insert_edge"),   # bad p
            ({"u": 0, "v": 2}, "/delete_edge"),             # missing edge
            ({"u": 0, "v": 2}, "/insert_edge"),             # missing p
            ({"deltas": {"op": "insert"}}, "/apply_deltas"),  # not a list
            ({"deltas": [{"op": "warp", "u": 0, "v": 2}]},
             "/apply_deltas"),                              # unknown op
        ]:
            with pytest.raises(urllib.error.HTTPError) as exc:
                self._post(base + route, payload)
            assert exc.value.code == 400, (route, payload)

    def test_atomic_batch_rejection_leaves_epoch_unchanged(self, served):
        base, dynamic = served
        epoch_before = dynamic.epoch
        m_before = dynamic.graph.m
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._post(base + "/apply_deltas", {"deltas": [
                {"op": "insert", "u": 0, "v": 2, "p": 0.4},
                {"op": "insert", "u": 0, "v": 1, "p": 0.4},  # duplicate
            ]})
        assert exc.value.code == 400
        assert dynamic.epoch == epoch_before
        assert dynamic.graph.m == m_before

    def test_readonly_rejects_mutations_with_403(self):
        g = _ring_graph()
        service = InfluenceService(_config())
        dynamic = service.attach_dynamic(g)
        server = make_server(service, g, port=0, dynamic=dynamic,
                             readonly=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with pytest.raises(urllib.error.HTTPError) as exc:
                self._post(base + "/insert_edge", {"u": 0, "v": 2, "p": 0.5})
            assert exc.value.code == 403
            status, body = self._post(base + "/estimate", {"seeds": [0]})
            assert status == 200 and body["epoch"] == 0
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_static_server_rejects_mutations_with_400(self):
        g = _ring_graph()
        service = InfluenceService(ServiceConfig(r=4, n_samples=400,
                                                 min_samples=64))
        server = make_server(service, g, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with pytest.raises(urllib.error.HTTPError) as exc:
                self._post(base + "/insert_edge", {"u": 0, "v": 2, "p": 0.5})
            assert exc.value.code == 400
            status, body = self._post(base + "/estimate", {"seeds": [0]})
            assert status == 200 and "epoch" not in body
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestChainedKeys:
    """Epoch keys derive from (parent digest, deltas), not an O(m) re-hash."""

    def test_epoch_key_is_the_chained_digest(self):
        from repro.core.dynamic import Delta
        from repro.serve.dynamic import chain_digest

        g = _ring_graph()
        with InfluenceService(_config()) as svc:
            dynamic = svc.attach_dynamic(g)
            root = dynamic.key.graph_digest
            assert root == g.digest()  # anchored at true content address
            d1 = [Delta("insert", 0, 2, 0.5)]
            dynamic.apply_deltas(d1)
            expect = chain_digest(root, d1)
            assert dynamic.key.graph_digest == expect
            # A blake2b of the full CSR cannot coincide with the chain
            # value, so matching it proves the epoch graph was *stamped*,
            # not re-hashed.
            assert dynamic.graph._digest == expect
            d2 = [Delta("delete", 0, 2), Delta("insert", 1, 3, 0.4)]
            dynamic.apply_deltas(d2)
            assert dynamic.key.graph_digest == chain_digest(expect, d2)

    def test_counters_and_audit_interval(self):
        g = _ring_graph()
        registry = obs.MetricsRegistry()
        with InfluenceService(_config(digest_audit_interval=2)) as svc:
            dynamic = svc.attach_dynamic(g)
            with obs.use_metrics(registry):
                dynamic.insert_edge(0, 2, 0.5)   # epoch 1: chained
                dynamic.insert_edge(1, 3, 0.4)   # epoch 2: audit
                dynamic.delete_edge(0, 2)        # epoch 3: chained
                dynamic.insert_edge(2, 5, 0.3)   # epoch 4: audit
            # Audited epochs re-anchor to the true content address.
            mutated = dynamic.graph
            from repro.graph import InfluenceGraph
            fresh = InfluenceGraph.from_edges(mutated.n,
                                              *mutated.edge_arrays())
            assert dynamic.key.graph_digest == fresh.digest()
        assert registry.counter("serve.dynamic.key.chained") == 2
        assert registry.counter("serve.dynamic.key.audits") == 2
        assert registry.counter("serve.dynamic.key.drift") == 0

    def test_chained_epochs_skip_full_hashes(self, monkeypatch):
        from repro.graph.influence_graph import InfluenceGraph

        fresh_hashes = [0]
        real = InfluenceGraph.digest

        def counting(self):
            if self._digest is None:
                fresh_hashes[0] += 1
            return real(self)

        monkeypatch.setattr(InfluenceGraph, "digest", counting)

        def mutate(interval):
            g = _ring_graph()
            with InfluenceService(
                _config(digest_audit_interval=interval)
            ) as svc:
                dynamic = svc.attach_dynamic(g)
                before = fresh_hashes[0]
                dynamic.insert_edge(0, 2, 0.5)
                dynamic.insert_edge(1, 3, 0.4)
                dynamic.delete_edge(0, 2)
                return fresh_hashes[0] - before

        chained = mutate(interval=64)
        audited = mutate(interval=1)
        # Every audited epoch pays two full hashes (epoch graph + its cold
        # re-canonicalisation) that chained epochs skip entirely.
        assert audited >= chained + 2 * 3

    def test_audit_detects_drifted_edge_arrays(self):
        g = _ring_graph()
        registry = obs.MetricsRegistry()
        with InfluenceService(_config(digest_audit_interval=1)) as svc:
            dynamic = svc.attach_dynamic(g)
            # Corrupt the maintained CSR order: swap the two head entries
            # of vertex 0's bucket (the ring edge and a fresh chord).
            dynamic.insert_edge(0, 2, 0.5)
            coars = dynamic._coarsener
            lo, hi = coars._indptr[0], coars._indptr[1]
            assert hi - lo >= 2
            coars._heads[lo], coars._heads[lo + 1] = (
                int(coars._heads[lo + 1]), int(coars._heads[lo]))
            coars._graph_cache = None
            with obs.use_metrics(registry):
                with pytest.raises(AlgorithmError, match="digest audit"):
                    dynamic.insert_edge(3, 7, 0.4)
        assert registry.counter("serve.dynamic.key.drift") == 1

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="digest_audit_interval"):
            ServiceConfig(digest_audit_interval=0)
