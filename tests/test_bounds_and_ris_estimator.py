"""Tests for the guarantee report and the RR-set estimator extension."""

import numpy as np
import pytest

from repro.estimators import make_estimator
from repro.analysis import exact_influence, guarantee_report
from repro.core import coarsen_influence_graph, estimate_on_coarse
from repro.errors import AlgorithmError

from .conftest import build_graph, random_graph


class TestRISEstimator:
    def test_matches_exact_on_tiny_graph(self, paper_graph):
        est = make_estimator("ris", n_samples=40_000, rng=0)
        for seed in (0, 3):
            exact = exact_influence(paper_graph, np.array([seed]))
            got = est.estimate(paper_graph, np.array([seed]))
            assert got == pytest.approx(exact, rel=0.05)

    def test_matches_monte_carlo_on_seed_sets(self):
        g = random_graph(30, 100, seed=1, p_low=0.1, p_high=0.6)
        ris = make_estimator("ris", n_samples=30_000, rng=0)
        mc = make_estimator("mc", n_samples=30_000, rng=1)
        seeds = np.array([0, 5, 9])
        assert ris.estimate(g, seeds) == pytest.approx(
            mc.estimate(g, seeds), rel=0.05
        )

    def test_sketch_reused_across_queries(self, paper_graph):
        est = make_estimator("ris", n_samples=1_000, rng=0)
        est.estimate(paper_graph, np.array([0]))
        edges_after_first = est.examined_edges
        est.estimate(paper_graph, np.array([1]))
        assert est.examined_edges == edges_after_first  # no resampling

    def test_sketch_rebuilt_for_new_graph(self, paper_graph, two_cliques_graph):
        est = make_estimator("ris", n_samples=500, rng=0)
        est.estimate(paper_graph, np.array([0]))
        before = est.examined_edges
        est.estimate(two_cliques_graph, np.array([0]))
        assert est.examined_edges > before

    def test_works_inside_framework(self, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        est = make_estimator("ris", n_samples=20_000, rng=0)
        value = estimate_on_coarse(result, np.array([0]), est)
        mc = make_estimator("mc", n_samples=20_000, rng=1)
        reference = estimate_on_coarse(result, np.array([0]), mc)
        assert value == pytest.approx(reference, rel=0.05)

    def test_rejects_bad_parameters(self, paper_graph):
        with pytest.raises(AlgorithmError):
            make_estimator("ris", n_samples=0)
        with pytest.raises(AlgorithmError):
            make_estimator("ris", n_samples=10, rng=0).estimate(
                paper_graph, np.array([], dtype=np.int64)
            )


class TestGuaranteeReport:
    def test_singleton_coarsening_is_exact(self, paper_graph):
        # r huge => (almost surely) no merging => rho == 1, zero upper error
        result = coarsen_influence_graph(paper_graph, r=32, rng=0)
        if result.partition.non_singleton_blocks():
            pytest.skip("rare merge at r=32")
        report = guarantee_report(paper_graph, result, estimation_eps=0.01)
        assert report.reliability_product == 1.0
        assert report.estimation_upper_rel_error == pytest.approx(0.01, abs=1e-9)
        assert report.maximization_effective_alpha == pytest.approx(
            report.maximization_alpha
        )

    def test_reliable_cliques_give_tight_bounds(self, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        report = guarantee_report(
            two_cliques_graph, result, estimation_eps=0.01, rng=0
        )
        assert 0.5 < report.reliability_product <= 1.0
        assert report.non_singleton_blocks == 2
        assert report.estimation_upper_rel_error < 1.0
        assert report.maximization_effective_alpha > 0.3

    def test_summary_renders(self, two_cliques_graph):
        result = coarsen_influence_graph(two_cliques_graph, r=4, rng=0)
        report = guarantee_report(two_cliques_graph, result, rng=0)
        text = report.summary()
        assert "Theorem 6.1" in text
        assert "Theorem 6.2" in text
