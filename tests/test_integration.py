"""Integration tests: full pipelines across modules.

Each test exercises a realistic end-to-end scenario — the kind of flow the
examples demonstrate — asserting cross-module consistency rather than
single-module behaviour.
"""

import os

import numpy as np
import pytest

from repro import (
    DSSAMaximizer,
    TripletStore,
    coarsen_influence_graph,
    estimate_on_coarse,
    load_dataset,
    maximize_on_coarse,
    read_edge_list,
    write_edge_list,
)
from repro.algorithms import DegreeHeuristic
from repro.estimators import make_estimator
from repro.core import DynamicCoarsener


@pytest.fixture(scope="module")
def slashdot():
    return load_dataset("soc-slashdot", setting="exp", seed=0)


@pytest.fixture(scope="module")
def slashdot_coarse(slashdot):
    return coarsen_influence_graph(slashdot, r=16, rng=0)


class TestEstimationPipeline:
    def test_framework_tracks_plain_mc(self, slashdot, slashdot_coarse):
        rng = np.random.default_rng(3)
        vertices = rng.choice(slashdot.n, size=5, replace=False)
        plain = make_estimator("mc", n_samples=4_000, rng=1)
        framework = make_estimator("mc", n_samples=4_000, rng=2)
        for v in vertices:
            gt = plain.estimate(slashdot, np.array([v]))
            est = estimate_on_coarse(slashdot_coarse, np.array([v]), framework)
            # Theorem 4.6 direction + empirical tightness at r=16
            assert est > 0.5 * gt
            assert est < 2.0 * gt

    def test_ris_and_mc_estimators_agree_through_framework(
        self, slashdot_coarse
    ):
        seeds = np.array([10, 20, 30])
        mc = estimate_on_coarse(
            slashdot_coarse, seeds, make_estimator("mc", n_samples=5_000, rng=4)
        )
        ris = estimate_on_coarse(
            slashdot_coarse, seeds, make_estimator("ris", n_samples=20_000, rng=5)
        )
        assert ris == pytest.approx(mc, rel=0.15)


class TestMaximizationPipeline:
    def test_framework_solution_quality(self, slashdot, slashdot_coarse):
        judge = make_estimator("mc", n_samples=1_500, rng=9)
        plain = DSSAMaximizer(eps=0.2, delta=0.1, rng=1).select(slashdot, 5)
        framework = maximize_on_coarse(
            slashdot_coarse, 5, DSSAMaximizer(eps=0.2, delta=0.1, rng=2), rng=3
        )
        plain_value = judge.estimate(slashdot, plain.seeds)
        framework_value = judge.estimate(slashdot, framework.seeds)
        assert framework_value > 0.9 * plain_value

    def test_framework_beats_degree_baseline_or_ties(self, slashdot,
                                                     slashdot_coarse):
        judge = make_estimator("mc", n_samples=1_500, rng=10)
        degree = DegreeHeuristic().select(slashdot, 5)
        framework = maximize_on_coarse(
            slashdot_coarse, 5, DSSAMaximizer(eps=0.2, delta=0.1, rng=6), rng=7
        )
        assert judge.estimate(slashdot, framework.seeds) > 0.9 * judge.estimate(
            slashdot, degree.seeds
        )


class TestStorageRoundTrips:
    def test_disk_pipeline_equals_in_memory(self, tmp_path, slashdot):
        src = TripletStore.from_graph(slashdot, tmp_path / "g.trip")
        sub = coarsen_influence_graph(src, space="sublinear", out_path=tmp_path / "h.trip", r=8, rng=7
        )
        lin = coarsen_influence_graph(slashdot, r=8, rng=7)
        assert sub.load().coarse == lin.coarse

    def test_edge_list_round_trip_preserves_coarsening(self, tmp_path,
                                                       slashdot):
        path = tmp_path / "graph.txt"
        write_edge_list(slashdot, path)
        back = read_edge_list(path)
        a = coarsen_influence_graph(slashdot, r=4, rng=5)
        b = coarsen_influence_graph(back, r=4, rng=5)
        assert a.coarse == b.coarse


class TestParallelConsistency:
    def test_parallel_result_usable_by_frameworks(self, slashdot):
        result = coarsen_influence_graph(
            slashdot, r=8, workers=2, rng=0, executor="thread"
        )
        est = estimate_on_coarse(
            result, np.array([0]), make_estimator("mc", n_samples=2_000, rng=1)
        )
        assert est >= 1.0


class TestDynamicPipeline:
    def test_snapshot_usable_by_frameworks(self, slashdot):
        dyn = DynamicCoarsener(
            slashdot.induced_subgraph(np.arange(400)), r=8, rng=0
        )
        dyn.insert_edge(0, 399, 0.5)
        snap = dyn.snapshot()
        est = estimate_on_coarse(
            snap, np.array([0]), make_estimator("mc", n_samples=2_000, rng=1)
        )
        assert est >= 1.0
