"""Tests for the influence-maximization algorithms.

Quality checks use planted instances where the best seed is unambiguous,
plus cross-algorithm agreement on small graphs.
"""

import numpy as np
import pytest

from repro.algorithms import (
    CELFMaximizer,
    DegreeHeuristic,
    DSSAMaximizer,
    GreedyMaximizer,
    IMMMaximizer,
    RISMaximizer,
    SSAMaximizer,
)
from repro.analysis import exact_influence
from repro.errors import AlgorithmError
from repro.graph import GraphBuilder, InfluenceGraph

from .conftest import build_graph


def star_graph(hub: int = 0, leaves: int = 8, p: float = 0.9) -> InfluenceGraph:
    """A hub with strong out-edges — the hub is the unambiguous best seed."""
    builder = GraphBuilder(n=leaves + 1)
    for leaf in range(1, leaves + 1):
        builder.add_edge(hub, leaf, p)
    return builder.build()


class _ExactEstimator:
    def estimate(self, graph, seeds):
        return exact_influence(graph, seeds)


SKETCH_MAXIMIZERS = [
    lambda: RISMaximizer(n_samples=3_000, rng=0),
    lambda: IMMMaximizer(eps=0.3, rng=0, max_samples=30_000),
    lambda: SSAMaximizer(eps=0.2, delta=0.1, rng=0, max_samples=60_000),
    lambda: DSSAMaximizer(eps=0.2, delta=0.1, rng=0, max_samples=60_000),
]


class TestPlantedInstances:
    @pytest.mark.parametrize("make", SKETCH_MAXIMIZERS)
    def test_hub_found_on_star(self, make):
        g = star_graph()
        result = make().select(g, 1)
        assert result.seeds.tolist() == [0]
        # exact influence of the hub is 1 + 8 * 0.9 = 8.2
        assert result.estimated_influence == pytest.approx(8.2, rel=0.15)

    @pytest.mark.parametrize("make", SKETCH_MAXIMIZERS)
    def test_two_hubs_found(self, make):
        builder = GraphBuilder(n=20)
        for hub, leaves in ((0, range(2, 10)), (1, range(10, 18))):
            for leaf in leaves:
                builder.add_edge(hub, leaf, 0.9)
        builder.add_edge(18, 19, 0.1)
        g = builder.build()
        result = make().select(g, 2)
        assert sorted(result.seeds.tolist()) == [0, 1]

    def test_degree_heuristic_finds_hub(self):
        result = DegreeHeuristic().select(star_graph(), 1)
        assert result.seeds.tolist() == [0]
        assert result.estimated_influence == pytest.approx(1 + 8 * 0.9)


class TestGreedyAndCELF:
    def test_greedy_matches_exhaustive_reference(self, paper_graph):
        result = GreedyMaximizer(_ExactEstimator()).select(paper_graph, 2)
        # brute-force the optimum for k=2
        best_val = -1.0
        for a in range(9):
            for b in range(a + 1, 9):
                val = exact_influence(paper_graph, np.array([a, b]))
                best_val = max(best_val, val)
        # greedy is (1 - 1/e)-approx; on this graph it is near-exact
        assert result.estimated_influence >= 0.9 * best_val

    def test_celf_equals_greedy_with_deterministic_oracle(self, paper_graph):
        greedy = GreedyMaximizer(_ExactEstimator()).select(paper_graph, 3)
        celf = CELFMaximizer(_ExactEstimator()).select(paper_graph, 3)
        assert greedy.estimated_influence == pytest.approx(
            celf.estimated_influence
        )
        assert set(greedy.seeds.tolist()) == set(celf.seeds.tolist())

    def test_celf_uses_fewer_evaluations(self, paper_graph):
        greedy = GreedyMaximizer(_ExactEstimator()).select(paper_graph, 3)
        celf = CELFMaximizer(_ExactEstimator()).select(paper_graph, 3)
        assert celf.extras["evaluations"] < greedy.extras["evaluations"]

    def test_sketch_quality_close_to_greedy(self, paper_graph):
        greedy = GreedyMaximizer(_ExactEstimator()).select(paper_graph, 2)
        for make in SKETCH_MAXIMIZERS:
            seeds = make().select(paper_graph, 2).seeds
            val = exact_influence(paper_graph, seeds)
            assert val >= 0.8 * greedy.estimated_influence


class TestParameterValidation:
    def test_k_bounds(self):
        g = star_graph()
        for maximizer in (
            DegreeHeuristic(),
            RISMaximizer(n_samples=10, rng=0),
            GreedyMaximizer(_ExactEstimator()),
            CELFMaximizer(_ExactEstimator()),
            IMMMaximizer(rng=0),
            SSAMaximizer(rng=0),
            DSSAMaximizer(rng=0),
        ):
            with pytest.raises(AlgorithmError):
                maximizer.select(g, 0)
            with pytest.raises(AlgorithmError):
                maximizer.select(g, g.n + 1)

    def test_ris_rejects_bad_budget(self):
        with pytest.raises(AlgorithmError):
            RISMaximizer(n_samples=0)

    def test_imm_rejects_bad_eps(self):
        with pytest.raises(AlgorithmError):
            IMMMaximizer(eps=0.0)

    def test_stop_and_stare_rejects_bad_eps(self):
        with pytest.raises(AlgorithmError):
            DSSAMaximizer(eps=0.9)  # above 1 - 2/e

    def test_stop_and_stare_rejects_bad_delta(self):
        with pytest.raises(AlgorithmError):
            SSAMaximizer(delta=0.0)


class TestStopAndStareBehaviour:
    def test_dssa_reuses_validation_sets(self):
        g = star_graph(leaves=12, p=0.5)
        dssa = DSSAMaximizer(eps=0.25, delta=0.1, rng=0)
        ssa = SSAMaximizer(eps=0.25, delta=0.1, rng=0)
        r1 = dssa.select(g, 1)
        r2 = ssa.select(g, 1)
        assert r1.seeds.tolist() == r2.seeds.tolist() == [0]
        assert r1.extras["rr_sets"] > 0
        assert r2.extras["rr_sets"] > 0

    def test_memory_budget_enforced(self):
        from repro.errors import BudgetExceededError

        g = star_graph(leaves=12, p=0.5)
        ssa = SSAMaximizer(eps=0.05, delta=0.01, rng=0, memory_budget_sets=8)
        with pytest.raises(BudgetExceededError):
            ssa.select(g, 1)

    def test_works_on_weighted_graphs(self, two_cliques_graph):
        from repro.core import coarsen_influence_graph

        coarse = coarsen_influence_graph(two_cliques_graph, r=4, rng=0).coarse
        assert coarse.is_weighted
        result = DSSAMaximizer(eps=0.25, delta=0.1, rng=1).select(coarse, 1)
        # upstream clique (which reaches everything) must win
        assert coarse.weights[result.seeds[0]] == 4
