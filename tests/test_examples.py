"""Smoke test: the quickstart example must run and print its conclusions.

The heavier examples (viral_marketing, out_of_core_pipeline, ...) are
exercised indirectly through the integration tests; quickstart is cheap
enough to run end-to-end here, which keeps deliverable (b) from rotting.
"""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def test_quickstart_runs_and_verifies_bounds():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "q(c1, c2) = 0.44" in proc.stdout
    assert "all sandwich bounds hold" in proc.stdout


def test_all_examples_compile():
    for script in sorted(EXAMPLES.glob("*.py")):
        source = script.read_text(encoding="utf-8")
        compile(source, str(script), "exec")
