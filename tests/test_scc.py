"""Tests for the three SCC implementations, including cross-validation."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.partition import Partition
from repro.scc import (
    kosaraju_scc_labels,
    scc_labels,
    semi_external_scc_labels,
    tarjan_scc_labels,
)
from repro.storage import PairStore

from .conftest import random_graph


def csr(n, edges):
    tails = np.array([e[0] for e in edges], dtype=np.int64)
    heads = np.array([e[1] for e in edges], dtype=np.int64)
    order = np.lexsort((heads, tails))
    tails, heads = tails[order], heads[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, tails + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, heads


BACKENDS = ["fwbw", "tarjan", "kosaraju", "scipy"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestKnownGraphs:
    def test_single_cycle(self, backend):
        indptr, heads = csr(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        labels = scc_labels(indptr, heads, backend=backend)
        assert len(set(labels.tolist())) == 1

    def test_chain_is_all_singletons(self, backend):
        indptr, heads = csr(4, [(0, 1), (1, 2), (2, 3)])
        labels = scc_labels(indptr, heads, backend=backend)
        assert len(set(labels.tolist())) == 4

    def test_two_cycles_with_bridge(self, backend):
        edges = [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]
        indptr, heads = csr(4, edges)
        labels = scc_labels(indptr, heads, backend=backend)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_empty_graph(self, backend):
        indptr, heads = csr(5, [])
        labels = scc_labels(indptr, heads, backend=backend)
        assert len(set(labels.tolist())) == 5

    def test_no_vertices(self, backend):
        indptr, heads = csr(0, [])
        labels = scc_labels(indptr, heads, backend=backend)
        assert labels.size == 0

    def test_figure3_style_nested_components(self, backend):
        # triangle {0,1,2} reaching a 2-cycle {3,4}, plus isolated 5
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]
        indptr, heads = csr(6, edges)
        p = Partition(scc_labels(indptr, heads, backend=backend))
        sizes = sorted(p.block_sizes().tolist())
        assert sizes == [1, 2, 3]


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(12))
    def test_all_backends_agree_on_random_graphs(self, seed):
        g = random_graph(40, 120, seed=seed)
        parts = [
            Partition(scc_labels(g.indptr, g.heads, backend=b)) for b in BACKENDS
        ]
        assert all(p == parts[0] for p in parts[1:])

    def test_deep_chain_no_recursion_error(self):
        # A 50k-vertex path would blow recursive implementations.
        n = 50_000
        edges = [(i, i + 1) for i in range(n - 1)]
        indptr, heads = csr(n, edges)
        labels = tarjan_scc_labels(indptr, heads)
        assert len(set(labels.tolist())) == n

    def test_long_cycle_single_component(self):
        n = 20_000
        edges = [(i, (i + 1) % n) for i in range(n)]
        indptr, heads = csr(n, edges)
        assert set(kosaraju_scc_labels(indptr, heads).tolist()) == {0}

    def test_unknown_backend_raises(self):
        indptr, heads = csr(2, [(0, 1)])
        with pytest.raises(AlgorithmError, match="unknown"):
            scc_labels(indptr, heads, backend="bogus")


class TestSemiExternal:
    def _store(self, tmp_path, n, edges):
        store = PairStore.create(tmp_path / "g.pairs", n=n)
        if edges:
            store.append(
                np.array([e[0] for e in edges]), np.array([e[1] for e in edges])
            )
        return store

    def test_cycle(self, tmp_path):
        store = self._store(tmp_path, 3, [(0, 1), (1, 2), (2, 0)])
        labels = semi_external_scc_labels(store)
        assert len(set(labels.tolist())) == 1

    def test_empty(self, tmp_path):
        store = self._store(tmp_path, 4, [])
        labels = semi_external_scc_labels(store)
        assert len(set(labels.tolist())) == 4

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_tarjan_on_random_graphs(self, tmp_path, seed):
        g = random_graph(35, 110, seed=100 + seed)
        tails, heads, _ = g.edge_arrays()
        store = self._store(tmp_path, g.n, list(zip(tails.tolist(), heads.tolist())))
        semi = Partition(semi_external_scc_labels(store, chunk_edges=16))
        ref = Partition(tarjan_scc_labels(g.indptr, g.heads))
        assert semi == ref

    def test_stats_reported(self, tmp_path):
        store = self._store(tmp_path, 5, [(0, 1), (1, 0), (2, 3)])
        labels, stats = semi_external_scc_labels(store, return_stats=True)
        assert stats.rounds >= 1
        assert stats.stream_passes >= stats.rounds
        assert stats.bytes_read > 0
        assert len(set(labels.tolist())) == 4

    def test_tiny_chunks_give_same_answer(self, tmp_path):
        g = random_graph(25, 80, seed=77)
        tails, heads, _ = g.edge_arrays()
        store = self._store(tmp_path, g.n, list(zip(tails.tolist(), heads.tolist())))
        a = Partition(semi_external_scc_labels(store, chunk_edges=1))
        b = Partition(semi_external_scc_labels(store, chunk_edges=1 << 16))
        assert a == b
