"""Tests for strongly connected reliability (Eq. 13/14) and Figure 8's
max-SCC-rate distribution."""

import numpy as np
import pytest

from repro.analysis import (
    estimate_reliability,
    exact_reliability,
    max_scc_rate_samples,
    reliability_product,
)
from repro.errors import AlgorithmError
from repro.partition import Partition

from .conftest import build_graph


class TestExactReliability:
    def test_single_vertex_is_one(self):
        assert exact_reliability(build_graph(1, [])) == 1.0

    def test_two_cycle(self):
        g = build_graph(2, [(0, 1, 0.5), (1, 0, 0.4)])
        assert exact_reliability(g) == pytest.approx(0.2)

    def test_disconnected_is_zero(self):
        g = build_graph(3, [(0, 1, 0.9), (1, 0, 0.9)])
        assert exact_reliability(g) == 0.0

    def test_deterministic_cycle_is_one(self):
        g = build_graph(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        assert exact_reliability(g) == pytest.approx(1.0)

    def test_triangle_by_hand(self):
        # cycle with probs a, b, c plus no redundancy: Rel = a*b*c
        g = build_graph(3, [(0, 1, 0.5), (1, 2, 0.6), (2, 0, 0.7)])
        assert exact_reliability(g) == pytest.approx(0.5 * 0.6 * 0.7)

    def test_edge_limit_enforced(self):
        edges = [(i, (i + 1) % 24, 0.5) for i in range(24)]
        with pytest.raises(AlgorithmError):
            exact_reliability(build_graph(24, edges))


class TestEstimateReliability:
    def test_close_to_exact(self):
        g = build_graph(3, [(0, 1, 0.8), (1, 2, 0.8), (2, 0, 0.8),
                            (1, 0, 0.5), (2, 1, 0.5), (0, 2, 0.5)])
        exact = exact_reliability(g)
        est = estimate_reliability(g, n_samples=20_000, rng=0)
        assert est == pytest.approx(exact, abs=0.015)

    def test_single_vertex(self):
        assert estimate_reliability(build_graph(1, []), rng=0) == 1.0


class TestMaxSccRate:
    def test_rates_in_unit_interval(self, paper_graph):
        rates = max_scc_rate_samples(paper_graph, n_samples=200, rng=0)
        assert rates.size == 200
        assert (rates >= 1.0 / 9).all()
        assert (rates <= 1.0).all()

    def test_deterministic_cycle_always_one(self):
        g = build_graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])
        rates = max_scc_rate_samples(g, n_samples=50, rng=0)
        assert (rates == 1.0).all()

    def test_high_probability_clique_mostly_connected(self, two_cliques_graph):
        sub = two_cliques_graph.induced_subgraph(np.arange(4))
        rates = max_scc_rate_samples(sub, n_samples=300, rng=0)
        # the 0.98 clique is strongly connected in nearly every sample
        assert np.mean(rates == 1.0) > 0.9


class TestReliabilityProduct:
    def test_all_singletons_is_one(self, paper_graph):
        assert reliability_product(paper_graph, Partition.singletons(9)) == 1.0

    def test_matches_exact_for_small_blocks(self, paper_graph):
        partition = Partition.from_blocks(
            [[0, 1, 2], [3], [4, 5], [6], [7, 8]], 9
        )
        got = reliability_product(paper_graph, partition, rng=0)
        expected = 1.0
        for block in ([0, 1, 2], [4, 5], [7, 8]):
            expected *= exact_reliability(
                paper_graph.induced_subgraph(np.array(block))
            )
        assert got == pytest.approx(expected)

    def test_monte_carlo_path(self, two_cliques_graph):
        partition = Partition.from_blocks(
            [[0, 1, 2, 3], [4, 5, 6, 7]], 8
        )
        # each 0.98 clique has 12 edges; force the MC path with a low limit
        got = reliability_product(
            two_cliques_graph, partition, n_samples=3_000, rng=0,
            exact_edge_limit=4,
        )
        assert 0.8 < got <= 1.0
