"""Unit tests for the on-disk edge stores."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.storage import PairStore, TripletStore

from .conftest import build_graph, random_graph


class TestTripletStore:
    def test_round_trip_graph(self, tmp_path):
        g = random_graph(20, 60, seed=1)
        store = TripletStore.from_graph(g, tmp_path / "g.trip")
        assert store.n == g.n
        assert store.m == g.m
        assert store.to_graph() == g

    def test_reopen_preserves_header(self, tmp_path):
        g = build_graph(3, [(0, 1, 0.5), (1, 2, 0.25)])
        path = tmp_path / "g.trip"
        TripletStore.from_graph(g, path)
        store = TripletStore.open(path)
        assert (store.n, store.m) == (3, 2)
        assert store.to_graph() == g

    def test_chunked_iteration_covers_all_edges(self, tmp_path):
        g = random_graph(30, 200, seed=2)
        store = TripletStore.from_graph(g, tmp_path / "g.trip", chunk_edges=7)
        seen = 0
        for tails, heads, probs in store.iter_chunks(chunk_edges=13):
            assert tails.size == heads.size == probs.size
            assert tails.size <= 13
            seen += tails.size
        assert seen == g.m

    def test_append_accumulates(self, tmp_path):
        store = TripletStore.create(tmp_path / "a.trip", n=5)
        store.append(np.array([0]), np.array([1]), np.array([0.5]))
        store.append(np.array([1, 2]), np.array([2, 3]), np.array([0.5, 0.5]))
        assert store.m == 3
        tails, heads, probs = store.read_all()
        assert tails.tolist() == [0, 1, 2]

    def test_io_counters(self, tmp_path):
        g = random_graph(10, 30, seed=3)
        store = TripletStore.from_graph(g, tmp_path / "g.trip")
        assert store.bytes_written > 0
        list(store.iter_chunks())
        assert store.bytes_read >= store.bytes_written

    def test_empty_store(self, tmp_path):
        store = TripletStore.create(tmp_path / "e.trip", n=4)
        assert store.m == 0
        tails, heads, probs = store.read_all()
        assert tails.size == 0
        assert list(store.iter_chunks()) == []

    def test_rejects_missing_probs(self, tmp_path):
        store = TripletStore.create(tmp_path / "x.trip", n=2)
        with pytest.raises(GraphFormatError):
            store.append(np.array([0]), np.array([1]))

    def test_rejects_wrong_store_kind(self, tmp_path):
        path = tmp_path / "p.pairs"
        PairStore.create(path, n=2)
        with pytest.raises(GraphFormatError, match="layout"):
            TripletStore.open(path)

    def test_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"not a store at all....")
        with pytest.raises(GraphFormatError):
            TripletStore.open(path)

    def test_rejects_truncated_header(self, tmp_path):
        path = tmp_path / "trunc"
        path.write_bytes(b"RP")
        with pytest.raises(GraphFormatError, match="truncated"):
            TripletStore.open(path)

    def test_delete_removes_file(self, tmp_path):
        path = tmp_path / "d.trip"
        store = TripletStore.create(path, n=1)
        store.delete()
        assert not path.exists()
        store.delete()  # idempotent


class TestPairStore:
    def test_round_trip(self, tmp_path):
        store = PairStore.create(tmp_path / "p.pairs", n=4)
        store.append(np.array([0, 1, 2]), np.array([1, 2, 3]))
        tails, heads = store.read_all()
        assert tails.tolist() == [0, 1, 2]
        assert heads.tolist() == [1, 2, 3]

    def test_chunk_iteration(self, tmp_path):
        store = PairStore.create(tmp_path / "p.pairs", n=100)
        store.append(np.arange(99), np.arange(1, 100))
        chunks = list(store.iter_chunks(chunk_edges=10))
        assert len(chunks) == 10
        assert sum(c[0].size for c in chunks) == 99
